#!/usr/bin/env python3
"""Compare fresh benchmark artifacts against committed baselines.

The CI bench-smoke job produces five JSON artifacts —
``BENCH_fig12.json`` (the Figure 12 grid), ``BENCH_join_kernels.json``
(kernel-vs-row-loop microbenchmarks), ``BENCH_parallel.json`` (the
morsel-parallel scaling curve), ``BENCH_cbo.json`` (cost-based vs
heuristic join ordering), and ``BENCH_storage.json`` (zone-map scan
skipping + larger-than-memory spilling).  This script reduces each to a
flat
``metric name -> seconds`` series, diffs it against the snapshot in
``benchmarks/baselines/``, renders a per-query delta table (also into
``$GITHUB_STEP_SUMMARY`` when set, so the deltas land in the job
summary), and exits non-zero when any metric regressed by more than
**25% and 0.05s absolute** — the double condition keeps microsecond
noise and shared-runner jitter from tripping the gate.

Usage::

    python benchmarks/compare_bench.py            # compare, exit 1 on regression
    python benchmarks/compare_bench.py --write    # (re)generate the baselines

New metrics (no baseline entry yet) and retired ones are reported but
never fail the gate; a whole artifact with no committed baseline file
(a freshly added benchmark) passes with a note in the summary.  Refresh
with ``--write`` after intentional changes.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Regression gate: fail only when BOTH hold (relative and absolute).
MAX_REGRESSION_RATIO = 1.25
MIN_ABSOLUTE_DELTA_S = 0.05

ARTIFACTS = (
    "BENCH_fig12.json",
    "BENCH_join_kernels.json",
    "BENCH_parallel.json",
    "BENCH_cbo.json",
    "BENCH_storage.json",
)

DEFAULT_BASELINE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "baselines"
)


def extract_metrics(name: str, payload: dict) -> dict[str, float]:
    """Flatten one artifact into ``metric -> seconds``."""
    if name == "BENCH_fig12.json":
        return {
            (
                f"Q{cell['query']} sf={cell['scale_factor']} "
                f"{cell['scenario']}"
            ): float(cell["seconds"])
            for cell in payload.get("cells", [])
        }
    if name == "BENCH_join_kernels.json":
        out: dict[str, float] = {}
        for bench, row in payload.items():
            out[f"{bench} kernels"] = float(row["kernel_s"])
            out[f"{bench} row_loop"] = float(row["row_loop_s"])
        return out
    if name == "BENCH_parallel.json":
        return {
            f"Q{leg['query']} workers={leg['workers']}":
                float(leg["seconds"])
            for leg in payload.get("legs", [])
        }
    if name == "BENCH_cbo.json":
        return {
            f"{leg['query']} cbo={leg['cbo']}": float(leg["seconds"])
            for leg in payload.get("legs", [])
        }
    if name == "BENCH_storage.json":
        return {
            f"{leg['leg']} {leg['mode']}": float(leg["seconds"])
            for leg in payload.get("legs", [])
        }
    raise ValueError(f"unknown artifact {name!r}")


def load_json(path: str) -> dict | None:
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare_one(name: str, current: dict[str, float],
                baseline: dict[str, float]) -> tuple[list[str], list[str]]:
    """Markdown table rows and regression messages for one artifact."""
    rows: list[str] = []
    regressions: list[str] = []
    for metric in sorted(set(current) | set(baseline)):
        new = current.get(metric)
        old = baseline.get(metric)
        if new is None:
            rows.append(f"| {metric} | {old:.4f} | — | retired |")
            continue
        if old is None:
            rows.append(f"| {metric} | — | {new:.4f} | new |")
            continue
        delta = new - old
        pct = (new / old - 1.0) * 100.0 if old > 0 else 0.0
        flag = ""
        if (old > 0 and new > old * MAX_REGRESSION_RATIO
                and delta > MIN_ABSOLUTE_DELTA_S):
            flag = " **REGRESSED**"
            regressions.append(
                f"{name}: {metric} {old:.4f}s -> {new:.4f}s "
                f"(+{pct:.0f}%, +{delta:.3f}s)"
            )
        rows.append(
            f"| {metric} | {old:.4f} | {new:.4f} | {pct:+.1f}%{flag} |"
        )
    return rows, regressions


def render(sections: dict[str, tuple[str | None, list[str]]]) -> str:
    lines = ["## Benchmark comparison vs committed baselines", ""]
    for name, (note, rows) in sections.items():
        lines.append(f"### {name}")
        lines.append("")
        if note:
            lines.append(note)
            lines.append("")
        if rows:
            lines.append("| metric | baseline (s) | current (s) | delta |")
            lines.append("|---|---|---|---|")
            lines.extend(rows)
        elif not note:
            lines.append("_artifact missing — benchmark step skipped?_")
        lines.append("")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline-dir", default=DEFAULT_BASELINE_DIR,
        help="directory of committed baseline series",
    )
    parser.add_argument(
        "--artifact-dir", default=".",
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="write the current series as the new baselines and exit",
    )
    args = parser.parse_args(argv)

    sections: dict[str, tuple[str | None, list[str]]] = {}
    all_regressions: list[str] = []
    for name in ARTIFACTS:
        payload = load_json(os.path.join(args.artifact_dir, name))
        if payload is None:
            sections[name] = (None, [])
            continue
        current = extract_metrics(name, payload)
        if args.write:
            os.makedirs(args.baseline_dir, exist_ok=True)
            out = os.path.join(args.baseline_dir, name)
            with open(out, "w", encoding="utf-8") as handle:
                json.dump(current, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {out} ({len(current)} metrics)")
            continue
        baseline = load_json(os.path.join(args.baseline_dir, name))
        if baseline is None:
            # Freshly added benchmark: nothing to regress against — pass
            # with a note instead of failing the job.
            rows = [
                f"| {metric} | — | {current[metric]:.4f} | new |"
                for metric in sorted(current)
            ]
            sections[name] = (
                "_new benchmark — no committed baseline yet; "
                "pin one with `--write`_",
                rows,
            )
            continue
        rows, regressions = compare_one(name, current, baseline)
        sections[name] = (None, rows)
        all_regressions.extend(regressions)

    if args.write:
        return 0

    report = render(sections)
    print(report)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write(report + "\n")

    if all_regressions:
        print("Regressions beyond the "
              f">{(MAX_REGRESSION_RATIO - 1) * 100:.0f}% and "
              f">{MIN_ABSOLUTE_DELTA_S}s gate:", file=sys.stderr)
        for message in all_regressions:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("No regressions beyond the gate.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
