"""Shared fixtures and helpers for the paper-reproduction benchmarks.

Environment knobs:

``REPRO_BENCH_SFS``
    Comma-separated BerlinMOD scale factors for the Figure 12 grid
    (default ``0.001,0.002``; the paper uses 0.001–0.01 — the larger
    factors work but take correspondingly longer in pure Python).
``REPRO_BENCH_FULL``
    Set to 1 to run the full paper grids (Figure 2 up to 1M rows,
    Table 2 up to SF 0.1).
"""

from __future__ import annotations

import os
import time

import pytest

from repro import core
from repro.berlinmod import create_baseline_indexes, generate, load_dataset


def bench_scale_factors() -> list[float]:
    raw = os.environ.get("REPRO_BENCH_SFS", "0.001,0.002")
    return [float(x) for x in raw.split(",") if x.strip()]


def full_grid() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


class Scenario:
    """One engine scenario of Figure 12 with a loaded dataset."""

    def __init__(self, name: str, connection):
        self.name = name
        self.connection = connection

    def run(self, sql: str):
        return self.connection.execute(sql)


_DATASET_CACHE: dict[float, object] = {}
_SCENARIO_CACHE: dict[tuple[float, str], Scenario] = {}


def dataset_for(scale_factor: float):
    if scale_factor not in _DATASET_CACHE:
        _DATASET_CACHE[scale_factor] = generate(scale_factor)
    return _DATASET_CACHE[scale_factor]


def scenario_for(scale_factor: float, name: str) -> Scenario:
    key = (scale_factor, name)
    if key not in _SCENARIO_CACHE:
        dataset = dataset_for(scale_factor)
        if name == "mobilityduck":
            con = core.connect()
            load_dataset(con, dataset)
        elif name == "mobilitydb":
            con = core.connect_baseline()
            load_dataset(con, dataset)
        elif name == "mobilitydb_idx":
            con = core.connect_baseline()
            load_dataset(con, dataset)
            create_baseline_indexes(con)
        else:
            raise ValueError(name)
        _SCENARIO_CACHE[key] = Scenario(name, con)
    return _SCENARIO_CACHE[key]


def timed(fn, *args) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn(*args)
    return time.perf_counter() - start, result
