"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism behind the paper's Figure 12 gap:

1. **Vectorization** — identical relational work (numeric filter +
   aggregate) on the columnar engine vs the row engine, with no extension
   types involved.
2. **TOAST/varlena** — identical temporal payload work on both engines;
   the row engine pays per-access deserialization.
3. **GSERIALIZED vs WKB** — the §6.3 interop optimization: trajectory_gs
   avoids the WKB encode/decode round-trip of trajectory()::GEOMETRY.
4. **Bulk vs incremental TRTREE build** — §4.2's two construction paths.
"""

import time

import pytest

from repro import core
from repro.meos import STBox
from repro.pgsim import RowDatabase
from repro.quack import Database


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestVectorizationAblation:
    ROWS = 200_000

    @pytest.fixture(scope="class")
    def engines(self):
        rows = [(i, float(i % 1000)) for i in range(self.ROWS)]
        duck = Database().connect()
        duck.execute("CREATE TABLE n(a BIGINT, b DOUBLE)")
        duck.database.catalog.get_table("n").append_rows(rows)
        row = RowDatabase().connect()
        row.execute("CREATE TABLE n(a BIGINT, b DOUBLE)")
        row.database.catalog.get_table("n").append_rows(rows)
        return duck, row

    QUERY = ("SELECT count(*), sum(b) FROM n "
             "WHERE a % 7 = 3 AND b > 100.0")

    def test_columnar_beats_row_on_relational_work(self, engines,
                                                   benchmark):
        duck, row = engines
        duck_s = _timed(lambda: duck.execute(self.QUERY))
        row_s = _timed(lambda: row.execute(self.QUERY))
        assert duck.execute(self.QUERY).fetchall() == \
            row.execute(self.QUERY).fetchall()
        print(f"\nvectorization ablation ({self.ROWS} rows): "
              f"columnar {duck_s:.3f}s vs row {row_s:.3f}s "
              f"({row_s / duck_s:.1f}x)")
        benchmark.extra_info.update(columnar_s=duck_s, row_s=row_s)
        benchmark.pedantic(lambda: duck.execute(self.QUERY), rounds=3,
                           iterations=1)
        # The columnar engine must win clearly on pure relational work —
        # this is mechanism (a) of the paper's gap.
        assert duck_s * 2 < row_s


class TestVarlenaAblation:
    TRIPS = 3_000

    @pytest.fixture(scope="class")
    def engines(self):
        from repro import meos
        from repro.meos.temporal.base import TInstant
        from repro.meos.temporal.ttypes import TGEOMPOINT
        from repro import geo

        trips = []
        for i in range(self.TRIPS):
            instants = [
                TInstant(TGEOMPOINT, geo.Point(i + k, k),
                         k * 60_000_000 + i)
                for k in range(10)
            ]
            trips.append(
                (i, meos.sequence_from_instants(instants)),
            )
        duck = core.connect()
        duck.execute("CREATE TABLE trips(id INTEGER, trip TGEOMPOINT)")
        duck.database.catalog.get_table("trips").append_rows(trips)
        base = core.connect_baseline()
        base.execute("CREATE TABLE trips(id INTEGER, trip TGEOMPOINT)")
        base.database.catalog.get_table("trips").append_rows(trips)
        return duck, base

    QUERY = "SELECT sum(length(trip)) FROM trips"

    def test_detoast_overhead(self, engines, benchmark):
        duck, base = engines
        duck_s = _timed(lambda: duck.execute(self.QUERY))
        base_s = _timed(lambda: base.execute(self.QUERY))
        assert duck.execute(self.QUERY).scalar() == pytest.approx(
            base.execute(self.QUERY).scalar()
        )
        print(f"\nvarlena ablation ({self.TRIPS} trips): "
              f"native {duck_s:.3f}s vs toasted {base_s:.3f}s "
              f"({base_s / duck_s:.1f}x)")
        benchmark.extra_info.update(native_s=duck_s, toasted_s=base_s)
        benchmark.pedantic(lambda: duck.execute(self.QUERY), rounds=3,
                           iterations=1)
        # Deserialization per datum access must cost something real —
        # mechanism (b) of the paper's gap.
        assert base_s > duck_s


class TestGserializedAblation:
    """§6.3: the *_gs functions avoid WKB round-trips."""

    @pytest.fixture(scope="class")
    def con(self):
        con = core.connect()
        con.execute("CREATE TABLE trips(trip TGEOMPOINT)")
        con.execute(
            "INSERT INTO trips SELECT ('[Point(' || i || ' 0)@2025-01-01,"
            " Point(' || (i + 1) || ' 1)@2025-01-02]') "
            "FROM generate_series(1, 2000) AS t(i)"
        )
        return con

    WKB_QUERY = ("SELECT count(*) FROM trips "
                 "WHERE ST_Length(trajectory(trip)::GEOMETRY) > 1.0")
    GS_QUERY = ("SELECT count(*) FROM trips "
                "WHERE length_gs(trajectory_gs(trip)) > 1.0")

    def test_gs_path_faster_than_wkb_roundtrip(self, con, benchmark):
        wkb_s = _timed(lambda: con.execute(self.WKB_QUERY))
        gs_s = _timed(lambda: con.execute(self.GS_QUERY))
        assert con.execute(self.WKB_QUERY).scalar() == \
            con.execute(self.GS_QUERY).scalar()
        print(f"\nGSERIALIZED ablation: WKB path {wkb_s:.3f}s vs "
              f"gs path {gs_s:.3f}s ({wkb_s / gs_s:.1f}x)")
        benchmark.extra_info.update(wkb_s=wkb_s, gs_s=gs_s)
        benchmark.pedantic(lambda: con.execute(self.GS_QUERY), rounds=3,
                           iterations=1)
        assert gs_s < wkb_s


class TestRtreeBuildAblation:
    """§4.2: STR bulk load vs one-by-one insertion."""

    ROWS = 20_000

    def test_bulk_vs_incremental(self, benchmark):
        from repro.index import RTree

        items = []
        for i in range(self.ROWS):
            items.append(((float(i), float(i), i + 1.0, i + 1.0), i))

        def incremental():
            tree = RTree(dimensions=2)
            for rect, rid in items:
                tree.insert(rect, rid)
            return tree

        def bulk():
            return RTree.bulk_load(items, dimensions=2)

        inc_s = _timed(incremental)
        bulk_s = _timed(bulk)
        print(f"\nTRTREE build ablation ({self.ROWS} boxes): "
              f"incremental {inc_s:.3f}s vs bulk {bulk_s:.3f}s "
              f"({inc_s / bulk_s:.1f}x)")
        benchmark.extra_info.update(incremental_s=inc_s, bulk_s=bulk_s)
        benchmark.pedantic(bulk, rounds=3, iterations=1)
        assert bulk_s < inc_s
        # Both must answer queries identically.
        a = sorted(incremental().search((100.0, 100.0, 200.0, 200.0)))
        b = sorted(bulk().search((100.0, 100.0, 200.0, 200.0)))
        assert a == b
