"""Speedup of the vectorized aggregation/sort kernels over the row loops.

The quack engine's GROUP BY / ORDER BY / DISTINCT operators run NumPy
kernels (``repro.quack.kernels``) with the original tuple-at-a-time code
kept as a fallback behind ``set_kernels_enabled(False)``.  This benchmark
loads a 100k-row table and times both paths; the kernels must deliver at
least a 5x speedup on aggregation (the issue's acceptance bar) and 2x on
sort, while producing identical results.
"""

from __future__ import annotations

import time

import numpy as np

from repro.quack import Database
from repro.quack.kernels import set_kernels_enabled

N_ROWS = 100_000
N_GROUPS = 50


def _load_table():
    con = Database().connect()
    con.execute("CREATE TABLE m(g BIGINT, v BIGINT, x DOUBLE)")
    rng = np.random.default_rng(42)
    groups = rng.integers(0, N_GROUPS, N_ROWS)
    values = rng.integers(-1000, 1000, N_ROWS)
    floats = rng.normal(size=N_ROWS)
    rows = [
        (int(g), int(v), float(x))
        for g, v, x in zip(groups, values, floats)
    ]
    con.database.catalog.get_table("m").append_rows(rows)
    return con


def _time_both(con, sql: str) -> tuple[float, float, list, list]:
    """(kernel_seconds, row_loop_seconds, kernel_rows, row_loop_rows)."""
    previous = set_kernels_enabled(True)
    try:
        start = time.perf_counter()
        fast = con.execute(sql).fetchall()
        fast_s = time.perf_counter() - start
        set_kernels_enabled(False)
        start = time.perf_counter()
        slow = con.execute(sql).fetchall()
        slow_s = time.perf_counter() - start
    finally:
        set_kernels_enabled(previous)
    return fast_s, slow_s, fast, slow


class TestAggSortKernelSpeedup:
    def test_group_by_speedup(self):
        con = _load_table()
        fast_s, slow_s, fast, slow = _time_both(
            con,
            "SELECT g, count(*), sum(v), min(v), max(v), avg(x) "
            "FROM m GROUP BY g",
        )
        assert sorted(map(repr, fast)) == sorted(map(repr, slow))
        speedup = slow_s / fast_s
        print(f"\ngroup-by: kernels {fast_s * 1000:.1f}ms, "
              f"row loop {slow_s * 1000:.1f}ms, speedup {speedup:.1f}x")
        assert speedup >= 5.0

    def test_order_by_speedup(self):
        con = _load_table()
        fast_s, slow_s, fast, slow = _time_both(
            con, "SELECT g, v, x FROM m ORDER BY g, v DESC, x"
        )
        assert list(map(repr, fast)) == list(map(repr, slow))
        speedup = slow_s / fast_s
        print(f"\norder-by: kernels {fast_s * 1000:.1f}ms, "
              f"row loop {slow_s * 1000:.1f}ms, speedup {speedup:.1f}x")
        assert speedup >= 2.0

    def test_distinct_speedup(self):
        con = _load_table()
        fast_s, slow_s, fast, slow = _time_both(
            con, "SELECT DISTINCT g FROM m"
        )
        assert sorted(map(repr, fast)) == sorted(map(repr, slow))
        speedup = slow_s / fast_s
        print(f"\ndistinct: kernels {fast_s * 1000:.1f}ms, "
              f"row loop {slow_s * 1000:.1f}ms, speedup {speedup:.1f}x")
        assert speedup >= 2.0

    def test_explain_analyze_reports_kernel_use(self):
        con = _load_table()
        plan = con.execute(
            "EXPLAIN ANALYZE SELECT g, sum(v) FROM m GROUP BY g ORDER BY g"
        ).fetchall()[0][0]
        assert "rows_in=" in plan
        assert "kernel=" in plan and "fallback=" in plan
