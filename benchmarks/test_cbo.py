"""Cost-based vs heuristic join ordering on BerlinMOD workloads.

Each query here lists its FROM tables in an order that is bad for the
heuristic left-deep planner — the selective ``Licences`` filter sits on
the *last* relation, and the 4-table skew query interleaves ``Periods``
so that the binder-order plan starts with a Trips x Periods cross
product.  With ``ANALYZE`` statistics and ``SET cbo = on`` the DP join
search pulls the filtered relation ahead and the cross product never
forms.

Every leg runs both ways (``cbo = on`` / ``cbo = off``) on the same
connection, checks the row multisets agree, and appends
``{"query", "cbo", "seconds"}`` legs to ``BENCH_cbo.json`` (the CI
bench-smoke artifact, next to ``BENCH_fig12.json``).  The acceptance
bar lives on the seeded-skew 4-table join: cbo-on must beat cbo-off
wall-clock.
"""

from __future__ import annotations

import json
import os
import time

from repro import core
from repro.berlinmod import generate, load_dataset

BERLINMOD_SF = float(os.environ.get("REPRO_BENCH_CBO_SF", "0.005"))
ROUNDS = int(os.environ.get("REPRO_BENCH_CBO_ROUNDS", "3"))

_REPORT_PATH = os.environ.get("REPRO_BENCH_CBO_JSON", "BENCH_cbo.json")
_LEGS: list[dict] = []

#: (name, sql) — FROM-orders chosen so the heuristic plan is maximally
#: wrong: the selective predicate is always on the last relation.
QUERIES = [
    (
        "chain_3",
        "SELECT count(*) FROM Trips t, Vehicles v, Licences l"
        " WHERE t.VehicleId = v.VehicleId AND v.VehicleId = l.VehicleId"
        " AND l.LicenceId <= 3",
    ),
    (
        "skew_4",
        # Binder order joins Trips x Periods first — no conjunct links
        # them, so the heuristic plan opens with a cross product of the
        # two; the DP instead starts from the 5-row Licences slice.
        "SELECT count(*), min(t.SeqNo) FROM"
        " Trips t, Periods p, Vehicles v, Licences l"
        " WHERE t.VehicleId = v.VehicleId AND v.VehicleId = l.VehicleId"
        " AND p.PeriodId = l.LicenceId AND l.LicenceId <= 5",
    ),
    (
        "star_5",
        "SELECT count(*) FROM"
        " Trips t, Instants i, Periods p, Vehicles v, Licences l"
        " WHERE t.VehicleId = v.VehicleId AND v.VehicleId = l.VehicleId"
        " AND p.PeriodId = l.LicenceId AND i.InstantId = p.PeriodId"
        " AND l.LicenceId BETWEEN 3 AND 12",
    ),
]


def _record(query: str, cbo: str, seconds: float) -> None:
    _LEGS.append({"query": query, "cbo": cbo, "seconds": seconds})
    # Rewrite after every leg so the artifact exists even if a later
    # benchmark fails.
    with open(_REPORT_PATH, "w") as fh:
        json.dump({"scale_factor": BERLINMOD_SF, "legs": _LEGS}, fh,
                  indent=2, sort_keys=True)
    print(f"\n{query} cbo={cbo}: {seconds * 1000:.1f}ms")


def _time_both(con, sql: str) -> tuple[float, float]:
    """Best-of-``ROUNDS`` seconds with cbo on and off; asserts both
    modes return the same rows."""
    best = {"on": float("inf"), "off": float("inf")}
    rows = {}
    try:
        for _ in range(ROUNDS):
            for mode in ("on", "off"):
                con.execute(f"SET cbo = {mode}")
                start = time.perf_counter()
                rows[mode] = con.execute(sql).fetchall()
                best[mode] = min(best[mode],
                                 time.perf_counter() - start)
    finally:
        con.execute("SET cbo = on")
    assert sorted(map(repr, rows["on"])) == sorted(map(repr, rows["off"]))
    return best["on"], best["off"]


class TestCostBasedJoinOrder:
    con = None

    @classmethod
    def setup_class(cls):
        cls.con = core.connect()
        load_dataset(cls.con, generate(BERLINMOD_SF))
        cls.con.execute("ANALYZE")

    @classmethod
    def teardown_class(cls):
        if cls.con is not None:
            cls.con.close()

    def test_join_order_legs(self):
        ratios = {}
        for name, sql in QUERIES:
            self.con.execute(sql)  # warm caches before timing
            on_s, off_s = _time_both(self.con, sql)
            _record(name, "on", on_s)
            _record(name, "off", off_s)
            ratios[name] = off_s / on_s if on_s > 0 else float("inf")
            print(f"{name}: cbo-on is {ratios[name]:.2f}x vs heuristic")
        # Acceptance bar: on the seeded-skew 4-table join the
        # cost-based order must win wall-clock.
        assert ratios["skew_4"] > 1.0, ratios


def test_report_written():
    assert os.path.exists(_REPORT_PATH)
    with open(_REPORT_PATH) as fh:
        report = json.load(fh)
    names = {leg["query"] for leg in report["legs"]}
    assert {"chain_3", "skew_4", "star_5"} <= names
