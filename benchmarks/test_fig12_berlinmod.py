"""Figure 12 reproduction: the 17 BerlinMOD queries, 3 scenarios, N SFs.

Runs every benchmark query on (a) MobilityDuck (quack + extension),
(b) the MobilityDB baseline without indexes, and (c) the baseline with
GiST/B-tree indexes, and prints the runtime grid.  Row counts must match
across all three scenarios — correctness first, then speed.

Default scale factors are 0.001 and 0.002 (override with
``REPRO_BENCH_SFS=0.001,0.002,0.005,0.01`` for the paper's full grid).

Expected shape (paper §6.3.2): MobilityDuck beats the unindexed baseline
on the large majority of queries; the indexed baseline wins back a few
join-heavy queries (paper: Q10, Q14) through GiST index nested-loop joins.
"""

import time

import pytest

from repro.berlinmod import QUERIES, get_query

from conftest import bench_scale_factors, scenario_for, timed

_SCENARIOS = ("mobilityduck", "mobilitydb", "mobilitydb_idx")
_SFS = bench_scale_factors()

_GRID: dict[tuple[float, int, str], float] = {}
_ROWS: dict[tuple[float, int, str], int] = {}


@pytest.mark.parametrize("sf", _SFS)
@pytest.mark.parametrize("number", [q.number for q in QUERIES])
def test_fig12_cell(sf, number, benchmark):
    query = get_query(number)
    results = {}
    for name in _SCENARIOS:
        scenario = scenario_for(sf, name)
        elapsed, result = timed(scenario.run, query.sql)
        _GRID[(sf, number, name)] = elapsed
        _ROWS[(sf, number, name)] = len(result)
        results[name] = result

    # Correctness: all three scenarios agree on the row count.
    counts = {name: len(r) for name, r in results.items()}
    assert len(set(counts.values())) == 1, (
        f"Q{number} SF {sf}: row counts diverge {counts}"
    )

    benchmark.extra_info.update(
        scale_factor=sf,
        query=number,
        rows=counts["mobilityduck"],
        **{f"{name}_s": _GRID[(sf, number, name)] for name in _SCENARIOS},
    )
    scenario = scenario_for(sf, "mobilityduck")
    benchmark.pedantic(scenario.run, args=(query.sql,), rounds=1,
                       iterations=1)


@pytest.mark.parametrize("sf", _SFS)
def test_fig12_query5_optimized_variant(sf, benchmark):
    """§6.3's *_gs rewrite of Query 5 must not be slower than the
    WKB-round-trip version on MobilityDuck."""
    query = get_query(5)
    scenario = scenario_for(sf, "mobilityduck")
    standard_s, standard = timed(scenario.run, query.sql)
    optimized_s, optimized = timed(scenario.run, query.optimized_sql)
    assert len(standard) == len(optimized)
    benchmark.extra_info.update(standard_s=standard_s,
                                optimized_s=optimized_s)
    benchmark.pedantic(scenario.run, args=(query.optimized_sql,),
                       rounds=1, iterations=1)
    assert optimized_s <= standard_s * 1.5


def test_fig12_summary(benchmark):
    if not _GRID:
        pytest.skip("grid did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nFigure 12 — runtimes in seconds "
          "(duck | mobilitydb | mobilitydb+idx):")
    wins = 0
    total = 0
    for sf in _SFS:
        print(f"\n  SF {sf}:")
        for query in QUERIES:
            n = query.number
            duck = _GRID.get((sf, n, "mobilityduck"))
            plain = _GRID.get((sf, n, "mobilitydb"))
            idx = _GRID.get((sf, n, "mobilitydb_idx"))
            if duck is None:
                continue
            rows = _ROWS[(sf, n, "mobilityduck")]
            marker = "*" if duck <= min(plain, idx) else " "
            print(f"   Q{n:<3} {duck:>8.3f} | {plain:>8.3f} | "
                  f"{idx:>8.3f}  ({rows} rows) {marker}")
            total += 1
            if duck < plain:
                wins += 1
    print(f"\nMobilityDuck faster than the unindexed baseline on "
          f"{wins}/{total} cells")
    # Paper headline: MobilityDuck outperforms unindexed MobilityDB in the
    # large majority of cases.
    assert wins >= total * 0.6
