"""Figure 1 reproduction: execution plan with an injected TRTREE scan.

The paper's Figure 1 shows DuckDB's plan for the §4.4 overlap query after
index-scan injection.  This bench builds the same table/index, asserts
the plan contains the TRTREE index scan node, and prints the plan.
"""

import pytest

from repro import core

SETUP = """
CREATE TABLE test_geo("times" timestamptz, "box" stbox);
CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box);
INSERT INTO test_geo
SELECT ('2025-08-11 12:00:00'::timestamp +
  INTERVAL (i || ' minutes')) AS times,
  ('STBOX X((' ||
  (i * 1.0)::DECIMAL(10,2) || ',' ||
  (i * 1.0)::DECIMAL(10,2) || '),(' ||
  (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' ||
  (i * 1.0 + 0.5)::DECIMAL(10,2) || '))') AS stbox_data
FROM generate_series(1, 1000) AS t(i);
"""

QUERY = """
SELECT * FROM test_geo
WHERE box && STBOX('STBOX X((1000.0,1000.0), (1100.0,1100.0))')
"""


@pytest.fixture(scope="module")
def con():
    connection = core.connect()
    connection.execute(SETUP)
    return connection


def test_fig1_plan_shows_index_scan(con, benchmark):
    plan = benchmark(con.explain, QUERY)
    print("\nFigure 1 — execution plan:")
    print(plan)
    assert "TRTREE_INDEX_SCAN" in plan
    assert "SEQ_SCAN" not in plan
    lines = [line.strip() for line in plan.splitlines()]
    assert lines[0].startswith("PROJECTION")
    assert lines[-1].startswith("TRTREE_INDEX_SCAN")


def test_fig1_query_result(con, benchmark):
    """The paper's query box touches only the last row (box 1000)."""
    result = benchmark(con.execute, QUERY)
    assert len(result) == 1
