"""Figure 2 reproduction: R-tree index scan vs sequential scan scaling.

The paper compares four configurations over tables of 1k/10k/100k/1M rows
(5-run averages, log-scale y):

* MobilityDuck TRTREE index scan on ``stbox``
* MobilityDuck sequential scan on ``stbox``
* native (DuckDB-Spatial) RTREE index scan on ``geometry``
* native sequential scan on ``geometry``

Expected shape: both sequential scans grow linearly with table size while
both index scans stay flat, with the TRTREE scan at least matching the
native one.  Set ``REPRO_BENCH_FULL=1`` to include the 1M-row point.
"""

import time

import pytest

from repro import core, geo
from repro.meos import STBox

from conftest import full_grid

_SIZES = [1_000, 10_000, 100_000]
if full_grid():
    _SIZES.append(1_000_000)

_RUNS = 5

_RESULTS: dict[tuple[str, int], float] = {}


def _build_tables(rows: int):
    """test_geo (stbox) + test_geo_geom (geometry), like §4.4."""
    con = core.connect()
    con.execute('CREATE TABLE test_geo("times" timestamptz, "box" stbox)')
    con.execute(
        "CREATE TABLE test_geo_geom("
        '"times" timestamptz, "box" stbox, geom GEOMETRY)'
    )
    base_ts = 1_754_913_600_000_000  # 2025-08-11 12:00:00 UTC
    boxes = []
    geom_rows = []
    for i in range(1, rows + 1):
        box = STBox(i * 1.0, i * 1.0, i * 1.0 + 0.5, i * 1.0 + 0.5)
        ts = base_ts + i * 60_000_000
        boxes.append((ts, box))
        geom_rows.append((ts, box, box.to_geometry()))
    con.database.catalog.get_table("test_geo").append_rows(boxes)
    con.database.catalog.get_table("test_geo_geom").append_rows(geom_rows)
    return con


def _query_stbox(rows: int) -> str:
    # The paper queries a fixed box (1000..1100) at every scale.
    lo, hi = 1000, 1100
    return (
        "SELECT * FROM test_geo WHERE box && "
        f"STBOX('STBOX X(({lo}.0,{lo}.0),({hi}.0,{hi}.0))')"
    )


def _query_geom(rows: int) -> str:
    lo, hi = 1000, 1100
    return (
        "SELECT * FROM test_geo_geom WHERE ST_Intersects(geom, "
        f"{{min_x: {lo}, min_y: {lo}, max_x: {hi}, max_y: {hi}}}::BOX_2D)"
    )


def _average(con, sql: str) -> tuple[float, int]:
    rows = 0
    start = time.perf_counter()
    for _ in range(_RUNS):
        rows = len(con.execute(sql))
    return (time.perf_counter() - start) / _RUNS, rows


@pytest.fixture(scope="module")
def tables():
    return {rows: _build_tables(rows) for rows in _SIZES}


@pytest.mark.parametrize("rows", _SIZES)
def test_fig2_point(tables, rows, benchmark):
    con = tables[rows]
    seq_stbox, n1 = _average(con, _query_stbox(rows))
    seq_geom, n2 = _average(con, _query_geom(rows))

    con.execute("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)")
    con.execute(
        "CREATE INDEX rtree_geom ON test_geo_geom USING RTREE(geom)"
    )
    assert "TRTREE_INDEX_SCAN" in con.explain(_query_stbox(rows))
    assert "RTREE_INDEX_SCAN" in con.explain(_query_geom(rows))
    idx_stbox, n3 = _average(con, _query_stbox(rows))
    idx_geom, n4 = _average(con, _query_geom(rows))

    assert n1 == n3, "index scan changed the stbox result"
    assert n2 == n4, "index scan changed the geometry result"

    _RESULTS[("mobilityduck_index", rows)] = idx_stbox
    _RESULTS[("mobilityduck_seq", rows)] = seq_stbox
    _RESULTS[("duckdb_index", rows)] = idx_geom
    _RESULTS[("duckdb_seq", rows)] = seq_geom

    benchmark.extra_info.update(
        rows=rows,
        mobilityduck_index_s=idx_stbox,
        mobilityduck_seq_s=seq_stbox,
        duckdb_index_s=idx_geom,
        duckdb_seq_s=seq_geom,
    )
    benchmark.pedantic(
        lambda: con.execute(_query_stbox(rows)), rounds=_RUNS, iterations=1
    )

    # Paper shape at this point: index scan beats sequential scan from 10k
    # rows on (at 1k they are comparable).
    if rows >= 10_000:
        assert idx_stbox < seq_stbox
        assert idx_geom < seq_geom


def test_fig2_series_shape(tables, benchmark):
    """Cross-size assertions + the printed Figure 2 series."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    header = (f"{'rows':>9} {'duck TRTREE':>12} {'duck seq':>12} "
              f"{'native RTREE':>13} {'native seq':>12}")
    print("\nFigure 2 — average runtime (s) over 5 runs:")
    print(header)
    for rows in _SIZES:
        print(
            f"{rows:>9} "
            f"{_RESULTS[('mobilityduck_index', rows)]:>12.5f} "
            f"{_RESULTS[('mobilityduck_seq', rows)]:>12.5f} "
            f"{_RESULTS[('duckdb_index', rows)]:>13.5f} "
            f"{_RESULTS[('duckdb_seq', rows)]:>12.5f}"
        )
    small, large = _SIZES[0], _SIZES[-1]
    seq_growth = (
        _RESULTS[("mobilityduck_seq", large)]
        / _RESULTS[("mobilityduck_seq", small)]
    )
    idx_growth = (
        _RESULTS[("mobilityduck_index", large)]
        / max(_RESULTS[("mobilityduck_index", small)], 1e-9)
    )
    size_ratio = large / small
    # Sequential scan grows roughly with table size; the index scan stays
    # nearly flat (paper: "virtually the same across all 4 scales").
    assert seq_growth > size_ratio / 10
    assert idx_growth < seq_growth / 5
