"""Speedup of the vectorized join pipeline and stbox predicate kernels.

The quack hash join builds and probes through ``JoinBuild`` NumPy
kernels, the index nested-loop join batches its R-tree probes, and the
stbox operators run columnar bounding-box prefilters — all with the
original row-at-a-time code behind ``set_kernels_enabled(False)``.

This benchmark times both paths on a 100k-row equi-join (the issue's
5x acceptance bar), a 100k-row stbox-intersects filter, and three
BerlinMOD spatial queries, and writes the grid to
``BENCH_join_kernels.json`` (the CI bench-smoke artifact, next to
``BENCH_fig12.json``).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.meos import STBox
from repro.quack import Database
from repro.quack.kernels import set_kernels_enabled
from repro import core
from repro.berlinmod import get_query

from conftest import scenario_for

N_ROWS = 100_000
BERLINMOD_SF = float(os.environ.get("REPRO_BENCH_JOIN_SF", "0.002"))
BERLINMOD_QUERIES = (4, 7, 14)

_REPORT_PATH = os.environ.get(
    "REPRO_BENCH_JOIN_JSON", "BENCH_join_kernels.json"
)
_RESULTS: dict[str, dict] = {}


def _record(name: str, kernel_s: float, row_loop_s: float,
            rows: int) -> float:
    speedup = row_loop_s / kernel_s if kernel_s > 0 else float("inf")
    _RESULTS[name] = {
        "kernel_s": kernel_s,
        "row_loop_s": row_loop_s,
        "speedup": speedup,
        "rows": rows,
    }
    # Rewrite after every entry so the artifact exists even if a later
    # benchmark fails.
    with open(_REPORT_PATH, "w") as fh:
        json.dump(_RESULTS, fh, indent=2, sort_keys=True)
    print(f"\n{name}: kernels {kernel_s * 1000:.1f}ms, "
          f"row loop {row_loop_s * 1000:.1f}ms, speedup {speedup:.2f}x")
    return speedup


def _time_both(run, rounds: int = 1):
    """Best-of-``rounds`` seconds for kernels on and off, plus results."""
    best = {True: float("inf"), False: float("inf")}
    results = {}
    previous = set_kernels_enabled(True)
    try:
        for _ in range(rounds):
            for mode in (True, False):
                set_kernels_enabled(mode)
                start = time.perf_counter()
                results[mode] = run()
                best[mode] = min(best[mode],
                                 time.perf_counter() - start)
    finally:
        set_kernels_enabled(previous)
    return best[True], best[False], results[True], results[False]


class TestEquiJoinSpeedup:
    def test_hash_join_100k(self):
        con = Database().connect()
        con.execute("CREATE TABLE build(k BIGINT, payload BIGINT)")
        con.execute("CREATE TABLE probe(k BIGINT, payload BIGINT)")
        rng = np.random.default_rng(7)
        build_rows = [(int(i), int(i * 3)) for i in range(N_ROWS)]
        probe_keys = rng.integers(0, N_ROWS, N_ROWS)
        probe_rows = [(int(k), int(i)) for i, k in enumerate(probe_keys)]
        con.database.catalog.get_table("build").append_rows(build_rows)
        con.database.catalog.get_table("probe").append_rows(probe_rows)

        sql = ("SELECT count(*), sum(b.payload) FROM probe p, build b "
               "WHERE p.k = b.k")
        fast_s, slow_s, fast, slow = _time_both(
            lambda: con.execute(sql).fetchall()
        )
        assert fast == slow
        speedup = _record("equi_join_100k", fast_s, slow_s, N_ROWS)
        assert speedup >= 5.0


class TestStboxFilterSpeedup:
    def test_stbox_intersects_100k(self):
        con = core.connect()
        con.execute("CREATE TABLE boxes(id BIGINT, box STBOX)")
        rng = np.random.default_rng(11)
        xs = rng.uniform(0, 1000, N_ROWS)
        ys = rng.uniform(0, 1000, N_ROWS)
        rows = [
            (int(i), STBox(xmin=float(x), ymin=float(y),
                           xmax=float(x) + 5.0, ymax=float(y) + 5.0))
            for i, (x, y) in enumerate(zip(xs, ys))
        ]
        con.database.catalog.get_table("boxes").append_rows(rows)

        sql = ("SELECT count(*) FROM boxes WHERE box && "
               "STBOX('STBOX X((400,400),(600,600))')")
        fast_s, slow_s, fast, slow = _time_both(
            lambda: con.execute(sql).fetchall()
        )
        assert fast == slow
        speedup = _record("stbox_intersects_100k", fast_s, slow_s, N_ROWS)
        assert speedup >= 1.5


class TestBerlinmodSpatialQueries:
    """The paper's BerlinMOD queries with kernels on vs off.

    Acceptance: a measurable speedup on at least two spatial queries.
    Q4/Q7 combine a VehicleId equi-join with ``Trip && stbox(geom)``
    prefilters and repeated-geometry scalar work; Q14 joins trips
    against period/point frames."""

    def test_spatial_queries(self):
        scenario = scenario_for(BERLINMOD_SF, "mobilityduck")
        speedups = {}
        for number in BERLINMOD_QUERIES:
            query = get_query(number)
            scenario.run(query.sql)  # warm caches before timing
            fast_s, slow_s, fast, slow = _time_both(
                lambda sql=query.sql: scenario.run(sql), rounds=3
            )
            assert len(fast) == len(slow)
            speedups[number] = _record(
                f"berlinmod_q{number}_sf{BERLINMOD_SF}",
                fast_s, slow_s, len(fast),
            )
        measurable = [n for n, s in speedups.items() if s >= 1.1]
        assert len(measurable) >= 2, speedups


def test_report_written():
    assert os.path.exists(_REPORT_PATH)
    with open(_REPORT_PATH) as fh:
        report = json.load(fh)
    assert "equi_join_100k" in report
