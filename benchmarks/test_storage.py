"""Persistent-storage benchmarks: zone-map scan skipping and spilling.

Two families of legs, appended to ``BENCH_storage.json`` (the CI
bench-smoke artifact, next to ``BENCH_cbo.json``):

* **zonemap** — a selective predicate over a freshly attached
  ``.quackdb`` file, timed with zone maps on and off.  Each measurement
  re-attaches the file so every row group the scan touches must be
  decompressed: the on/off delta is then the decode work the zone maps
  skipped.  Acceptance bar: the pruned scan touches at most 20% of the
  row groups and is at least 3x faster than the full cold scan.
* **spill** — sort and join whose working set is ~10x the configured
  ``SET memory_limit``, against the same queries fully in-memory.  No
  speed bar here — external runs are expected to cost more — but the
  row sequences must be bit-identical.
"""

from __future__ import annotations

import json
import os
import time

from repro.quack import Database

#: Rows in the zone-map table (~49 row groups at the 2048 default).
ZONEMAP_ROWS = int(os.environ.get("REPRO_BENCH_STORAGE_ROWS", "100000"))
#: Rows in the spill legs; at ~88 bytes/row the working set is ~9 MB,
#: an order of magnitude over the 1 MB ``memory_limit`` they run under.
SPILL_ROWS = ZONEMAP_ROWS
#: The small memory budget of the larger-than-memory legs (MB).
SPILL_LIMIT_MB = 1.0
ROUNDS = int(os.environ.get("REPRO_BENCH_STORAGE_ROUNDS", "3"))
#: Required cold-scan speedup from zone-map skipping.
MIN_SPEEDUP = 3.0
#: Pruned scans must touch at most this fraction of the row groups.
MAX_SCANNED_FRACTION = 0.20

_REPORT_PATH = os.environ.get("REPRO_BENCH_STORAGE_JSON",
                              "BENCH_storage.json")
_LEGS: list[dict] = []


def _record(leg: str, mode: str, seconds: float, **extra) -> None:
    _LEGS.append({"leg": leg, "mode": mode, "seconds": seconds, **extra})
    # Rewrite after every leg so the artifact exists even if a later
    # benchmark fails.
    with open(_REPORT_PATH, "w") as fh:
        json.dump({"rows": ZONEMAP_ROWS, "legs": _LEGS}, fh,
                  indent=2, sort_keys=True)
    print(f"\n{leg} {mode}: {seconds * 1000:.1f}ms")


def _seed_rows(n: int):
    return [(i, f"key{i:010d}", float(i) * 0.5, i % 211)
            for i in range(n)]


class TestZoneMapSkipping:
    path = None

    @classmethod
    def setup_class(cls):
        import tempfile

        cls._dir = tempfile.TemporaryDirectory(prefix="quack-bench-")
        cls.path = os.path.join(cls._dir.name, "zonemap.quackdb")
        con = Database().connect()
        con.execute("CREATE TABLE t(a BIGINT, b VARCHAR, x DOUBLE,"
                    " g BIGINT)")
        con.database.catalog.get_table("t").append_rows(
            _seed_rows(ZONEMAP_ROWS)
        )
        con.execute(f"CHECKPOINT '{cls.path}'")
        con.close()

    @classmethod
    def teardown_class(cls):
        cls._dir.cleanup()

    def _cold_run(self, sql: str, zone_maps: str):
        """Attach fresh (cold decode caches), run once, return
        (seconds, rowgroups scanned, rowgroups skipped)."""
        con = Database().connect()
        con.execute(f"ATTACH '{self.path}'")
        con.execute(f"SET zone_maps = {zone_maps}")
        start = time.perf_counter()
        rows = con.execute(sql).fetchall()
        seconds = time.perf_counter() - start
        stats = con.last_query_stats
        scanned = stats.counter("storage.rowgroups_scanned")
        skipped = stats.counter("storage.rowgroups_skipped")
        con.close()
        return seconds, scanned, skipped, rows

    def test_selective_scan_speedup(self):
        lo = ZONEMAP_ROWS // 2
        sql = (f"SELECT count(*), sum(x) FROM t "
               f"WHERE a BETWEEN {lo} AND {lo + 999}")
        best = {"on": float("inf"), "off": float("inf")}
        scanned = skipped = 0
        answers = {}
        for _ in range(ROUNDS):
            for mode in ("on", "off"):
                seconds, got_scanned, got_skipped, rows = self._cold_run(
                    sql, mode
                )
                best[mode] = min(best[mode], seconds)
                answers[mode] = rows
                if mode == "on":
                    scanned, skipped = got_scanned, got_skipped
        assert answers["on"] == answers["off"]
        _record("zonemap_selective", "on", best["on"],
                rowgroups_scanned=scanned, rowgroups_skipped=skipped)
        _record("zonemap_selective", "off", best["off"])
        total = scanned + skipped
        fraction = scanned / total
        speedup = best["off"] / best["on"]
        print(f"zone maps scanned {scanned}/{total} groups "
              f"({fraction:.1%}), speedup {speedup:.2f}x")
        assert fraction <= MAX_SCANNED_FRACTION, (scanned, total)
        assert speedup >= MIN_SPEEDUP, speedup


class TestSpillAtScale:
    con = None

    @classmethod
    def setup_class(cls):
        cls.con = Database().connect()
        cls.con.execute("CREATE TABLE big(a BIGINT, b VARCHAR, x DOUBLE,"
                        " g BIGINT)")
        rows = [(((i * 2654435761) % SPILL_ROWS), f"key{i:010d}",
                 float(i) * 0.5, i % 211) for i in range(SPILL_ROWS)]
        cls.con.database.catalog.get_table("big").append_rows(rows)
        cls.con.execute("CREATE TABLE dim(g BIGINT, name VARCHAR)")
        cls.con.database.catalog.get_table("dim").append_rows(
            [(i, f"group{i:06d}") for i in range(211)]
        )

    @classmethod
    def teardown_class(cls):
        if cls.con is not None:
            cls.con.close()

    def _time_leg(self, leg: str, sql: str, limit_mb: float,
                  spill_counter: str) -> None:
        con = self.con
        con.execute("SET memory_limit = 0")
        start = time.perf_counter()
        in_memory = con.execute(sql).fetchall()
        memory_s = time.perf_counter() - start
        con.execute(f"SET memory_limit = {limit_mb}")
        try:
            start = time.perf_counter()
            spilled = con.execute(sql).fetchall()
            spill_s = time.perf_counter() - start
            stats = con.last_query_stats
            assert stats.counter(spill_counter) >= 1, spill_counter
            spill_bytes = stats.counter("storage.spill_bytes")
        finally:
            con.execute("SET memory_limit = 0")
        # Bit-identical: same rows in the same order.
        assert spilled == in_memory
        _record(leg, "in_memory", memory_s)
        _record(leg, "spill", spill_s, memory_limit_mb=limit_mb,
                spill_bytes=spill_bytes)

    def test_sort_larger_than_memory(self):
        self._time_leg(
            "sort_10x",
            "SELECT a, b FROM big ORDER BY g, a",
            SPILL_LIMIT_MB,
            "storage.spilled_sorts",
        )

    def test_join_larger_than_memory(self):
        self._time_leg(
            "join_10x",
            "SELECT big.a, dim.name FROM dim, big"
            " WHERE big.g = dim.g AND big.a < %d" % (SPILL_ROWS // 4),
            SPILL_LIMIT_MB,
            "storage.spilled_joins",
        )


def test_report_written():
    assert os.path.exists(_REPORT_PATH)
    with open(_REPORT_PATH) as fh:
        report = json.load(fh)
    names = {leg["leg"] for leg in report["legs"]}
    assert {"zonemap_selective", "sort_10x", "join_10x"} <= names
