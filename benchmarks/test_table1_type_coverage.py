"""Table 1 reproduction: the MobilityDuck type-coverage matrix.

Asserts that every green cell of the paper's Table 1 is registered and
instantiable in the loaded extension, every white cell (MobilityDB-only)
is absent, and prints the matrix in the paper's layout.
"""

import pytest

from repro import core
from repro.core.types import TYPE_COVERAGE

_SAMPLES = {
    "textset": "'{\"a\", \"b\"}'::textset",
    "intset": "'{1, 2}'::intset",
    "bigintset": "'{1, 2}'::bigintset",
    "floatset": "'{1.5}'::floatset",
    "dateset": "'{2025-01-01}'::dateset",
    "tstzset": "'{2025-01-01}'::tstzset",
    "geomset": "'{Point(1 1)}'::geomset",
    "intspan": "'[1, 2]'::intspan",
    "bigintspan": "'[1, 2]'::bigintspan",
    "floatspan": "'[1.0, 2.0]'::floatspan",
    "datespan": "'[2025-01-01, 2025-01-02]'::datespan",
    "tstzspan": "'[2025-01-01, 2025-01-02]'::tstzspan",
    "intspanset": "'{[1, 2]}'::intspanset",
    "bigintspanset": "'{[1, 2]}'::bigintspanset",
    "floatspanset": "'{[1.0, 2.0]}'::floatspanset",
    "datespanset": "'{[2025-01-01, 2025-01-02]}'::datespanset",
    "tstzspanset": "'{[2025-01-01, 2025-01-02]}'::tstzspanset",
    "tbool": "'t@2025-01-01'::tbool",
    "tint": "'1@2025-01-01'::tint",
    "tfloat": "'1.5@2025-01-01'::tfloat",
    "ttext": "'\"x\"@2025-01-01'::ttext",
    "tgeompoint": "'Point(1 1)@2025-01-01'::tgeompoint",
}

_SHORT = {
    "integer": "int", "timestamptz": "tstz", "geometry": "geom",
    "geography": "geog",
}
_TEMPORAL = {
    "bool": "tbool", "integer": "tint", "float": "tfloat",
    "text": "ttext", "geometry": "tgeompoint",
}


def _cell_type(base: str, template: str) -> str | None:
    if template == "temporal":
        return _TEMPORAL.get(base)
    short = _SHORT.get(base, base)
    return f"{short}{template}"


@pytest.fixture(scope="module")
def con():
    return core.connect()


def test_table1_matrix(con, benchmark):
    """Regenerate Table 1 and validate it cell by cell."""

    def build():
        rows = []
        for base, row in TYPE_COVERAGE.items():
            cells = {}
            for template, status in row.items():
                name = _cell_type(base, template)
                if status == "duck":
                    assert name is not None
                    assert con.database.types.known(name), name
                    cells[template] = name
                elif status == "mobilitydb":
                    cells[template] = f"({name or base + template})"
                else:
                    cells[template] = ""
            rows.append((base, cells))
        return rows

    rows = benchmark(build)
    header = f"{'base type':<12} {'set':<14} {'span':<13} " \
             f"{'spanset':<15} {'temporal':<12}"
    print("\nTable 1 — template types (parentheses = MobilityDB only):")
    print(header)
    print("-" * len(header))
    for base, cells in rows:
        print(f"{base:<12} {cells['set']:<14} {cells['span']:<13} "
              f"{cells['spanset']:<15} {cells['temporal']:<12}")


@pytest.mark.parametrize("name,literal", sorted(_SAMPLES.items()))
def test_green_cells_instantiable(con, name, literal, benchmark):
    """Each supported type parses a sample literal through SQL."""
    result = benchmark.pedantic(
        lambda: con.execute(f"SELECT {literal}").scalar(),
        rounds=3, iterations=1,
    )
    assert result is not None
