"""Table 2 reproduction: BerlinMOD-Hanoi dataset statistics.

The paper's Table 2 lists vehicles/days/trips/size at SF 0.01–0.1.
Vehicle and day counts must match exactly (they follow the BerlinMOD
scale rules); trip counts are stochastic and must land within 15%.
Set ``REPRO_BENCH_FULL=1`` for the SF 0.05/0.1 rows.
"""

import pytest

from repro.berlinmod import ScaleParams, generate

from conftest import full_grid

#: SF -> (vehicles, days, trips) from the paper's Table 2.
_PAPER = {
    0.01: (200, 5, 2_903),
    0.02: (283, 6, 4_641),
    0.05: (447, 8, 9_491),
    0.1: (632, 11, 18_910),
}

_SFS = [0.01, 0.02] + ([0.05, 0.1] if full_grid() else [])

_ROWS: dict[float, tuple[int, int, int, float]] = {}


@pytest.mark.parametrize("sf", _SFS)
def test_table2_row(sf, benchmark):
    vehicles, days, trips = _PAPER[sf]
    params = ScaleParams.for_scale(sf)
    assert params.vehicles == vehicles
    assert params.days == days

    dataset = benchmark.pedantic(generate, args=(sf,), rounds=1,
                                 iterations=1)
    got_trips = len(dataset.trips)
    assert trips * 0.85 <= got_trips <= trips * 1.15, (
        f"SF {sf}: {got_trips} trips vs paper {trips}"
    )
    _ROWS[sf] = (
        params.vehicles, params.days, got_trips,
        dataset.approx_size_bytes() / 1e6,
    )
    benchmark.extra_info.update(
        vehicles=params.vehicles, days=params.days, trips=got_trips,
        paper_trips=trips,
    )


def test_table2_print_and_scaling(benchmark):
    if not _ROWS:
        pytest.skip("no rows generated")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nTable 2 — BerlinMOD-Hanoi datasets (measured):")
    print(f"{'SF':>6} {'Vehicles':>9} {'Days':>5} {'Trips':>7} "
          f"{'Size (MB)':>10} {'paper trips':>12}")
    for sf in sorted(_ROWS):
        vehicles, days, trips, size = _ROWS[sf]
        print(f"{sf:>6} {vehicles:>9} {days:>5} {trips:>7} "
              f"{size:>10.1f} {_PAPER[sf][2]:>12}")
    sfs = sorted(_ROWS)
    if len(sfs) >= 2:
        # Trips and size grow monotonically with the scale factor.
        trips = [_ROWS[sf][2] for sf in sfs]
        sizes = [_ROWS[sf][3] for sf in sfs]
        assert trips == sorted(trips)
        assert sizes == sorted(sizes)
