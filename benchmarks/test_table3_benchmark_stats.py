"""Table 3 reproduction: benchmark dataset statistics at SF 0.001–0.01."""

import pytest

from repro.berlinmod import ScaleParams, generate

#: SF -> (vehicles, trips) from the paper's Table 3.
_PAPER = {
    0.001: (63, 549),
    0.002: (89, 758),
    0.005: (141, 1_620),
    0.01: (200, 2_903),
}

_ROWS: dict[float, tuple[int, int]] = {}


@pytest.mark.parametrize("sf", sorted(_PAPER))
def test_table3_row(sf, benchmark):
    vehicles, trips = _PAPER[sf]
    params = ScaleParams.for_scale(sf)
    assert params.vehicles == vehicles

    dataset = benchmark.pedantic(generate, args=(sf,), rounds=1,
                                 iterations=1)
    got = len(dataset.trips)
    assert trips * 0.85 <= got <= trips * 1.15, (
        f"SF {sf}: {got} trips vs paper {trips}"
    )
    _ROWS[sf] = (params.vehicles, got)
    benchmark.extra_info.update(vehicles=params.vehicles, trips=got,
                                paper_trips=trips)


def test_table3_print(benchmark):
    if not _ROWS:
        pytest.skip("no rows generated")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nTable 3 — benchmark datasets (measured vs paper):")
    print(f"{'SF':>7} {'Vehicles':>9} {'Trips':>7} {'paper trips':>12}")
    for sf in sorted(_ROWS):
        vehicles, trips = _ROWS[sf]
        print(f"{sf:>7} {vehicles:>9} {trips:>7} {_PAPER[sf][1]:>12}")
