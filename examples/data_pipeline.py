#!/usr/bin/env python3
"""Data pipeline: CSV in, SQL analytics, MF-JSON/CSV out.

The paper's §6.2 shows MobilityDuck inside a Python data-science workflow
(DuckDB Python client, pandas, Shapely).  This example runs the offline
equivalent end to end:

1. export raw GPS observations to CSV,
2. load them back with type sniffing (`repro.quack.read_csv`),
3. assemble per-vehicle ``tgeompoint`` sequences in SQL,
4. analyze them (length, speed, simplification),
5. export the result as OGC MF-JSON and CSV.

Run with::

    python examples/data_pipeline.py
"""

import json
import os
import tempfile

from repro import core, meos, quack
from repro.berlinmod import generate


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="mobilityduck_pipeline_")
    dataset = generate(0.001)
    con = core.connect()

    # 1. Raw observation table (vehicle, ts, x, y) exported to CSV —
    #    the shape the paper's demo starts from.
    con.execute(
        "CREATE TABLE observations("
        "vehicle INTEGER, trip INTEGER, ts TIMESTAMPTZ, "
        "x DOUBLE, y DOUBLE)"
    )
    rows = []
    for trip in dataset.trips[:80]:
        for inst in trip.trip.instants():
            rows.append((trip.vehicle_id, trip.trip_id, inst.t,
                         inst.value.x, inst.value.y))
    con.database.catalog.get_table("observations").append_rows(rows)
    csv_path = os.path.join(workdir, "observations.csv")
    quack.write_csv(con.execute("SELECT * FROM observations"), csv_path)
    print(f"exported {len(rows)} observations -> {csv_path}")

    # 2. Load the CSV back (type sniffing infers BIGINT/DOUBLE columns).
    fresh = core.connect()
    loaded = quack.read_csv(fresh, csv_path, "obs")
    print(f"re-imported {loaded} rows with sniffed types")

    # 3. Assemble tgeompoint sequences per trip in SQL (§6.2's
    #    tgeompointSeq step).
    fresh.execute(
        """
        CREATE TABLE trips AS
        SELECT vehicle, trip AS trip_id,
          tgeompointSeq(list(tgeompoint(ST_Point(x, y), ts))) AS Trip
        FROM obs
        GROUP BY vehicle, trip
        """
    )
    count = fresh.execute("SELECT count(*) FROM trips").scalar()
    print(f"assembled {count} tgeompoint trips")

    # 4. Analytics: lengths, top speeds, simplification win.
    result = fresh.execute(
        """
        SELECT vehicle, trip_id,
          round(length(Trip), 1) AS metres,
          numInstants(Trip) AS points,
          numInstants(douglasPeuckerSimplify(Trip, 25.0)) AS simplified
        FROM trips
        ORDER BY metres DESC
        LIMIT 8
        """
    )
    result.show()
    total_points = fresh.execute(
        "SELECT sum(numInstants(Trip)), "
        "sum(numInstants(douglasPeuckerSimplify(Trip, 25.0))) FROM trips"
    ).fetchone()
    print(f"simplification: {total_points[0]} -> {total_points[1]} "
          "instants at 25 m tolerance")

    # 5. Export one trip as MF-JSON (OGC Moving Features).
    trip_value = fresh.execute(
        "SELECT Trip FROM trips ORDER BY length(Trip) DESC LIMIT 1"
    ).scalar()
    mfjson_path = os.path.join(workdir, "top_trip.mfjson")
    with open(mfjson_path, "w") as handle:
        handle.write(meos.as_mfjson(trip_value, with_bbox=True))
    document = json.loads(open(mfjson_path).read())
    print(f"MF-JSON written -> {mfjson_path} "
          f"({document['type']}, {len(document['datetimes'])} datetimes)")

    # Round-trip sanity.
    assert meos.from_mfjson(open(mfjson_path).read()) == trip_value
    print("MF-JSON round trip verified.")


if __name__ == "__main__":
    main()
