#!/usr/bin/env python3
"""Engine comparison: MobilityDuck (columnar) vs the MobilityDB baseline.

Runs a selection of BerlinMOD-Hanoi benchmark queries through the
programmatic harness (`repro.berlinmod.run_benchmark`) across the three
scenarios of the paper's Figure 12 — MobilityDuck, MobilityDB without
indexes, MobilityDB with GiST/B-tree indexes — and prints the grid.

Run with::

    python examples/engine_comparison.py [scale_factor] [q1,q2,...]
"""

import sys

from repro.berlinmod import run_benchmark


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    if len(sys.argv) > 2:
        numbers = [int(n) for n in sys.argv[2].split(",")]
    else:
        numbers = [1, 2, 3, 4, 8, 13, 15]

    print(f"Running queries {numbers} at SF {scale} on all three "
          "scenarios ...")
    report = run_benchmark(scale_factors=[scale], queries=numbers)
    print()
    print(report.format_grid())

    duck_vs_idx = report.win_ratio(against="mobilitydb_idx")
    print(f"mobilityduck wins vs indexed baseline:   {duck_vs_idx:.0%}")


if __name__ == "__main__":
    main()
