#!/usr/bin/env python3
"""Indexing demo: the paper's §4.4 walkthrough.

Creates ``test_geo`` with a TRTREE index (index-first, incremental
construction), inserts synthetic stbox rows with the paper's
generate_series script, shows the execution plan with the injected
TRTREE index scan (Figure 1), and compares index scan vs sequential scan
runtimes (a single point of Figure 2).

Run with::

    python examples/indexing_demo.py [rows]
"""

import sys
import time

from repro import core

INSERT_SCRIPT = """
INSERT INTO test_geo
SELECT ('2025-08-11 12:00:00'::timestamp +
  INTERVAL (i || ' minutes')) AS times,
  ('STBOX X((' ||
  (i * 1.0)::DECIMAL(10,2) || ',' ||
  (i * 1.0)::DECIMAL(10,2) || '),(' ||
  (i * 1.0 + 0.5)::DECIMAL(10,2) || ',' ||
  (i * 1.0 + 0.5)::DECIMAL(10,2) || '))') AS stbox_data
FROM generate_series(1, {rows}) AS t(i)
"""

QUERY = """
SELECT * FROM test_geo
WHERE box && STBOX('STBOX X(({lo}.0,{lo}.0),({hi}.0,{hi}.0))')
"""


def timed(con, sql: str, runs: int = 5) -> tuple[float, int]:
    """Average runtime over ``runs`` executions (like the paper)."""
    rows = 0
    start = time.perf_counter()
    for _ in range(runs):
        rows = len(con.execute(sql))
    return (time.perf_counter() - start) / runs, rows


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    lo, hi = rows // 10, rows // 10 + rows // 100 + 10

    # Indexed table: index first, then incremental inserts (§4.2.1).
    indexed = core.connect()
    indexed.execute(
        'CREATE TABLE test_geo("times" timestamptz, "box" stbox)'
    )
    indexed.execute("CREATE INDEX rtree_stbox ON test_geo USING TRTREE(box)")
    indexed.execute(INSERT_SCRIPT.format(rows=rows))

    # Plain table for the sequential-scan comparison.
    plain = core.connect()
    plain.execute('CREATE TABLE test_geo("times" timestamptz, "box" stbox)')
    plain.execute(INSERT_SCRIPT.format(rows=rows))

    query = QUERY.format(lo=lo, hi=hi)
    print("== Execution plan with TRTREE index (paper Figure 1) ==")
    print(indexed.explain(query))
    print("\n== Execution plan without index ==")
    print(plain.explain(query))

    index_time, index_rows = timed(indexed, query)
    seq_time, seq_rows = timed(plain, query)
    assert index_rows == seq_rows, "index and seq scan disagree!"
    print(f"\nrows={rows}: index scan {index_time * 1000:.2f} ms, "
          f"seq scan {seq_time * 1000:.2f} ms "
          f"({seq_time / index_time:.1f}x speedup), "
          f"{index_rows} matches")


if __name__ == "__main__":
    main()
