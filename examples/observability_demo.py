#!/usr/bin/env python3
"""Observability demo: query statistics, traces, and EXPLAIN ANALYZE.

Walks the three tiers of ``repro.observability``:

1. per-query statistics — counters, peak gauges, and phase timings
   captured on every ``execute`` (``Result.stats()``);
2. structured ``EXPLAIN ANALYZE`` — per-operator rows/timings with
   index-probe annotations, as text and as a JSON tree, on both the
   columnar engine and the row-store baseline;
3. the process-wide metrics registry — cumulative counters and latency
   histograms across all queries run so far.

Run with::

    python examples/observability_demo.py
"""

import json

from repro import core
from repro.observability import REGISTRY

INSERT_SCRIPT = """
INSERT INTO trips_geo
SELECT i,
  ('STBOX X((' || i || ',' || i || '),('
   || (i + 2) || ',' || (i + 2) || '))')
FROM generate_series(1, 2000) AS t(i)
"""

PROBE_QUERY = (
    "SELECT count(*) FROM trips_geo "
    "WHERE box && stbox('STBOX X((500,500),(600,600))')"
)


def setup(con, index_ddl):
    con.execute("CREATE TABLE trips_geo(id INTEGER, box STBOX)")
    con.execute(index_ddl)
    con.execute(INSERT_SCRIPT)


def main():
    duck = core.connect()
    setup(duck, "CREATE INDEX rt ON trips_geo USING TRTREE(box)")

    print("=== 1. Per-query statistics (columnar engine) ===")
    result = duck.execute(PROBE_QUERY)
    stats = result.stats()
    print(f"rows: {result.scalar()}")
    print(f"phases: {stats.format_phases()}")
    print(f"counters: {stats.format_counters()}")
    print()

    print("=== 2a. EXPLAIN ANALYZE, text ===")
    print(duck.explain_analyze(PROBE_QUERY))
    print()

    print("=== 2b. EXPLAIN ANALYZE, json (row-store baseline) ===")
    base = core.connect_baseline()
    setup(base, "CREATE INDEX gx ON trips_geo USING GIST(box)")
    tree = base.explain_analyze(PROBE_QUERY, format="json")
    print(json.dumps(tree, indent=2, sort_keys=True)[:1500])
    print()

    print("=== 3. Process-wide registry ===")
    snapshot = REGISTRY.snapshot()
    print(f"queries_total: {snapshot['counters']['queries_total']}")
    for name, value in sorted(snapshot["counters"].items()):
        if name.startswith(("rtree.", "index.", "pgsim.")):
            print(f"  {name} = {value}")
    latency = snapshot["histograms"]["query_seconds"]
    print(
        f"query latency: n={latency['count']} "
        f"mean={latency['mean'] * 1000:.2f}ms "
        f"max={latency['max'] * 1000:.2f}ms"
    )


if __name__ == "__main__":
    main()
