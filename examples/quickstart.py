#!/usr/bin/env python3
"""Quickstart: MobilityDuck in five minutes.

Creates an embedded database, loads the MobilityDuck extension, and walks
through the paper's §3.5 sample queries: temporal types, sets, spans,
bounding boxes, restriction, and the spatial overlap operator.

Run with::

    python examples/quickstart.py
"""

from repro import core


def main() -> None:
    con = core.connect()  # quack engine + MobilityDuck extension

    print("== Temporal duration (tint over three days) ==")
    result = con.execute(
        "SELECT duration('{1@2025-01-01, 2@2025-01-02, 1@2025-01-03}'"
        "::TINT, true) AS d"
    )
    print("   duration:", result.scalar())  # 2 days

    print("\n== Shift & scale a timestamptz set ==")
    result = con.execute(
        "SELECT shiftScale(tstzset '{2025-01-01, 2025-01-02}', "
        "interval '1 day', interval '1 hour')::VARCHAR AS s"
    )
    print("  ", result.scalar())

    print("\n== Reproject a geometry set to Belgian Lambert 2008 ==")
    result = con.execute(
        "SELECT asEWKT(transform(geomset "
        "'SRID=4326;{Point(2.340088 49.400250), "
        "Point(6.575317 51.553167)}', 3812), 6) AS g"
    )
    print("  ", result.scalar())

    print("\n== Expand a spatiotemporal box ==")
    result = con.execute(
        "SELECT expandSpace(stbox 'STBOX XT(((1.0,2.0),(1.0,2.0)),"
        "[2025-01-01,2025-01-01])', 2.0)::VARCHAR AS b"
    )
    print("  ", result.scalar())

    print("\n== Build a temporal geometry with step interpolation ==")
    result = con.execute(
        "SELECT asEWKT(tgeometry('Point(1 1)', "
        "tstzspan '[2025-01-01, 2025-01-02]', 'step')) AS t"
    )
    print("  ", result.scalar())

    print("\n== Does a trip overlap a bounding box? ==")
    result = con.execute(
        "SELECT tgeompoint '{[Point(1 1)@2025-01-01, "
        "Point(2 2)@2025-01-02, Point(1 1)@2025-01-03],"
        "[Point(3 3)@2025-01-04, Point(3 3)@2025-01-05]}' "
        "&& stbox 'STBOX X((10.0,20.0),(10.0,20.0))' AS overlaps"
    )
    print("   overlaps:", result.scalar())  # False

    print("\n== Restrict a trip to a time span ==")
    result = con.execute(
        "SELECT asText(atTime(tgeompoint "
        "'{[Point(1 1)@2025-01-01, Point(2 2)@2025-01-02, "
        "Point(1 1)@2025-01-03],[Point(3 3)@2025-01-04, "
        "Point(3 3)@2025-01-05]}', "
        "tstzspan '[2025-01-01,2025-01-02]')) AS t"
    )
    print("  ", result.scalar())

    print("\n== Trajectory length of a moving point ==")
    result = con.execute(
        "SELECT length(tgeompoint '[Point(0 0)@2025-01-01, "
        "Point(3 4)@2025-01-02]') AS len"
    )
    print("   length:", result.scalar(), "(expected 5.0)")

    print("\nAll quickstart queries completed.")


if __name__ == "__main__":
    main()
