#!/usr/bin/env python3
"""Timeline tracing demo: where a parallel query's time actually goes.

Runs a 4-worker aggregation and a BerlinMOD spatial join, then walks the
three observability surfaces this repo adds on top of per-query stats:

1. the execution timeline — Chrome trace-event JSON with one flame
   track per morsel worker, written to ``trace_demo_out/`` (drag a file
   into https://ui.perfetto.dev or ``chrome://tracing`` to explore);
2. the rolling query log — every completed query with phase timings,
   filtered by a slow-query threshold (``SET log_min_duration``);
3. the Prometheus endpoint — the process-wide metrics registry served
   over HTTP for a scraper to poll.

Run with::

    python examples/trace_demo.py
"""

import json
import os
from urllib.request import urlopen

from repro import core

OUT_DIR = "trace_demo_out"


def lane_summary(trace: dict) -> str:
    lanes = [
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    begins = [e for e in trace["traceEvents"] if e["ph"] == "B"]
    cats = sorted({e["cat"] for e in begins})
    return (
        f"{len(begins)} intervals on {len(lanes)} lanes "
        f"({', '.join(lanes)}); categories: {', '.join(cats)}"
    )


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    con = core.connect(workers=4)

    print("=== 1. execution timeline ===")
    con.execute("CREATE TABLE readings(sensor INTEGER, value DOUBLE)")
    con.execute(
        "INSERT INTO readings SELECT i % 50, i * 0.25 FROM "
        "generate_series(1, 20000) AS t(i)"
    )
    result = con.execute(
        "SELECT sensor, avg(value), count(*) FROM readings "
        "GROUP BY sensor ORDER BY sensor"
    )
    trace = result.trace()
    path = os.path.join(OUT_DIR, "aggregate.trace.json")
    con.export_trace(path)
    print(f"aggregate over 20k rows: {lane_summary(trace)}")
    print(f"wrote {path}")

    # the profiled form adds per-operator lifetimes and the plan text
    deep = con.explain_analyze(
        "SELECT sensor, max(value) FROM readings GROUP BY sensor",
        format="trace",
    )
    path = os.path.join(OUT_DIR, "profiled.trace.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(deep, handle)
    print(f"profiled run:            {lane_summary(deep)}")
    print(f"wrote {path}  (plan in otherData)")

    print()
    print("=== 2. rolling query log ===")
    con.execute("SET log_min_duration = 0")  # log everything
    print(con.query_log(n=3, format="text"))
    con.execute("SET log_min_duration = 10000")
    con.execute("SELECT count(*) FROM readings")  # fast: suppressed
    print("with a 10s threshold the fast count(*) was suppressed; "
          f"log still has {len(con.query_log())} entries")
    con.execute("SET log_min_duration = 0")

    print()
    print("=== 3. Prometheus endpoint ===")
    server = core.serve_metrics(port=0)  # ephemeral port
    try:
        with urlopen(server.url, timeout=5) as response:
            body = response.read().decode("utf-8")
        interesting = [
            line for line in body.splitlines()
            if line.startswith((
                "repro_queries_total",
                "repro_trace_events_total",
                "repro_querylog_records_total",
                "repro_query_seconds_quantile",
            ))
        ]
        print(f"GET {server.url} -> {len(body.splitlines())} lines, e.g.:")
        for line in interesting:
            print(f"  {line}")
    finally:
        server.shutdown()


if __name__ == "__main__":
    main()
