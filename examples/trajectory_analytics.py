#!/usr/bin/env python3
"""Trajectory analytics: the six use-case operations of the paper's §6.2.

Loads a BerlinMOD-Hanoi dataset and runs, through SQL on the MobilityDuck
engine:

1. the trajectories of all trips (Figure 6),
2. the trip(s) crossing the highest number of districts (Figure 7),
3. the trips crossing the Hai Ba Trung district (Figure 8),
4. the total distance travelled per district (Figure 9),
5. the 6 districts with the most crossing trips, with trips clipped to
   the districts (Figure 10),
6. pairs of vehicles that have ever been within 10 m (Figure 11).

GeoJSON artifacts for visualization are written next to this script.

Run with::

    python examples/trajectory_analytics.py [scale_factor]
"""

import json
import os
import sys

from repro import core
from repro.berlinmod import (
    generate,
    load_dataset,
    regions_to_geojson,
    trips_to_geojson,
    write_geojson,
)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    print(f"Generating BerlinMOD-Hanoi at SF {scale} ...")
    dataset = generate(scale)
    con = core.connect()
    load_dataset(con, dataset)
    print(f"  {len(dataset.vehicles)} vehicles, {len(dataset.trips)} trips")

    print("\n(1) Trajectories of all trips")
    result = con.execute(
        "SELECT t.VehicleId, t.TripId, ST_AsText(t.Traj) AS Traj "
        "FROM trajectories t ORDER BY t.TripId LIMIT 3"
    )
    for row in result:
        print(f"    vehicle {row[0]} trip {row[1]}: {row[2][:60]}...")
    print(f"    ... {con.execute('SELECT count(*) FROM trajectories').scalar()}"
          " trajectories total")

    print("\n(2) Trip(s) crossing the highest number of districts")
    result = con.execute(
        """
        WITH Crossings AS (
          SELECT t.TripId, t.VehicleId, count(*) AS Districts
          FROM trajectories t, hanoi h
          WHERE ST_Intersects(t.Traj, h.Geom)
          GROUP BY t.TripId, t.VehicleId )
        SELECT TripId, VehicleId, Districts
        FROM Crossings
        WHERE Districts = (SELECT max(Districts) FROM Crossings)
        ORDER BY TripId
        """
    )
    for row in result:
        print(f"    trip {row[0]} (vehicle {row[1]}) crosses {row[2]} "
              "districts")

    print("\n(3) Trips crossing the Hai Ba Trung district")
    result = con.execute(
        """
        SELECT count(*) FROM trajectories t, hanoi h
        WHERE h.MunicipalityName = 'Hai Ba Trung'
          AND ST_Intersects(t.Traj, h.Geom)
        """
    )
    print(f"    {result.scalar()} trips cross Hai Ba Trung")

    print("\n(4) Total distance travelled per district (paper's SQL)")
    result = con.execute(
        """
        SELECT h.MunicipalityName, round(
          ( sum(length(atGeometry(t.Trip, h.Geom::WKB_BLOB)) ) /
          1000)::NUMERIC, 3) AS total_km
        FROM trajectories t, hanoi h
        WHERE ST_Intersects(t.Traj, h.Geom)
        GROUP BY h.MunicipalityName
        ORDER BY total_km DESC
        """
    )
    for name, km in result:
        print(f"    {name:<14} {km:>10} km")

    print("\n(5) Top 6 districts by crossing trips (trips clipped)")
    result = con.execute(
        """
        SELECT h.MunicipalityName, count(*) AS trips
        FROM trajectories t, hanoi h
        WHERE ST_Intersects(t.Traj, h.Geom)
          AND atGeometry(t.Trip, h.Geom::WKB_BLOB) IS NOT NULL
        GROUP BY h.MunicipalityName
        ORDER BY trips DESC, h.MunicipalityName
        LIMIT 6
        """
    )
    for name, count in result:
        print(f"    {name:<14} {count:>6} clipped trips")

    print("\n(6) Vehicle pairs ever within 10 m (paper's SQL)")
    result = con.execute(
        """
        SELECT DISTINCT t1.VehicleId AS VehicleId1,
          t1.TripId AS TripId1, ST_ASText(t1.Traj) AS Traj1,
          t2.VehicleId AS VehicleId2, t2.TripId AS TripId2,
          ST_ASText(t2.Traj) AS Traj2,
        FROM (SELECT * FROM trajectories t1 LIMIT 100) t1,
          (SELECT * FROM trajectories t2 LIMIT 100) t2
        WHERE t1.VehicleId < t2.VehicleId AND
          eDwithin(t1.Trip, t2.Trip, 10.0)
        ORDER BY t1.VehicleId, t2.VehicleId
        """
    )
    pairs = {(row[0], row[3]) for row in result}
    print(f"    {len(result)} trip pairs / {len(pairs)} vehicle pairs "
          "came within 10 m")

    out_dir = os.path.dirname(os.path.abspath(__file__))
    trips_path = os.path.join(out_dir, "hanoi_trips.geojson")
    regions_path = os.path.join(out_dir, "hanoi_regions.geojson")
    write_geojson(trips_path, trips_to_geojson(dataset))
    write_geojson(regions_path, regions_to_geojson(dataset))
    print(f"\nGeoJSON written: {trips_path}, {regions_path}")


if __name__ == "__main__":
    main()
