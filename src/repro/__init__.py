"""MobilityDuck reproduction: spatiotemporal analytics in an embedded
columnar SQL engine, in pure Python.

Subpackages
-----------
``repro.geo``
    Planar geometry kernel (GEOS/PostGIS substitute).
``repro.meos``
    Temporal algebra: sets, spans, spansets, boxes, temporal types
    (MEOS substitute).
``repro.index``
    R-tree (incremental + bulk-load).
``repro.quack``
    Embedded columnar vectorized SQL engine (DuckDB substitute).
``repro.pgsim``
    Row-store tuple-at-a-time SQL engine (PostgreSQL/MobilityDB baseline).
``repro.core``
    The MobilityDuck extension: MEOS types/functions/operators + the
    TRTREE index, registered into either engine.
``repro.berlinmod``
    The BerlinMOD-Hanoi benchmark: data generator, schema, 17 queries.
"""

__version__ = "0.1.0"
