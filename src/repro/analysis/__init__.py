"""repro.analysis — static analysis for the engine and the codebase.

Two heads:

* :mod:`.verifier` — a verification layer modeled on DuckDB's
  ``PRAGMA enable_verification``: logical-plan checks after binding and
  after optimizer rewrites, expression/type checks against the catalog,
  and (behind :func:`set_verification_enabled`) chunk-output invariants
  plus kernel-vs-fallback cross-checks at every fork point.
* :mod:`.lint` — a custom AST lint (``python -m repro.analysis.lint``)
  enforcing engine-specific rules the generic linters cannot express
  (kernel-fallback discipline, declared observability counters,
  cross-engine import boundaries, vector-buffer ownership).

This ``__init__`` stays import-light (config + errors only): engine
modules import the toggle from here without dragging in the verifier,
which itself imports the plan IR.
"""

from .config import set_verification_enabled, verification_enabled
from .errors import VerificationError

__all__ = [
    "VerificationError",
    "set_verification_enabled",
    "verification_enabled",
]


def __getattr__(name):
    if name == "verifier":
        from . import verifier

        return verifier
    if name == "lint":
        from . import lint

        return lint
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
