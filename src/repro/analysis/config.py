"""Global verification toggle (the engine's ``PRAGMA enable_verification``).

Kept import-light on purpose: engine modules (vector, functions, executor,
observability) consult :func:`verification_enabled` on hot paths and must
be able to import this module without pulling in the verifier itself.
"""

from __future__ import annotations

#: Global switch: when True, plans are re-verified after binding and after
#: optimizer rewrites, operator output chunks are invariant-checked, and
#: every chunk-level kernel is cross-checked against its scalar fallback.
VERIFICATION_ENABLED = False


def set_verification_enabled(enabled: bool) -> bool:
    """Toggle verification mode; returns the previous setting."""
    global VERIFICATION_ENABLED
    previous = VERIFICATION_ENABLED
    VERIFICATION_ENABLED = bool(enabled)
    return previous


def verification_enabled() -> bool:
    return VERIFICATION_ENABLED
