"""Errors raised by the verification layer.

Import-light (no dependencies) so any engine module can raise/catch these
without import cycles.
"""

from __future__ import annotations


class VerificationError(AssertionError):
    """An engine invariant was violated.

    The message always names the guilty party — the optimizer rule, the
    plan operator, or the kernel — so a failure pinpoints where the
    corruption happened rather than where it was noticed.
    """
