"""Whole-program flow analysis for the repro engines.

``python -m repro.analysis.flow`` parses every module under
``src/repro`` once into a shared :class:`~repro.analysis.project.
ProjectModel` (the same ASTs the lint uses), classifies each function's
execution context — coordinator-only, worker-reachable (on a path from
a ``MorselPool`` task-submission root), or both — and runs the pass
catalog in :mod:`repro.analysis.flow.passes` over it.

Findings are suppressible in place (``# flow: ignore[RACE001]``) or
accepted into a committed baseline file whose entries carry a
justification::

    RACE001 repro.quack.executor._probe qstats.rows[] — worker-local list, merged by coordinator

Fingerprints are line-number independent (rule + symbol + key), so the
baseline survives unrelated edits.  ``--write-baseline`` regenerates
the file, preserving existing justifications.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from ..project import ProjectModel
from .passes import Finding, FlowConfig, PASSES, run_passes

__all__ = [
    "Finding",
    "FlowConfig",
    "PASSES",
    "run_passes",
    "analyze",
    "load_baseline",
    "format_baseline",
    "split_by_baseline",
    "format_text",
    "format_json",
]

#: Placeholder justification ``--write-baseline`` emits for new entries.
TODO_JUSTIFICATION = "TODO: justify or fix"

#: Separator between a baseline fingerprint and its justification.
_SEP = " — "


def analyze(
    paths: Sequence[str | Path],
    *,
    jobs: int = 1,
    tests_dir: Path | None = None,
    model: ProjectModel | None = None,
) -> tuple[ProjectModel, list[Finding]]:
    """Build (or reuse) the project model and run every pass."""
    if model is None:
        model = ProjectModel.load(paths, jobs=jobs)
    elif not model._resolved:
        model.resolve()
    config = FlowConfig(tests_dir=tests_dir)
    return model, run_passes(model, config)


# --------------------------------------------------------------------------
# Baseline file handling


def load_baseline(path: Path) -> dict[str, str]:
    """``fingerprint -> justification`` from a baseline file.  Blank
    lines and ``#`` comments are skipped; a line without a
    justification separator baselines with an empty reason."""
    entries: dict[str, str] = {}
    if not path.is_file():
        return entries
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fingerprint, _, justification = line.partition(_SEP)
        fingerprint = fingerprint.strip()
        if len(fingerprint.split()) == 3:
            entries[fingerprint] = justification.strip()
    return entries


def format_baseline(findings: Iterable[Finding],
                    previous: dict[str, str] | None = None) -> str:
    """Render findings as a baseline file, keeping justifications from
    ``previous`` for fingerprints that persist."""
    previous = previous or {}
    lines = [
        "# Accepted findings for `python -m repro.analysis.flow`.",
        "# One per line: `<rule> <symbol> <key> — <justification>`.",
        "# Fingerprints are line-independent; fix the code or justify",
        "# the exception here — never baseline FLOW001 leaks.",
        "",
    ]
    seen: set[str] = set()
    for finding in findings:
        if finding.fingerprint in seen:
            continue
        seen.add(finding.fingerprint)
        reason = previous.get(finding.fingerprint, TODO_JUSTIFICATION)
        lines.append(f"{finding.fingerprint}{_SEP}{reason}")
    return "\n".join(lines) + "\n"


def split_by_baseline(
    findings: Sequence[Finding], baseline: dict[str, str],
) -> tuple[list[Finding], list[Finding], list[str]]:
    """``(new, accepted, stale_fingerprints)`` — stale entries are
    baselined findings the analyzer no longer raises."""
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        (accepted if finding.fingerprint in baseline else new).append(
            finding)
    current = {f.fingerprint for f in findings}
    stale = [fp for fp in baseline if fp not in current]
    return new, accepted, stale


# --------------------------------------------------------------------------
# Reports


def format_text(new: Sequence[Finding], accepted: Sequence[Finding],
                stale: Sequence[str], model: ProjectModel) -> str:
    lines: list[str] = []
    for finding in new:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [{finding.symbol}] {finding.message}"
        )
    contexts = model.contexts.values()
    summary = (
        f"{len(model.modules)} modules, {len(model.functions)} functions "
        f"({sum(1 for c in contexts if c != 'coordinator')} "
        "worker-reachable); "
        f"{len(new)} finding(s), {len(accepted)} baselined"
    )
    if stale:
        summary += f", {len(stale)} stale baseline entr" + \
            ("y" if len(stale) == 1 else "ies")
        for fingerprint in stale:
            lines.append(f"note: stale baseline entry: {fingerprint}")
    lines.append(summary)
    return "\n".join(lines)


def format_json(new: Sequence[Finding], accepted: Sequence[Finding],
                stale: Sequence[str], model: ProjectModel) -> str:
    return json.dumps({
        "modules": len(model.modules),
        "functions": len(model.functions),
        "worker_reachable": sum(
            1 for c in model.contexts.values() if c != "coordinator"),
        "findings": [
            {**asdict(f), "fingerprint": f.fingerprint} for f in new
        ],
        "baselined": [
            {**asdict(f), "fingerprint": f.fingerprint} for f in accepted
        ],
        "stale_baseline": list(stale),
    }, indent=2, sort_keys=True)
