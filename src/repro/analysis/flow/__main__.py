"""CLI for the whole-program flow analyzer.

Usage::

    python -m repro.analysis.flow [paths ...]
        [--format=text|json] [--baseline FILE] [--write-baseline]
        [--jobs N] [--tests DIR] [--no-tests]

Exit status 0 when every finding is baselined or suppressed, 1 when
new findings remain, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import (
    analyze,
    format_baseline,
    format_json,
    format_text,
    load_baseline,
    split_by_baseline,
)

DEFAULT_BASELINE = Path("flow-baseline.txt")
DEFAULT_TESTS = Path("tests")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.flow",
        description="Whole-program race/leak/drift analyzer",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="accepted-findings file "
                             f"(default: {DEFAULT_BASELINE} if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current "
                             "findings, keeping existing justifications")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel parse workers")
    parser.add_argument("--tests", type=Path, default=None,
                        help="test directory for the FLOW002 "
                             f"asserted-in-tests check (default: "
                             f"{DEFAULT_TESTS} if present)")
    parser.add_argument("--no-tests", action="store_true",
                        help="disable the asserted-in-tests check")
    args = parser.parse_args(argv)

    paths = args.paths or ["src/repro"]
    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.is_file():
        baseline_path = DEFAULT_BASELINE
    tests_dir = None
    if not args.no_tests:
        tests_dir = args.tests
        if tests_dir is None and DEFAULT_TESTS.is_dir():
            tests_dir = DEFAULT_TESTS

    model, findings = analyze(paths, jobs=max(1, args.jobs),
                              tests_dir=tests_dir)

    baseline = load_baseline(baseline_path) if baseline_path else {}
    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        target.write_text(format_baseline(findings, baseline),
                          encoding="utf-8")
        print(f"wrote {len({f.fingerprint for f in findings})} "
              f"entr{'y' if len(findings) == 1 else 'ies'} to {target}")
        return 0

    new, accepted, stale = split_by_baseline(findings, baseline)
    if args.format == "json":
        print(format_json(new, accepted, stale, model))
    else:
        print(format_text(new, accepted, stale, model))
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
