"""The pluggable analysis passes run over a :class:`ProjectModel`.

Each pass is a function ``(model, config) -> list[Finding]``.  The
catalog:

RACE001  attribute/container writes on shared objects reachable from
         worker context with no enclosing ``with <lock>`` and no
         recognized atomic-publish idiom (``dict.setdefault``).
RACE002  guarded-by inference — an attribute written under a lock at
         one site but bare at another — plus lock-ordering cycle
         detection across the project's known locks.
FLOW001  resource leaks: ``SpillFile``/``StorageFile``/``open_path``/
         mmap handles not closed on all paths and not under a context
         manager.
FLOW002  counter/gauge drift: names incremented but never declared,
         declared but never incremented, or never asserted in tests.
FLOW003  dead kill switches: ``SET`` flag attributes no execution path
         reads, and env toggles read only from unreachable functions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from ..project import (
    FunctionInfo,
    ProjectModel,
    _dotted,
    collect_local_names,
    iter_own_nodes,
)


@dataclass(frozen=True)
class Finding:
    """One analyzer result.

    ``fingerprint`` (rule + blamed symbol + key) deliberately excludes
    the line number so baselines survive unrelated edits to the file.
    ``symbol`` and ``key`` therefore must not contain whitespace.
    """

    rule: str
    symbol: str
    key: str
    message: str
    path: str
    line: int
    col: int = 0

    @property
    def fingerprint(self) -> str:
        return f"{self.rule} {self.symbol} {self.key}"


@dataclass
class FlowConfig:
    """Per-run pass configuration."""

    #: Directory of test files for the FLOW002 asserted-in-tests check;
    #: ``None`` disables that sub-check.
    tests_dir: Path | None = None
    #: Extra names treated as handle constructors by FLOW001.
    extra_handles: tuple[str, ...] = ()


WORKER_CONTEXTS = ("worker", "both")

#: Container mutators that modify the receiver in place.
MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update",
    "discard", "remove", "pop", "popitem", "clear", "setdefault",
})

#: Mutators recognized as atomic single-call publish idioms: a racing
#: ``setdefault`` returns one winner and never corrupts the dict, which
#: is exactly the lock-free memo-publish pattern ``Vector.cached_aux``
#: uses outside its lock.
ATOMIC_MUTATORS = frozenset({"setdefault"})

#: Constructors/factories whose return value owns an OS resource.
HANDLE_CALLS = frozenset({
    "SpillFile", "StorageFile", "open", "open_path", "TemporaryFile",
    "NamedTemporaryFile", "mkstemp", "mkdtemp", "mmap", "memmap",
})

#: Functions excluded from race passes: they run before the object is
#: published to other threads (happens-before via construction).
CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

#: Functions named ``*_locked`` declare (by convention, RacerD-style
#: trusted annotation) that every caller already holds the relevant
#: lock; their writes count as locked under a synthetic guard name.
CALLER_HELD = "<caller-held>"


def _assumed_held(info: FunctionInfo) -> tuple[str, ...]:
    return (CALLER_HELD,) if info.name.endswith("_locked") else ()


# --------------------------------------------------------------------------
# Shared traversal helpers


def lock_name(expr: ast.expr, info: FunctionInfo,
              model: ProjectModel) -> str | None:
    """Normalize a ``with`` context expression into a lock identity, or
    ``None`` when the expression is not lock-like (dotted path whose
    last segment mentions "lock", case-insensitively)."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    dotted = _dotted(expr)
    if dotted is None:
        return None
    if "lock" not in dotted.split(".")[-1].lower():
        return None
    parts = dotted.split(".")
    if parts[0] in ("self", "cls"):
        owner = info.owner_class or info.module
        return f"{owner.rsplit('.', 1)[-1]}.{'.'.join(parts[1:])}"
    if len(parts) == 1:
        # A module-level lock: qualify by module for cross-file identity.
        resolved = model.resolve_name(info, parts[0])
        if resolved is None:
            return f"{info.module.rsplit('.', 1)[-1]}.{parts[0]}"
    return dotted


def scan_statements(
    info: FunctionInfo, model: ProjectModel,
) -> Iterator[tuple[ast.stmt, tuple[str, ...], tuple[str, ...]]]:
    """Yield ``(stmt, locks_held, locks_acquired_here)`` for every own
    statement of ``info`` in source order, tracking the stack of
    lock-like ``with`` blocks.  Nested function/class bodies are other
    functions' problems and are skipped."""

    def walk(stmts: list[ast.stmt],
             held: tuple[str, ...]) -> Iterator[
                 tuple[ast.stmt, tuple[str, ...], tuple[str, ...]]]:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = tuple(
                    name for item in stmt.items
                    if (name := lock_name(item.context_expr, info, model))
                )
                yield stmt, held, acquired
                yield from walk(stmt.body, held + acquired)
                continue
            yield stmt, held, ()
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, list):
                    nested = [v for v in value if isinstance(v, ast.stmt)]
                    if nested:
                        yield from walk(nested, held)
                    for handler in value:
                        if isinstance(handler, ast.excepthandler):
                            yield from walk(handler.body, held)

    if isinstance(info.node, ast.Lambda):
        return
    yield from walk(list(info.node.body), ())


def _expr_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """All nodes of a statement's expressions, not descending into
    nested statement lists or function/class definitions."""
    stack: list[ast.AST] = []
    for name, value in ast.iter_fields(stmt):
        if isinstance(value, ast.AST):
            stack.append(value)
        elif isinstance(value, list):
            stack.extend(v for v in value
                         if isinstance(v, ast.AST)
                         and not isinstance(v, (ast.stmt,
                                                ast.excepthandler)))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, or ``None``
    when the chain passes through a call or other opaque expression."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _write_key(target: ast.expr) -> str | None:
    """A compact, space-free rendering of a write target for finding
    keys: ``self._aux[]`` for subscripts, ``self.closed`` for plain
    attributes."""
    if isinstance(target, ast.Subscript):
        base = _dotted(target.value)
        return f"{base}[]" if base is not None else None
    return _dotted(target)


def _declared_globals(fn: ast.AST) -> set[str]:
    out: set[str] = set()
    for node in iter_own_nodes(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            out.update(node.names)
    return out


def _has_suppression(model: ProjectModel, finding: Finding) -> bool:
    """True when the finding's source line carries a
    ``# flow: ignore`` or ``# flow: ignore[RULE]`` comment."""
    module = model.module_for_path(finding.path)
    if module is None:
        return False
    text = module.line(finding.line)
    marker = "# flow: ignore"
    idx = text.find(marker)
    if idx < 0:
        return False
    rest = text[idx + len(marker):].strip()
    if not rest.startswith("["):
        return True
    rules = rest[1:rest.index("]")] if "]" in rest else rest[1:]
    return finding.rule in {r.strip() for r in rules.split(",")}


# --------------------------------------------------------------------------
# RACE001 — unsynchronized shared writes in worker-reachable code


def _shared_writes(
    stmt: ast.stmt, local_names: set[str], globals_declared: set[str],
) -> Iterator[tuple[str, str, ast.AST]]:
    """Yield ``(root, key, node)`` for each write in ``stmt`` whose
    target is not provably a function-local object."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    for target in targets:
        nested = [target]
        while nested:
            t = nested.pop()
            if isinstance(t, (ast.Tuple, ast.List)):
                nested.extend(t.elts)
                continue
            if isinstance(t, ast.Starred):
                nested.append(t.value)
                continue
            if isinstance(t, ast.Name):
                # Plain rebinding is local unless declared global/nonlocal.
                if t.id in globals_declared:
                    yield t.id, t.id, t
                continue
            if isinstance(t, (ast.Attribute, ast.Subscript)):
                root = _root_name(t)
                if root is None or root in local_names:
                    continue
                key = _write_key(t)
                if key is not None:
                    yield root, key, t
    for node in _expr_nodes(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in MUTATORS or func.attr in ATOMIC_MUTATORS:
            continue
        root = _root_name(func.value)
        if root is None or root in local_names:
            continue
        base = _dotted(func.value)
        if base is None:
            continue
        yield root, f"{base}.{func.attr}()", node


def race001(model: ProjectModel, config: FlowConfig) -> list[Finding]:
    findings: list[Finding] = []
    for qualname, info in model.functions.items():
        if model.contexts.get(qualname) not in WORKER_CONTEXTS:
            continue
        if info.name in CONSTRUCTION_METHODS:
            continue
        local = collect_local_names(info.node)
        globals_declared = _declared_globals(info.node)
        assumed = _assumed_held(info)
        for stmt, held, _ in scan_statements(info, model):
            if held or assumed:
                continue
            for root, key, node in _shared_writes(stmt, local,
                                                  globals_declared):
                via = model.worker_via.get(qualname)
                route = f" (worker-reachable via {via})" if via else ""
                findings.append(Finding(
                    rule="RACE001",
                    symbol=qualname,
                    key=key,
                    message=(
                        f"write to shared {key!r} in worker-reachable "
                        f"{info.name}(){route} with no enclosing lock "
                        "and no atomic-publish idiom"
                    ),
                    path=str(info.path),
                    line=getattr(node, "lineno", stmt.lineno),
                    col=getattr(node, "col_offset", stmt.col_offset),
                ))
    return findings


# --------------------------------------------------------------------------
# RACE002 — guarded-by inference + lock-ordering cycles


def _attr_write_sites(
    model: ProjectModel,
) -> dict[str, list[tuple[bool, str, str, int, tuple[str, ...]]]]:
    """Map a stable attribute key (``Class.attr`` or ``module.global``)
    to its write sites ``(locked, qualname, path, line, locks)``."""
    sites: dict[str, list[tuple[bool, str, str, int,
                                tuple[str, ...]]]] = {}
    for qualname, info in model.functions.items():
        if info.name in CONSTRUCTION_METHODS:
            continue
        globals_declared = _declared_globals(info.node)
        assumed = _assumed_held(info)
        for stmt, held, _ in scan_statements(info, model):
            held = held + assumed
            for root, key, node in _shared_writes(stmt, set(),
                                                  globals_declared):
                if root in ("self", "cls") and info.owner_class:
                    owner = info.owner_class.rsplit(".", 1)[-1]
                    attr = key.split(".", 1)[1] if "." in key else key
                    stable = f"{owner}.{attr}"
                elif root == key.split(".")[0] and \
                        model.resolve_name(info, root) is None and \
                        root in model.module_globals(info.module):
                    stable = f"{info.module}.{key}"
                else:
                    continue
                sites.setdefault(stable, []).append((
                    bool(held), qualname, str(info.path),
                    getattr(node, "lineno", stmt.lineno), held,
                ))
    return sites


def _transitive_locks(model: ProjectModel) -> dict[str, frozenset[str]]:
    """For every function, the set of locks it may acquire directly or
    through any callee (cycle-safe fixpoint)."""
    direct: dict[str, set[str]] = {}
    for qualname, info in model.functions.items():
        acquired: set[str] = set()
        for _, _, got in scan_statements(info, model):
            acquired.update(got)
        direct[qualname] = acquired
    result = {q: set(v) for q, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for qualname in result:
            before = len(result[qualname])
            for callee in model.calls.get(qualname, ()):
                result[qualname] |= result.get(callee, set())
            if len(result[qualname]) != before:
                changed = True
    return {q: frozenset(v) for q, v in result.items()}


def race002(model: ProjectModel, config: FlowConfig) -> list[Finding]:
    findings: list[Finding] = []

    # Guarded-by: a key locked at one write site and bare at another.
    for key, sites in sorted(_attr_write_sites(model).items()):
        locked = [s for s in sites if s[0]]
        bare = [s for s in sites if not s[0]]
        if not locked or not bare:
            continue
        guard = sorted({name for s in locked for name in s[4]})[0]
        for _, qualname, path, line, _ in bare:
            findings.append(Finding(
                rule="RACE002",
                symbol=qualname,
                key=key,
                message=(
                    f"{key!r} is written under {guard!r} at "
                    f"{locked[0][1]}:{locked[0][3]} but bare here — "
                    "either the lock is required (add it) or it is not "
                    "(remove it and document why)"
                ),
                path=path,
                line=line,
            ))

    # Lock-ordering cycles across the whole call graph.
    transitive = _transitive_locks(model)
    edges: dict[tuple[str, str], tuple[str, str, int]] = {}
    for qualname, info in model.functions.items():
        for stmt, held, acquired in scan_statements(info, model):
            inner: set[str] = set(acquired)
            for node in _expr_nodes(stmt):
                if isinstance(node, ast.Call):
                    for callee in model.resolve_call(info, node.func):
                        inner |= transitive.get(callee, frozenset())
            for h in held:
                for a in inner:
                    if a != h:
                        edges.setdefault((h, a), (
                            qualname, str(info.path), stmt.lineno))

    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
    seen_cycles: set[tuple[str, ...]] = set()
    for start in sorted(graph):
        stack = [(start, (start,))]
        while stack:
            current, trail = stack.pop()
            for succ in sorted(graph.get(current, ())):
                if succ == start:
                    cycle = trail
                    rotated = min(
                        tuple(cycle[i:] + cycle[:i])
                        for i in range(len(cycle))
                    )
                    if rotated in seen_cycles:
                        continue
                    seen_cycles.add(rotated)
                    where = edges[(cycle[-1], start)]
                    chain = "->".join(cycle + (start,))
                    findings.append(Finding(
                        rule="RACE002",
                        symbol=where[0],
                        key=f"lock-order:{chain}",
                        message=(
                            f"lock-ordering cycle {chain}: acquired in "
                            "opposite orders on different paths — "
                            "deadlock when two threads interleave"
                        ),
                        path=where[1],
                        line=where[2],
                    ))
                elif succ not in trail and len(trail) < 6:
                    stack.append((succ, trail + (succ,)))
    return findings


# --------------------------------------------------------------------------
# FLOW001 — resource leaks


def _iter_blocks(fn: ast.AST) -> Iterator[list[ast.stmt]]:
    """Every statement list of ``fn``'s own body (nested defs skipped),
    so leak analysis can reason about statement order within a block."""
    if isinstance(fn, ast.Lambda):
        return
    stack: list[list[ast.stmt]] = [list(fn.body)]
    while stack:
        block = stack.pop()
        yield block
        for stmt in block:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, list):
                    nested = [v for v in value if isinstance(v, ast.stmt)]
                    if nested:
                        stack.append(nested)
                    for handler in value:
                        if isinstance(handler, ast.excepthandler):
                            stack.append(list(handler.body))


def _callee_last(func: ast.expr) -> str | None:
    dotted = _dotted(func)
    return dotted.rsplit(".", 1)[-1] if dotted else None


def _handle_calls_in(stmt: ast.stmt,
                     handles: frozenset[str]) -> list[ast.Call]:
    return [
        node for node in _expr_nodes(stmt)
        if isinstance(node, ast.Call)
        and _callee_last(node.func) in handles
    ]


def _parents_within(stmt: ast.stmt) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for node in ast.walk(stmt):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _escapes_in_statement(stmt: ast.stmt, call: ast.Call,
                          parents: dict[int, ast.AST]) -> bool:
    """The handle's ownership is transferred by its creating statement:
    returned/yielded, passed straight into another call, or stored into
    an attribute, subscript, or container literal."""
    node: ast.AST = call
    while True:
        parent = parents.get(id(node))
        if parent is None:
            break
        if isinstance(parent, ast.Call) and node is not parent.func:
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        node = parent
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        if any(isinstance(t, (ast.Attribute, ast.Subscript))
               for t in targets):
            return True
    return False


def _assigned_name(stmt: ast.stmt) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                      ast.Name):
        return stmt.target.id
    return None


def _references_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == name
        and isinstance(sub.ctx, ast.Load)
        for sub in ast.walk(node)
    )


def _closes_or_escapes(stmt: ast.stmt, name: str) -> bool:
    """True when ``stmt`` closes the named handle or transfers its
    ownership onward (argument position, return/yield, stored into a
    structure, bound into an assignment value)."""
    for node in _expr_nodes(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == name and \
                    func.attr in ("close", "__exit__", "release"):
                return True
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                if _references_name(arg, name):
                    return True
    if isinstance(stmt, (ast.Return, ast.Expr)) and \
            stmt.value is not None and \
            _references_name(stmt.value, name):
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
            return True
    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)) and \
            stmt.value is not None and _references_name(stmt.value, name):
        return True
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        if any(_references_name(item.context_expr, name)
               for item in stmt.items):
            return True
    return False


def _name_in_finally(stmt: ast.stmt, name: str) -> bool:
    """The statement is a ``try`` whose ``finally`` — or a cleanup
    ``except`` handler — references the handle name."""
    if not isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
        return False
    if any(_references_name(s, name) for s in stmt.finalbody):
        return True
    return any(
        _references_name(s, name)
        for handler in stmt.handlers
        for s in handler.body
    )


def _contains_call_or_raise(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    return any(isinstance(node, ast.Call) for node in _expr_nodes(stmt))


def flow001(model: ProjectModel, config: FlowConfig) -> list[Finding]:
    handles = HANDLE_CALLS | frozenset(config.extra_handles)
    findings: list[Finding] = []
    for qualname, info in model.functions.items():
        for block in _iter_blocks(info.node):
            for index, stmt in enumerate(block):
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    managed = {
                        id(node)
                        for item in stmt.items
                        for node in ast.walk(item.context_expr)
                    }
                else:
                    managed = set()
                calls = _handle_calls_in(stmt, handles)
                if not calls:
                    continue
                parents = _parents_within(stmt)
                for call in calls:
                    if id(call) in managed:
                        continue
                    kind = _callee_last(call.func) or "handle"
                    if _escapes_in_statement(stmt, call, parents):
                        continue
                    name = _assigned_name(stmt)
                    if name is None:
                        findings.append(Finding(
                            rule="FLOW001",
                            symbol=qualname,
                            key=f"{kind}:discarded",
                            message=(
                                f"{kind}() handle created and discarded "
                                "— it is never closed"
                            ),
                            path=str(info.path),
                            line=call.lineno,
                            col=call.col_offset,
                        ))
                        continue
                    verdict = _trace_handle(block[index + 1:], name)
                    if verdict is not None:
                        findings.append(Finding(
                            rule="FLOW001",
                            symbol=qualname,
                            key=f"{kind}:{name}",
                            message=(
                                f"{kind}() handle {name!r} {verdict} — "
                                "use a context manager or close it in "
                                "a finally block"
                            ),
                            path=str(info.path),
                            line=call.lineno,
                            col=call.col_offset,
                        ))
    return findings


def _trace_handle(rest: list[ast.stmt], name: str) -> str | None:
    """Walk the statements after a handle's creation.  ``None`` means
    the handle is safely handed off; otherwise an explanation of the
    leak path."""
    for stmt in rest:
        if _name_in_finally(stmt, name):
            return None
        if _closes_or_escapes(stmt, name):
            return None
        if _contains_call_or_raise(stmt):
            return (
                f"leaks if {ast.unparse(stmt)[:48]!r} raises before "
                "the handle is handed off"
            )
    return "is never closed on this path"


# --------------------------------------------------------------------------
# FLOW002 — counter/gauge drift


COUNTER_FUNCS = frozenset({"count", "_count", "bump"})
GAUGE_FUNCS = frozenset({"gauge_max", "set_gauge"})


def _static_counter_name(node: ast.expr) -> tuple[str, bool] | None:
    """``(name, is_prefix)`` for a string literal or the static prefix
    of an f-string; ``None`` for fully dynamic names."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        prefix = []
        for part in node.values:
            if isinstance(part, ast.Constant) and \
                    isinstance(part.value, str):
                prefix.append(part.value)
            else:
                break
        if prefix:
            return "".join(prefix), True
    return None


def _declared_sets(model: ProjectModel) -> tuple[
        set[str], tuple[str, ...], set[str], str | None]:
    """Literal-eval ``DECLARED_COUNTERS``/``DECLARED_PREFIXES``/
    ``DECLARED_GAUGES`` from whichever module defines them, so fixture
    corpora can carry their own registry."""
    counters: set[str] = set()
    prefixes: list[str] = []
    gauges: set[str] = set()
    source: str | None = None
    for module in model.modules:
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                try:
                    value = ast.literal_eval(stmt.value)
                except (ValueError, SyntaxError):
                    continue
                if target.id == "DECLARED_COUNTERS":
                    counters.update(value)
                    source = module.name
                elif target.id == "DECLARED_PREFIXES":
                    prefixes.extend(value)
                elif target.id == "DECLARED_GAUGES":
                    gauges.update(value)
    return counters, tuple(prefixes), gauges, source


def flow002(model: ProjectModel, config: FlowConfig) -> list[Finding]:
    counters, prefixes, gauges, registry = _declared_sets(model)
    if registry is None:
        return []
    findings: list[Finding] = []
    used_exact: dict[str, tuple[str, str, int]] = {}
    used_prefix: dict[str, tuple[str, str, int]] = {}
    for qualname, info in model.functions.items():
        if info.module == registry:
            continue
        for node in iter_own_nodes(info.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            last = _callee_last(node.func)
            if last not in COUNTER_FUNCS and last not in GAUGE_FUNCS:
                continue
            parsed = _static_counter_name(node.args[0])
            if parsed is None:
                continue
            name, is_prefix = parsed
            bucket = used_prefix if is_prefix else used_exact
            bucket.setdefault(name, (qualname, str(info.path),
                                     node.lineno))
            declared = gauges if last in GAUGE_FUNCS else counters
            if is_prefix:
                ok = any(name.startswith(p) or p.startswith(name)
                         for p in prefixes) or \
                    any(d.startswith(name) for d in declared)
            else:
                ok = name in declared or \
                    any(name.startswith(p) for p in prefixes)
            if not ok:
                kind = "gauge" if last in GAUGE_FUNCS else "counter"
                findings.append(Finding(
                    rule="FLOW002",
                    symbol=qualname,
                    key=name,
                    message=(
                        f"{kind} {name!r} is emitted but not declared "
                        f"in {registry} — typo or missing declaration"
                    ),
                    path=str(info.path),
                    line=node.lineno,
                ))

    for name in sorted(counters | gauges):
        if name in used_exact:
            continue
        if any(name.startswith(p) for p in used_prefix):
            continue
        findings.append(Finding(
            rule="FLOW002",
            symbol=registry,
            key=name,
            message=(
                f"{name!r} is declared in {registry} but no code path "
                "emits it — dead declaration or the emitter was removed"
            ),
            path=str(model.by_name[registry].path)
            if registry in model.by_name else "<registry>",
            line=1,
        ))

    if config.tests_dir is not None and config.tests_dir.is_dir():
        corpus = "\n".join(
            path.read_text(encoding="utf-8", errors="replace")
            for path in sorted(config.tests_dir.rglob("*.py"))
        )
        for name, (qualname, path, line) in sorted(used_exact.items()):
            if name in corpus:
                continue
            findings.append(Finding(
                rule="FLOW002",
                symbol=qualname,
                key=f"untested:{name}",
                message=(
                    f"counter {name!r} is emitted but never asserted "
                    f"anywhere under {config.tests_dir} — drift here "
                    "goes unnoticed"
                ),
                path=path,
                line=line,
            ))
    return findings


# --------------------------------------------------------------------------
# FLOW003 — dead kill switches


def flow003(model: ProjectModel, config: FlowConfig) -> list[Finding]:
    findings: list[Finding] = []

    # SET flags: attributes assigned by an _execute_set handler that no
    # other code path ever loads.
    setters = [info for q, info in model.functions.items()
               if info.name == "_execute_set"]
    for setter in setters:
        assigned: dict[str, int] = {}
        for node in iter_own_nodes(setter.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        assigned.setdefault(target.attr, node.lineno)
        for attr, line in sorted(assigned.items()):
            read = False
            for qualname, info in model.functions.items():
                if info is setter:
                    continue
                for node in iter_own_nodes(info.node):
                    if isinstance(node, ast.Attribute) and \
                            node.attr == attr and \
                            isinstance(node.ctx, ast.Load):
                        read = True
                        break
                if read:
                    break
            if not read:
                findings.append(Finding(
                    rule="FLOW003",
                    symbol=setter.qualname,
                    key=attr,
                    message=(
                        f"SET handler assigns {attr!r} but no execution "
                        "path reads it — the kill switch is dead"
                    ),
                    path=str(setter.path),
                    line=line,
                ))

    # Env toggles read only from functions nothing calls.
    for qualname, info in model.functions.items():
        if not info.name.startswith("_") or info.name.startswith("__"):
            continue
        if model.incoming_calls(qualname):
            continue
        if qualname in model.worker_roots:
            continue
        for node in iter_own_nodes(info.node):
            env_name: str | None = None
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func) or ""
                if dotted.endswith(("environ.get", "getenv")) and \
                        node.args and \
                        isinstance(node.args[0], ast.Constant):
                    env_name = node.args[0].value
            elif isinstance(node, ast.Subscript):
                dotted = _dotted(node.value) or ""
                if dotted.endswith("environ") and \
                        isinstance(node.slice, ast.Constant):
                    env_name = node.slice.value
            if env_name:
                findings.append(Finding(
                    rule="FLOW003",
                    symbol=qualname,
                    key=str(env_name),
                    message=(
                        f"env toggle {env_name!r} is read only inside "
                        f"{info.name}(), which nothing calls — the "
                        "switch can never take effect"
                    ),
                    path=str(info.path),
                    line=node.lineno,
                ))
    return findings


PASSES: tuple[tuple[str, Callable[[ProjectModel, FlowConfig],
                                  list[Finding]]], ...] = (
    ("RACE001", race001),
    ("RACE002", race002),
    ("FLOW001", flow001),
    ("FLOW002", flow002),
    ("FLOW003", flow003),
)


def run_passes(model: ProjectModel,
               config: FlowConfig | None = None) -> list[Finding]:
    """Run the full pass catalog and return suppression-filtered
    findings sorted by location."""
    config = config or FlowConfig()
    findings: list[Finding] = []
    for _, pass_fn in PASSES:
        findings.extend(pass_fn(model, config))
    findings = [f for f in findings if not _has_suppression(model, f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.key))
    return findings
