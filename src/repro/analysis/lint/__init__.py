"""Project-specific AST lint: engine invariants the stock linters can't see.

Rules (all reported as ``path:line:col CODE message``):

========  ==========================================================
ANL001    bare ``except:`` clause
ANL002    ``raise KernelFallback`` outside the kernel modules
ANL003    counter/gauge name not declared in the observability registry
ANL004    cross-engine import (pgsim ↔ quack internals, or an engine
          import from the observability layer)
ANL005    mutation of a ``Vector``'s ``data``/``validity`` payload
          outside the owning module
ANL006    ``evaluate_batch`` registration without a reachable scalar
          fallback (missing ``fn_scalar`` or shadowed by ``fn_vector``)
ANL007    unused import
ANL008    module-level mutable container in ``repro.quack`` without an
          UPPER_CASE registry name (worker threads share module globals)
ANL009    trace-event ``.emit(...)`` call not guarded by a
          ``<collector> is not None`` / ``collection_enabled()`` check
          (unguarded emission defeats the ~0%-when-off overhead bar)
ANL010    a ``*_selectivity`` estimator returns a value not wrapped in
          ``clamp01(...)`` (an out-of-range selectivity corrupts every
          cardinality product built on it)
========  ==========================================================

Run as ``python -m repro.analysis.lint [--jobs N] [--fix] [paths]``
(default: ``src``).  The module is import-light on purpose — it parses
source with ``ast`` and never imports the engine code it checks.

Lint shares its parsed ASTs with the flow analyzer
(``repro.analysis.flow``) through :class:`repro.analysis.project.
ProjectModel`: a combined run parses every file exactly once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..project import ModuleInfo, ProjectModel
from .rules import check_module

__all__ = [
    "Violation",
    "lint_file",
    "lint_model",
    "lint_paths",
    "run_lint",
]


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


def _module_name(path: Path) -> str | None:
    """Dotted module name for files under a ``src/`` root (else None)."""
    parts = path.resolve().parts
    if "src" not in parts:
        return None
    rel = parts[parts.index("src") + 1 :]
    if not rel or not rel[-1].endswith(".py"):
        return None
    rel = rel[:-1] + (rel[-1][: -len(".py")],)
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


def _lint_module(info: ModuleInfo) -> list[Violation]:
    if info.error is not None:
        exc = info.error
        return [
            Violation(
                str(info.path), exc.lineno or 1, (exc.offset or 1) - 1,
                "ANL000", f"syntax error: {exc.msg}",
            )
        ]
    module = _module_name(info.path)
    return [
        Violation(str(info.path), line, col, code, message)
        for line, col, code, message in check_module(
            info.tree, module, info.filename
        )
    ]


def lint_file(path: Path) -> list[Violation]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                str(path), exc.lineno or 1, (exc.offset or 1) - 1,
                "ANL000", f"syntax error: {exc.msg}",
            )
        ]
    module = _module_name(path)
    return [
        Violation(str(path), line, col, code, message)
        for line, col, code, message in check_module(tree, module, path.name)
    ]


def lint_model(model: ProjectModel) -> list[Violation]:
    """Lint every module already parsed into ``model`` (no re-parse)."""
    violations: list[Violation] = []
    for info in model.modules:
        violations.extend(_lint_module(info))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations


def lint_paths(paths: Iterable[str], *, jobs: int = 1,
               model: ProjectModel | None = None) -> list[Violation]:
    if model is None:
        model = ProjectModel.parse(paths, jobs=jobs)
    return lint_model(model)


def run_lint(paths: Iterable[str] = ("src",), *,
             jobs: int = 1) -> list[Violation]:
    """Lint ``paths`` (files or directories) and return the violations."""
    return lint_paths(paths, jobs=jobs)
