"""CLI entry point: ``python -m repro.analysis.lint [paths…]``.

Lints ``src`` by default, prints one ``path:line:col CODE message`` line
per violation, and exits 1 when anything is found (0 on a clean run).
"""

from __future__ import annotations

import sys

from . import run_lint


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or ["src"]
    violations = run_lint(paths)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
