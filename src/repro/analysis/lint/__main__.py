"""CLI entry point: ``python -m repro.analysis.lint [paths…]``.

Lints ``src`` by default, prints one ``path:line:col CODE message`` line
per violation, and exits 1 when anything is found (0 on a clean run).
``--fix`` rewrites ANL007 unused imports in place first, then reports
whatever remains; ``--jobs N`` parses files on N threads.
"""

from __future__ import annotations

import argparse
import sys

from ..project import ProjectModel, iter_python_files
from . import lint_model
from .fixes import fix_unused_imports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Project-specific AST lint (ANL000–ANL010).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse files on N threads (default: 1)",
    )
    parser.add_argument(
        "--fix", action="store_true",
        help="delete ANL007 unused imports in place, then re-lint",
    )
    args = parser.parse_args(argv)

    if args.fix:
        fixed_files = 0
        removed = 0
        for path in iter_python_files(args.paths):
            source = path.read_text(encoding="utf-8")
            try:
                new_source, count = fix_unused_imports(source, path.name)
            except SyntaxError:
                continue  # reported below as ANL000
            if count:
                path.write_text(new_source, encoding="utf-8")
                fixed_files += 1
                removed += count
        if removed:
            print(
                f"--fix: removed {removed} unused import(s) "
                f"in {fixed_files} file(s)",
                file=sys.stderr,
            )

    model = ProjectModel.parse(args.paths, jobs=args.jobs)
    violations = lint_model(model)
    for violation in violations:
        print(violation.format())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
