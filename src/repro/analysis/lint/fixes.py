"""Autofix for ANL007: delete unused import bindings by exact span.

``fix_unused_imports`` is a pure ``source -> source`` transform built on
the same :func:`repro.analysis.lint.rules.unused_import_aliases` helper
the rule itself uses, so the fixer removes exactly the bindings the rule
reports — nothing more.  Two shapes of edit:

* every alias of a statement is unused → the whole statement goes,
  including its indentation and the trailing newline when nothing else
  shares the line;
* some aliases survive → each dead alias is cut out of the name list by
  its source span, taking one adjacent comma along with it.

The transform is idempotent: a fixed source re-parses with no unused
imports, so a second pass returns the input unchanged.
"""

from __future__ import annotations

import ast

from .rules import unused_import_aliases

__all__ = ["fix_unused_imports"]


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _merge(spans: list[tuple[int, int]]) -> list[tuple[int, int]]:
    merged: list[tuple[int, int]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def fix_unused_imports(source: str, filename: str) -> tuple[str, int]:
    """Return ``(fixed_source, removed_binding_count)``.

    ``filename`` is the base name of the file (``path.name``); it gates
    the same ``__init__.py`` exemption the rule applies.  Raises
    ``SyntaxError`` if ``source`` does not parse — callers should lint
    first and skip ANL000 files.
    """
    tree = ast.parse(source, filename=filename)
    unused = unused_import_aliases(tree, filename)
    if not unused:
        return source, 0

    offsets = _line_offsets(source)

    def off(lineno: int, col: int) -> int:
        return offsets[lineno - 1] + col

    by_stmt: dict[int, list[ast.alias]] = {}
    stmts: dict[int, ast.stmt] = {}
    for stmt, alias, _ in unused:
        by_stmt.setdefault(id(stmt), []).append(alias)
        stmts[id(stmt)] = stmt

    spans: list[tuple[int, int]] = []
    for key, dead in by_stmt.items():
        stmt = stmts[key]
        if len(dead) == len(stmt.names):
            start = off(stmt.lineno, stmt.col_offset)
            end = off(stmt.end_lineno, stmt.end_col_offset)
            # Take the indentation too, when the statement starts the
            # line, and the newline, when nothing else follows it —
            # otherwise a blank ghost line is left behind.
            line_start = offsets[stmt.lineno - 1]
            if source[line_start:start].strip() == "":
                start = line_start
            line_end = offsets[stmt.end_lineno]
            if source[end:line_end].strip() == "":
                end = line_end
            spans.append((start, end))
            continue
        ordered = sorted(
            stmt.names, key=lambda a: (a.lineno, a.col_offset)
        )
        dead_ids = {id(a) for a in dead}
        index = 0
        while index < len(ordered):
            if id(ordered[index]) not in dead_ids:
                index += 1
                continue
            # Maximal run of consecutive dead aliases.
            last = index
            while (last + 1 < len(ordered)
                   and id(ordered[last + 1]) in dead_ids):
                last += 1
            if last + 1 < len(ordered):
                # A kept alias follows: cut up to it, so the commas and
                # whitespace go with the dead names.
                first, nxt = ordered[index], ordered[last + 1]
                spans.append((
                    off(first.lineno, first.col_offset),
                    off(nxt.lineno, nxt.col_offset),
                ))
            else:
                # The run reaches the end of the list; the alias before
                # it is kept (a fully-dead statement is handled above),
                # so cut back from its end, taking the separator comma.
                prev, end_alias = ordered[index - 1], ordered[last]
                spans.append((
                    off(prev.end_lineno, prev.end_col_offset),
                    off(end_alias.end_lineno, end_alias.end_col_offset),
                ))
            index = last + 1

    fixed = source
    for start, end in reversed(_merge(spans)):
        fixed = fixed[:start] + fixed[end:]
    return fixed, len(unused)
