"""The individual AST checks behind :mod:`repro.analysis.lint`.

Each rule is a method on :class:`_Checker`; :func:`check_module` runs all
of them over one parsed module and returns ``(line, col, code, message)``
tuples.  The checks encode *engine invariants* — boundaries and
conventions the stock linters have no way to know about.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ...observability.registry import (
    DECLARED_PREFIXES,
    is_declared_counter,
    is_declared_gauge,
)

#: Modules allowed to raise KernelFallback — the kernels themselves plus
#: the vector sort-key encoder and the columnar box kernels.  Everyone
#: else must *catch* it (taking the fallback path), never signal it.
_KERNEL_FALLBACK_MODULES = frozenset({
    "repro.quack.kernels",
    "repro.quack.vector",
    "repro.core.boxkernels",
})

#: quack submodules that form the shared frontend surface the pgsim row
#: engine may import (parser/binder/plan/optimizer/catalog + the shared
#: key helpers).  Executor internals — kernels, vectors, the chunk
#: executor — are quack-private.
_PGSIM_ALLOWED_QUACK = frozenset({
    "errors",
    "types",
    "plan",
    "binder",
    "optimizer",
    "catalog",
    "functions",
    "builtins",
    "database",
    "profiler",
    "keys",
    "sql",
    "stats",
})

#: Module owning the Vector payload (may mutate data/validity freely).
_VECTOR_OWNER_MODULES = frozenset({"repro.quack.vector"})

#: The one quack module allowed to touch the filesystem (ANL011).  All
#: persistence, spill, and CSV I/O routes through its ``open_path`` /
#: ``SpillFile`` seams so on-disk concerns stay in one place.
_STORAGE_MODULES = frozenset({"repro.quack.storage"})

#: Callables that open files / map memory / create temp artifacts.
#: Bare names and the final attribute of dotted calls are both checked
#: (``open``, ``os.open``, ``tempfile.TemporaryFile``, ``mmap.mmap``,
#: ``np.memmap``, …).
_FILE_IO_CALLS = frozenset({
    "open",
    "mmap",
    "memmap",
    "TemporaryFile",
    "NamedTemporaryFile",
    "TemporaryDirectory",
    "mkstemp",
    "mkdtemp",
})

#: Ambient helper functions whose first argument is a counter name.
_COUNTER_FUNC_NAMES = frozenset({"count", "_count"})
#: Method names whose first argument is a counter name.
_COUNTER_ATTR_NAMES = frozenset({"bump"})
#: Functions/methods whose first argument is a gauge name.
_GAUGE_NAMES = frozenset({"gauge_max", "set_gauge"})


def check_module(tree: ast.Module, module: str | None,
                 filename: str) -> list[tuple[int, int, str, str]]:
    checker = _Checker(module, filename)
    checker.visit_module(tree)
    return checker.findings


class _Checker:
    def __init__(self, module: str | None, filename: str):
        self.module = module
        self.filename = filename
        self.findings: list[tuple[int, int, str, str]] = []

    def report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            (node.lineno, node.col_offset, code, message)
        )

    def visit_module(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler):
                self.check_bare_except(node)
            elif isinstance(node, ast.Raise):
                self.check_kernel_fallback_raise(node)
            elif isinstance(node, ast.Call):
                self.check_counter_name(node)
                self.check_evaluate_batch(node)
                self.check_file_io_boundary(node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                self.check_engine_imports(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self.check_vector_mutation(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.check_selectivity_clamped(node)
        self.check_unused_imports(tree)
        self.check_module_mutables(tree)
        self.check_trace_guards(tree)

    # -- ANL001: bare except ------------------------------------------------------

    def check_bare_except(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node, "ANL001",
                "bare 'except:' swallows engine errors and KeyboardInterrupt"
                " — catch a concrete exception type",
            )

    # -- ANL002: KernelFallback provenance ---------------------------------------

    def check_kernel_fallback_raise(self, node: ast.Raise) -> None:
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name != "KernelFallback":
            return
        if self.module is None or self.module in _KERNEL_FALLBACK_MODULES:
            return
        self.report(
            node, "ANL002",
            f"KernelFallback raised outside the kernel modules "
            f"({self.module}): operators must catch it and take the "
            f"fallback path, only kernels may signal it",
        )

    # -- ANL003: declared counter/gauge names ------------------------------------

    def check_counter_name(self, node: ast.Call) -> None:
        func = node.func
        kind = None
        if isinstance(func, ast.Name):
            if func.id in _COUNTER_FUNC_NAMES:
                kind = "counter"
            elif func.id in _GAUGE_NAMES:
                kind = "gauge"
        elif isinstance(func, ast.Attribute):
            if func.attr in _COUNTER_ATTR_NAMES:
                kind = "counter"
            elif func.attr in _GAUGE_NAMES:
                kind = "gauge"
        if kind is None or not node.args:
            return
        name, complete = _static_string(node.args[0])
        if name is None:
            return  # dynamic name: the runtime validator covers it
        if complete:
            declared = (
                is_declared_counter(name) if kind == "counter"
                else is_declared_gauge(name)
            )
            if not declared:
                self.report(
                    node, "ANL003",
                    f"undeclared {kind} name {name!r}: add it to "
                    f"repro.observability.registry",
                )
            return
        # f-string: the static prefix must correspond to a declared
        # dynamic prefix (e.g. "optimizer.rule.").
        if not any(
            name.startswith(prefix) or prefix.startswith(name)
            for prefix in DECLARED_PREFIXES
        ):
            self.report(
                node, "ANL003",
                f"{kind} name built from undeclared prefix {name!r}: "
                f"declare the prefix in repro.observability.registry",
            )

    # -- ANL004: engine import boundaries ----------------------------------------

    def check_engine_imports(self, node: ast.Import | ast.ImportFrom) -> None:
        if self.module is None:
            return
        for target in self._import_targets(node):
            reason = self._boundary_violation(target)
            if reason:
                # One report per import statement: the base module and
                # its aliases would word the same breach differently.
                self.report(node, "ANL004", reason)
                return

    def _import_targets(
        self, node: ast.Import | ast.ImportFrom
    ) -> Iterator[str]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
            return
        if node.level == 0:
            base = node.module or ""
        else:
            parts = (self.module or "").split(".")
            if self.filename != "__init__.py":
                parts = parts[:-1]
            parts = parts[: len(parts) - (node.level - 1)]
            base = ".".join(parts)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
        if base:
            yield base
            for alias in node.names:
                yield f"{base}.{alias.name}"

    def _boundary_violation(self, target: str) -> str | None:
        module = self.module or ""
        if module.startswith("repro.pgsim"):
            if target.startswith("repro.quack."):
                segment = target.split(".")[2]
                if segment not in _PGSIM_ALLOWED_QUACK:
                    return (
                        f"pgsim imports quack internal "
                        f"'repro.quack.{segment}': the row engine may "
                        f"only use the shared frontend "
                        f"(plan/binder/optimizer/keys/…)"
                    )
        elif module.startswith("repro.quack"):
            if target == "repro.pgsim" or target.startswith("repro.pgsim."):
                return (
                    f"quack imports pgsim ({target}): the columnar "
                    f"engine must not depend on the row engine"
                )
        elif module.startswith("repro.observability"):
            for engine in ("repro.quack", "repro.pgsim"):
                if target == engine or target.startswith(engine + "."):
                    return (
                        f"observability imports engine code ({target}): "
                        f"the metrics layer must stay engine-neutral"
                    )
        return None

    # -- ANL005: Vector payload ownership ----------------------------------------

    def check_vector_mutation(
        self, node: ast.Assign | ast.AugAssign
    ) -> None:
        if self.module in _VECTOR_OWNER_MODULES:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            attr = self._payload_attribute(target)
            if attr is not None:
                self.report(
                    node, "ANL005",
                    f"mutation of a Vector's .{attr} payload outside "
                    f"repro.quack.vector: build a new Vector instead "
                    f"(in-place writes stale the _aux caches)",
                )

    @staticmethod
    def _payload_attribute(target: ast.expr) -> str | None:
        """Return 'data'/'validity' when ``target`` writes through such an
        attribute of a non-``self`` object (directly or via subscript)."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return None
        if target.attr not in ("data", "validity"):
            return None
        owner = target.value
        if isinstance(owner, ast.Name) and owner.id == "self":
            return None
        return target.attr

    # -- ANL006: evaluate_batch needs a reachable scalar fallback -----------------

    def check_evaluate_batch(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "ScalarFunction":
            return
        keywords = {
            kw.arg: kw.value for kw in node.keywords if kw.arg is not None
        }
        batch = keywords.get("evaluate_batch")
        if batch is None or _is_none(batch):
            return
        # Positional layout: name, arg_types, return_type, fn_scalar,
        # fn_vector, …
        has_scalar = len(node.args) >= 4 or (
            "fn_scalar" in keywords and not _is_none(keywords["fn_scalar"])
        )
        has_vector = len(node.args) >= 5 or (
            "fn_vector" in keywords and not _is_none(keywords["fn_vector"])
        )
        if not has_scalar:
            self.report(
                node, "ANL006",
                "ScalarFunction registers evaluate_batch without "
                "fn_scalar: the kernel has no reachable scalar fallback "
                "when it declines a chunk (or kernels are disabled)",
            )
        if has_vector:
            self.report(
                node, "ANL006",
                "ScalarFunction registers both evaluate_batch and "
                "fn_vector: fn_vector takes precedence, the batch kernel "
                "is dead code",
            )

    # -- ANL007: unused imports ---------------------------------------------------

    def check_unused_imports(self, tree: ast.Module) -> None:
        seen: set[str] = set()
        for stmt, _, binding in unused_import_aliases(tree,
                                                      self.filename):
            if binding in seen:
                continue
            seen.add(binding)
            self.report(
                stmt, "ANL007",
                f"unused import {binding!r}",
            )

    # -- ANL008: module-level mutable state in quack ------------------------------

    def check_module_mutables(self, tree: ast.Module) -> None:
        """Morsel workers share module globals: a module-level mutable
        container in ``repro.quack`` is cross-thread state.  UPPER_CASE
        names mark the deliberate import-time registries (populated once,
        then read-only, or guarded by an explicit lock); anything else is
        presumed accidental shared state."""
        if not (self.module or "").startswith("repro.quack"):
            return
        for node in tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            else:
                continue
            if value is None or not _is_mutable_container(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.isupper():
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends
                self.report(
                    node, "ANL008",
                    f"module-level mutable {name!r}: quack worker threads "
                    f"share module globals — make it an UPPER_CASE "
                    f"registry with synchronized writes, or move it into "
                    f"per-query state (ExecutionContext/Connection)",
                )


    # -- ANL011: file I/O stays inside repro.quack.storage -------------------------

    def check_file_io_boundary(self, node: ast.Call) -> None:
        """Only :mod:`repro.quack.storage` may perform file I/O inside
        ``repro.quack``: every other module routes through its
        ``open_path``/``StorageFile``/``SpillFile`` seams, so the
        on-disk format, spill lifecycle, and byte accounting live in
        one place."""
        module = self.module or ""
        if not module.startswith("repro.quack"):
            return
        if module in _STORAGE_MODULES:
            return
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
            receiver = _dotted_name(func.value)
            # storage.open_path(...) and self-method calls are the
            # sanctioned seams, not raw I/O.
            if receiver is not None and receiver.split(".")[-1] in (
                "storage", "_storage", "self"
            ):
                return
        if name in _FILE_IO_CALLS:
            self.report(
                node, "ANL011",
                f"file I/O call {name!r} outside repro.quack.storage: "
                f"route it through storage.open_path / SpillFile so "
                f"persistence stays behind the storage seam",
            )

    # -- ANL010: selectivity estimators must clamp to [0, 1] -----------------------

    def check_selectivity_clamped(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        """A function named ``*_selectivity`` feeds cardinality math that
        multiplies its results together; one value outside [0, 1] (from a
        histogram edge case, a division, NaN) silently corrupts every
        downstream estimate.  Every return must therefore go through
        ``clamp01(...)`` as the outermost call."""
        if not node.name.endswith("_selectivity"):
            return
        for ret in _own_returns(node):
            if ret.value is not None and _is_clamp_call(ret.value):
                continue
            self.report(
                ret, "ANL010",
                f"selectivity estimator {node.name!r} returns an "
                f"unclamped value: wrap the result in clamp01(...) so "
                f"estimates stay in [0, 1]",
            )

    # -- ANL009: trace emission must be guarded -----------------------------------

    def check_trace_guards(self, tree: ast.Module) -> None:
        """Every ``<collector>.emit(...)`` call must sit inside an ``if``
        that checks the collector (``if ctx.trace is not None:`` /
        ``if trace is not None:``) or ``collection_enabled()``.  The
        collector only exists when collection is on; an unguarded emit
        either crashes on None or — worse — pays event-building cost on
        the collection-off path, breaking the ~0% overhead guarantee.
        The observability package itself (where collectors live and are
        always non-None by construction) is exempt."""
        if (self.module or "").startswith("repro.observability"):
            return
        self._trace_walk(tree.body, frozenset())

    def _trace_walk(self, stmts: list[ast.stmt],
                    guards: frozenset[str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function runs later, under conditions the
                # definition site's guards don't constrain.
                self._trace_walk(stmt.body, frozenset())
                continue
            if isinstance(stmt, ast.If):
                self._check_emits_in(stmt.test, guards)
                self._trace_walk(
                    stmt.body, guards | self._guards_from_test(stmt.test)
                )
                self._trace_walk(stmt.orelse, guards)
                continue
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, ast.expr):
                    self._check_emits_in(value, guards)
                elif isinstance(value, list):
                    for item in value:
                        if isinstance(item, ast.stmt):
                            self._trace_walk([item], guards)
                        elif isinstance(item, ast.expr):
                            self._check_emits_in(item, guards)
                        elif isinstance(item, ast.excepthandler):
                            self._trace_walk(item.body, guards)
                        elif isinstance(item, ast.withitem):
                            self._check_emits_in(
                                item.context_expr, guards
                            )

    def _guards_from_test(self, test: ast.expr) -> frozenset[str]:
        """Collector receivers an ``if`` test establishes as non-None
        (any mention counts — ``x is not None``, truthiness, ``and``
        chains); ``collection_enabled()`` guards everything (``*``)."""
        out: set[str] = set()
        for node in ast.walk(test):
            dotted = _dotted_name(node)
            if dotted is not None and _is_trace_receiver(dotted):
                out.add(dotted)
            if isinstance(node, ast.Call):
                func = _dotted_name(node.func)
                if func and func.split(".")[-1] == "collection_enabled":
                    out.add("*")
        return frozenset(out)

    def _check_emits_in(self, expr: ast.expr,
                        guards: frozenset[str]) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "emit"):
                continue
            receiver = _dotted_name(func.value)
            if receiver is None or not _is_trace_receiver(receiver):
                continue
            if "*" in guards or receiver in guards:
                continue
            self.report(
                node, "ANL009",
                f"unguarded trace emission {receiver}.emit(...): wrap it "
                f"in 'if {receiver} is not None:' (or a "
                f"collection_enabled() check) so the collection-off path "
                f"stays free",
            )


def _own_returns(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Return]:
    """Return statements belonging to ``func`` itself (nested function
    definitions have their own contract and are skipped)."""
    stack: list[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.Return):
            yield stmt
            continue
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        stack.append(item)
                    elif isinstance(item, ast.excepthandler):
                        stack.extend(item.body)


def _is_clamp_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "clamp01"
    if isinstance(func, ast.Attribute):
        return func.attr == "clamp01"
    return False


#: Name segments that identify a trace-collector receiver.
_TRACE_SEGMENTS = frozenset({"trace", "_trace", "collector", "_collector"})


def _is_trace_receiver(dotted: str) -> bool:
    return any(seg in _TRACE_SEGMENTS for seg in dotted.split("."))


def _dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


#: Constructors whose result is a shared-mutable container.
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray",
    "defaultdict", "deque", "Counter", "OrderedDict",
})


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set,
                         ast.ListComp, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _static_string(node: ast.expr) -> tuple[str | None, bool]:
    """Extract a string literal (value, True) or an f-string's static
    prefix (prefix, False); (None, False) for anything dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for part in node.values:
            if isinstance(part, ast.Constant) and isinstance(
                part.value, str
            ):
                prefix += part.value
            else:
                return prefix, False
        return prefix, True
    return None, False


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _names_in_string_annotations(tree: ast.Module) -> set[str]:
    """Names referenced by forward-reference (string) annotations, e.g.
    ``stats: "QueryStatistics"`` — those count as uses of an import."""
    out: set[str] = set()

    def handle(annotation: ast.expr | None) -> None:
        if annotation is None:
            return
        for node in ast.walk(annotation):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                try:
                    parsed = ast.parse(node.value, mode="eval")
                except SyntaxError:
                    continue
                for name in ast.walk(parsed):
                    if isinstance(name, ast.Name):
                        out.add(name.id)

    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            handle(node.annotation)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            handle(node.returns)
            arguments = node.args
            for arg in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
                arguments.vararg,
                arguments.kwarg,
            ):
                if arg is not None:
                    handle(arg.annotation)
    return out


def _all_exports(tree: ast.Module) -> list[str]:
    """Names listed in a module-level ``__all__`` literal."""
    out: list[str] = []
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
            and isinstance(node.value, (ast.List, ast.Tuple))
        ):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    out.append(element.value)
    return out


def unused_import_aliases(
    tree: ast.Module, filename: str,
) -> list[tuple[ast.stmt, ast.alias, str]]:
    """Every unused import binding as ``(statement, alias, binding)``.

    Shared by the ANL007 check and ``--fix``: the rule reports one
    violation per binding, the fixer deletes the exact alias spans.
    ``__init__.py`` re-export surfaces, ``__future__`` imports, ``*``
    imports, the ``x as x`` re-export idiom and ``_``-prefixed bindings
    are all exempt, exactly as the rule has always treated them.
    """
    if filename == "__init__.py":
        return []
    entries: list[tuple[ast.stmt, ast.alias, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                binding = (alias.asname or alias.name).split(".")[0]
                entries.append((node, alias, binding))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if alias.asname == alias.name:
                    continue  # explicit re-export idiom
                entries.append((node, alias, alias.asname or alias.name))
    if not entries:
        return []
    used: set[str] = set()
    for node in ast.walk(tree):
        # Import statements bind through alias objects, not Name
        # nodes, so every Name occurrence is a genuine use.
        if isinstance(node, ast.Name):
            used.add(node.id)
    used |= _names_in_string_annotations(tree)
    used.update(_all_exports(tree))
    return [
        (stmt, alias, binding)
        for stmt, alias, binding in entries
        if not binding.startswith("_") and binding not in used
    ]
