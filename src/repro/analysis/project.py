"""Shared whole-program project model for the static analyses.

Both analysis heads — the per-module AST lint (:mod:`repro.analysis.lint`)
and the whole-program flow analyzer (:mod:`repro.analysis.flow`) — consume
this model, so every source file is read and parsed **exactly once** per
run even when both heads execute.

:meth:`ProjectModel.parse` is the cheap half: it loads and parses files
(optionally on a thread pool via ``jobs``) and is all the lint needs.
:meth:`ProjectModel.resolve` builds the expensive whole-program layers on
top, lazily and at most once:

* a **symbol table** of every function, method, nested function, and
  lambda, keyed by dotted qualname (nested scopes use the runtime
  ``<locals>`` convention, e.g. ``repro.quack.parallel._submit.<locals>.call``);
* the **class hierarchy** with name-resolved bases and a per-class method
  table, plus a project-wide method index used for receiver-blind call
  resolution;
* a **call graph** whose edges cover direct calls, ``self``/``cls``
  method dispatch through the hierarchy (including subclass overrides),
  module-attribute calls through the import table, and *references* to
  known functions (a function passed as a value runs later — reachability
  must flow through the reference);
* an **execution-context classification** of every function as
  ``coordinator``-only, ``worker``-reachable (on a path from a
  :class:`~repro.quack.parallel.MorselPool` task-submission root), or
  ``both``.

Known unsoundness (documented, deliberate): dynamic dispatch through
``getattr``/``functools`` indirection is invisible; attribute calls on
unknown receivers resolve by method name only when the name is rare in
the project (common names like ``get``/``close`` would connect everything
to everything); C-extension callbacks and strings evaluated at runtime
are out of scope.  The flow passes treat the worker set as an
over-approximation and keep their own exemption lists tight instead.
"""

from __future__ import annotations

import ast
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectModel",
    "iter_python_files",
    "module_name_for",
]

#: Callee names (final segment) that hand a callable to the morsel worker
#: pool.  ``run_tasks``/``ordered_map`` are the public scatter helpers,
#: ``_submit`` the internal wrapper, ``submit`` the raw executor method.
SUBMISSION_NAMES = frozenset({"run_tasks", "ordered_map", "_submit", "submit"})

#: Method names too common to resolve receiver-blind: connecting every
#: ``x.get(...)`` to every class defining ``get`` would make the call
#: graph one giant cycle.  ``self.<name>`` calls still resolve precisely.
_COMMON_METHOD_NAMES = frozenset({
    "get", "set", "add", "pop", "close", "open", "read", "write", "run",
    "append", "extend", "update", "clear", "remove", "discard", "copy",
    "items", "keys", "values", "join", "split", "format", "count",
    "result", "cancel", "put", "start", "stop", "wait", "emit", "bump",
    "value", "rows", "name", "scan", "fetch", "merge", "lower", "upper",
})

#: Receiver-blind resolution only fires when at most this many classes
#: define the method — beyond that the name is effectively generic.
_MAX_BLIND_TARGETS = 8

#: Keyword-argument names excluded from the callback registry: generic
#: enough that linking them by name would invent edges (``key=`` on every
#: ``sorted`` call, …).
_CALLBACK_KEYWORD_SKIP = frozenset({
    "key", "default", "reverse", "stats", "trace", "args",
})


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``.

    Files under a ``src/`` root get their real package path (matching the
    runtime import name); anything else falls back to the file stem so
    fixture corpora and scratch trees still model cleanly.
    """
    resolved = path.resolve()
    parts = resolved.parts
    if "src" in parts:
        rel = parts[parts.index("src") + 1:]
        if rel and rel[-1].endswith(".py"):
            rel = rel[:-1] + (rel[-1][: -len(".py")],)
            if rel[-1] == "__init__":
                rel = rel[:-1]
            if rel:
                return ".".join(rel)
    stem = resolved.stem
    return resolved.parent.name + "." + stem if stem == "__init__" else stem


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: Path
    name: str
    filename: str
    source: str
    tree: ast.Module
    #: raw source lines, for suppression-comment lookups
    lines: list[str] = field(default_factory=list)
    #: the SyntaxError that emptied ``tree``, if the file didn't parse
    error: SyntaxError | None = None

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclass
class FunctionInfo:
    """A function, method, nested function, or lambda."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda
    #: qualname of the owning class for methods, else None
    owner_class: str | None
    #: qualname of the enclosing function for closures, else None
    parent: str | None
    path: Path = field(default=Path("."))

    @property
    def is_method(self) -> bool:
        return self.owner_class is not None

    @property
    def is_nested(self) -> bool:
        return self.parent is not None


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    #: base-class names as written (dotted), resolved where possible
    bases: list[str] = field(default_factory=list)
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)


def _parse_one(path: Path) -> ModuleInfo | None:
    try:
        source = path.read_text(encoding="utf-8")
    except OSError:
        return None
    error: SyntaxError | None = None
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        # The lint reports syntax errors per-file (ANL000); the model
        # keeps the error and an empty tree so resolution can proceed.
        error = exc
        tree = ast.Module(body=[], type_ignores=[])
    return ModuleInfo(
        path=path,
        name=module_name_for(path),
        filename=path.name,
        source=source,
        tree=tree,
        lines=source.splitlines(),
        error=error,
    )


class ProjectModel:
    """Parse-once project model shared by lint and flow."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = modules
        self.by_name: dict[str, ModuleInfo] = {m.name: m for m in modules}
        self._resolved = False
        # Whole-program layers, built by resolve():
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.imports: dict[str, dict[str, str]] = {}
        self.module_functions: dict[str, dict[str, str]] = {}
        self.module_classes: dict[str, dict[str, str]] = {}
        self.method_index: dict[str, list[str]] = {}
        self.calls: dict[str, set[str]] = {}
        self.worker_roots: set[str] = set()
        #: worker-reachable function -> the submission root it descends from
        self.worker_via: dict[str, str] = {}
        self.contexts: dict[str, str] = {}

    # -- construction -----------------------------------------------------------

    @classmethod
    def parse(cls, paths: Iterable[str | Path],
              jobs: int = 1) -> "ProjectModel":
        """Read and parse every file once; no whole-program resolution."""
        files = iter_python_files(paths)
        if jobs > 1 and len(files) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                parsed = list(pool.map(_parse_one, files))
        else:
            parsed = [_parse_one(f) for f in files]
        return cls([m for m in parsed if m is not None])

    @classmethod
    def load(cls, paths: Iterable[str | Path],
             jobs: int = 1) -> "ProjectModel":
        """Parse and fully resolve (symbols, call graph, contexts)."""
        model = cls.parse(paths, jobs=jobs)
        model.resolve()
        return model

    # -- symbol collection ------------------------------------------------------

    def resolve(self) -> "ProjectModel":
        if self._resolved:
            return self
        self._resolved = True
        for module in self.modules:
            self._collect_symbols(module)
        self._children: dict[str, dict[str, str]] = {}
        for qualname, info in self.functions.items():
            if info.parent is not None and \
                    qualname.startswith(f"{info.parent}.<locals>."):
                self._children.setdefault(info.parent, {})[info.name] = \
                    qualname
        self._resolve_bases()
        self._build_callback_registry()
        for info in self.functions.values():
            self.calls[info.qualname] = self._edges_for(info)
        self._find_worker_roots()
        self._classify_contexts()
        return self

    def _build_callback_registry(self) -> None:
        """Link keyword-registered callbacks to same-named attribute calls.

        ``ScalarFunction(..., evaluate_batch=make_batch(...))`` stores a
        callable on a data attribute that is later invoked as
        ``fn.evaluate_batch(...)`` — dynamic dispatch a syntactic call
        graph cannot see.  The registry collects, per keyword name, every
        project function referenced in a keyword argument's value
        (including closures returned by factory calls); attribute calls
        that resolve no other way pick these up as callees.
        """
        self.callback_registry: dict[str, set[str]] = {}
        # Helper wrappers forward their own parameters into callback
        # keywords (``def scalar(..., batch=None): ScalarFunction(...,
        # evaluate_batch=batch)``).  Record (param -> keyword) pairs so
        # the argument bound to ``batch`` at each *call site* of the
        # helper lands in the ``evaluate_batch`` registry entry.
        forwards: dict[str, list[tuple[str, str]]] = {}
        for info in self.functions.values():
            params = set(_param_names(info.node))
            for node in iter_own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for kw in node.keywords:
                    if kw.arg is None or kw.arg in _CALLBACK_KEYWORD_SKIP:
                        continue
                    if isinstance(kw.value, ast.Name) and \
                            kw.value.id in params:
                        forwards.setdefault(info.qualname, []).append(
                            (kw.value.id, kw.arg)
                        )
                        continue
                    targets = self._functions_in_expr(info, kw.value)
                    if targets:
                        self.callback_registry.setdefault(
                            kw.arg, set()
                        ).update(targets)
        if not forwards:
            return
        for info in self.functions.values():
            for node in iter_own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                for target in self.resolve_call(info, node.func):
                    for param, keyword in forwards.get(target, ()):
                        expr = self._argument_for(
                            self.functions[target], node, param
                        )
                        if expr is None:
                            continue
                        funcs = self._functions_in_expr(info, expr)
                        if funcs:
                            self.callback_registry.setdefault(
                                keyword, set()
                            ).update(funcs)

    def _argument_for(self, target: "FunctionInfo", call: ast.Call,
                      param: str) -> ast.expr | None:
        """The expression bound to ``param`` of ``target`` at ``call``,
        matching keywords first, then positionals by signature index
        (dropping ``self``/``cls`` for attribute calls)."""
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        params = _param_names(target.node)
        if params and params[0] in ("self", "cls") and \
                isinstance(call.func, ast.Attribute):
            params = params[1:]
        try:
            index = params.index(param)
        except ValueError:
            return None
        if index < len(call.args) and \
                not isinstance(call.args[index], ast.Starred):
            return call.args[index]
        return None

    def _functions_in_expr(self, info: FunctionInfo,
                           expr: ast.expr) -> set[str]:
        """Project functions a value expression could evaluate to or
        close over: direct references, lambdas, and the returned nested
        functions of factory calls."""
        out: set[str] = set()
        call_funcs = {
            id(sub.func) for sub in ast.walk(expr)
            if isinstance(sub, ast.Call)
        }
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                resolved = self._lambda_qualname(info, node)
                if resolved is not None:
                    out.add(resolved)
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                target = self.resolve_name(info, node.id)
                if target is None or target not in self.functions:
                    continue
                if id(node) in call_funcs:
                    # Invoked eagerly here: what flows onward is its
                    # return value — a factory's returned closure.
                    out.update(self._returned_nested(target))
                else:
                    out.add(target)
        return out

    def _lambda_qualname(self, info: FunctionInfo,
                         node: ast.Lambda) -> str | None:
        for scope in self._scope_chain(info):
            qualname = (
                f"{scope.qualname}.<locals>.<lambda:{node.lineno}:"
                f"{node.col_offset}>"
            )
            if qualname in self.functions:
                return qualname
        qualname = f"{info.module}.<lambda:{node.lineno}:{node.col_offset}>"
        return qualname if qualname in self.functions else None

    def _collect_symbols(self, module: ModuleInfo) -> None:
        imports: dict[str, str] = {}
        self.imports[module.name] = imports
        self.module_functions.setdefault(module.name, {})
        self.module_classes.setdefault(module.name, {})

        def record_import(node: ast.Import | ast.ImportFrom) -> None:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    binding = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    imports[binding] = target
                return
            if node.level == 0:
                base = node.module or ""
            else:
                parts = module.name.split(".")
                if module.filename != "__init__.py":
                    parts = parts[:-1]
                parts = parts[: len(parts) - (node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                binding = alias.asname or alias.name
                imports[binding] = f"{base}.{alias.name}" if base \
                    else alias.name

        def record_lambdas(stmt: ast.stmt, prefix: str,
                           parent_fn: str | None) -> None:
            """Register lambdas in this statement's own expressions.

            Nested def/class bodies are separate scopes, and nested
            *statements* (compound bodies) are skipped too — ``visit``
            recurses into those and calls this on each one, so walking
            them here would re-scan every block once per ancestor.
            """
            stack: list[ast.AST] = [stmt]
            while stack:
                node = stack.pop()
                if isinstance(node, ast.Lambda):
                    qualname = (
                        f"{prefix}.<lambda:{node.lineno}:"
                        f"{node.col_offset}>"
                    )
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname, module=module.name,
                        name="<lambda>", node=node,
                        owner_class=None, parent=parent_fn,
                        path=module.path,
                    )
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef, ast.stmt)):
                        continue
                    stack.append(child)

        def visit(nodes: list[ast.stmt], prefix: str,
                  owner_class: str | None, parent_fn: str | None) -> None:
            for node in nodes:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    record_import(node)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{node.name}"
                    info = FunctionInfo(
                        qualname=qualname, module=module.name,
                        name=node.name, node=node,
                        owner_class=owner_class, parent=parent_fn,
                        path=module.path,
                    )
                    self.functions[qualname] = info
                    if owner_class is not None:
                        cls_info = self.classes[owner_class]
                        cls_info.methods.setdefault(node.name, qualname)
                        self.method_index.setdefault(
                            node.name, []
                        ).append(qualname)
                    elif parent_fn is None:
                        self.module_functions[module.name][node.name] = \
                            qualname
                    visit(node.body, f"{qualname}.<locals>", None, qualname)
                elif isinstance(node, ast.ClassDef):
                    qualname = f"{prefix}.{node.name}"
                    self.classes[qualname] = ClassInfo(
                        qualname=qualname, module=module.name,
                        name=node.name, node=node,
                        bases=[d for d in map(_dotted, node.bases)
                               if d is not None],
                    )
                    if owner_class is None and parent_fn is None:
                        self.module_classes[module.name][node.name] = \
                            qualname
                    visit(node.body, qualname, qualname, parent_fn)
                else:
                    record_lambdas(node, prefix, parent_fn)
                    # Recurse into compound-statement bodies so defs
                    # inside if/for/while/with/try blocks are collected.
                    for _, value in ast.iter_fields(node):
                        if isinstance(value, list) and any(
                            isinstance(item, ast.stmt) for item in value
                        ):
                            visit([item for item in value
                                   if isinstance(item, ast.stmt)],
                                  prefix, owner_class, parent_fn)
                        elif isinstance(value, list):
                            for item in value:
                                if isinstance(item, ast.excepthandler):
                                    visit(item.body, prefix, owner_class,
                                          parent_fn)

        visit(module.tree.body, module.name, None, None)

    def _resolve_bases(self) -> None:
        """Rewrite class base names to project qualnames where resolvable
        and build the subclass closure used for override dispatch."""
        self.subclasses: dict[str, list[str]] = {}
        for cls_info in self.classes.values():
            resolved = []
            imports = self.imports.get(cls_info.module, {})
            local = self.module_classes.get(cls_info.module, {})
            for base in cls_info.bases:
                head, _, rest = base.partition(".")
                target = None
                if base in local:
                    target = local[base]
                elif head in imports:
                    dotted = imports[head] + (f".{rest}" if rest else "")
                    target = self._class_by_dotted(dotted)
                if target is not None:
                    resolved.append(target)
                    self.subclasses.setdefault(target, []).append(
                        cls_info.qualname
                    )
                else:
                    resolved.append(base)
            cls_info.bases = resolved

    def _class_by_dotted(self, dotted: str) -> str | None:
        if dotted in self.classes:
            return dotted
        # "package.module.Class" imported as "package.module" + attribute
        head, _, tail = dotted.rpartition(".")
        if head in self.by_name:
            return self.module_classes.get(head, {}).get(tail)
        return None

    # -- call-graph edges -------------------------------------------------------

    def _mro(self, cls_qualname: str) -> Iterator[str]:
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            yield current
            stack.extend(self.classes[current].bases)

    def _resolve_method(self, cls_qualname: str, name: str) -> list[str]:
        """``self.name`` dispatch: the MRO definition plus every subclass
        override (the static receiver type is a lower bound)."""
        out: list[str] = []
        for klass in self._mro(cls_qualname):
            method = self.classes[klass].methods.get(name)
            if method is not None:
                out.append(method)
                break
        for sub in self._all_subclasses(cls_qualname):
            method = self.classes[sub].methods.get(name)
            if method is not None and method not in out:
                out.append(method)
        return out

    def _all_subclasses(self, cls_qualname: str) -> Iterator[str]:
        seen: set[str] = set()
        stack = list(self.subclasses.get(cls_qualname, []))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            yield current
            stack.extend(self.subclasses.get(current, []))

    def _scope_chain(self, info: FunctionInfo) -> list[FunctionInfo]:
        chain = [info]
        while chain[-1].parent is not None:
            parent = self.functions.get(chain[-1].parent)
            if parent is None:
                break
            chain.append(parent)
        return chain

    def _nested_defs(self, info: FunctionInfo) -> dict[str, str]:
        """Function definitions directly visible in ``info``'s scope."""
        return self._children.get(info.qualname, {})

    def resolve_name(self, info: FunctionInfo, name: str) -> str | None:
        """Resolve a bare name in ``info``'s scope to a function or class
        qualname (``None`` for locals, builtins, and unknowns)."""
        for scope in self._scope_chain(info):
            nested = self._nested_defs(scope)
            if name in nested:
                return nested[name]
        module_fns = self.module_functions.get(info.module, {})
        if name in module_fns:
            return module_fns[name]
        module_classes = self.module_classes.get(info.module, {})
        if name in module_classes:
            return module_classes[name]
        imports = self.imports.get(info.module, {})
        if name in imports:
            target = imports[name]
            resolved = self._function_by_dotted(target)
            if resolved is not None:
                return resolved
            klass = self._class_by_dotted(target)
            if klass is not None:
                return klass
        return None

    def _function_by_dotted(self, dotted: str) -> str | None:
        if dotted in self.functions:
            return dotted
        head, _, tail = dotted.rpartition(".")
        if head in self.by_name:
            return self.module_functions.get(head, {}).get(tail)
        return None

    def resolve_call(self, info: FunctionInfo,
                     func: ast.expr) -> list[str]:
        """Resolve a call's callee expression to function/class qualnames."""
        if isinstance(func, ast.Name):
            target = self.resolve_name(info, func.id)
            if target is None:
                return []
            if target in self.classes:
                ctor = self.classes[target].methods.get("__init__")
                return [ctor] if ctor is not None else []
            return [target]
        if not isinstance(func, ast.Attribute):
            return []
        receiver = func.value
        # self.method(...) / cls.method(...)
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls") \
                and info.owner_class is not None:
            resolved = self._resolve_method(info.owner_class, func.attr)
            if resolved:
                return resolved
            # No such method anywhere in the hierarchy: a callable stored
            # on a data attribute (``self.evaluate_batch(...)``).
            return list(self.callback_registry.get(func.attr, ()))
        # module.function(...) through the import table
        dotted = _dotted(receiver)
        if dotted is not None:
            head = dotted.split(".")[0]
            imports = self.imports.get(info.module, {})
            if head in imports:
                base = imports[head] + dotted[len(head):]
                target = self._function_by_dotted(f"{base}.{func.attr}")
                if target is not None:
                    return [target]
                klass = self._class_by_dotted(base)
                if klass is not None:
                    method = self.classes[klass].methods.get(func.attr)
                    if method is not None:
                        return [method]
            # ClassName.method(...) on a locally known class
            local_cls = self.module_classes.get(info.module, {}).get(dotted)
            if local_cls is not None:
                method = self.classes[local_cls].methods.get(func.attr)
                if method is not None:
                    return [method]
        # Receiver-blind: only for method names rare enough to be
        # meaningful, and only toward modules the caller can actually
        # see — a class the caller's module never imports cannot be the
        # receiver's type, and unscoped matching would weld unrelated
        # subsystems together (executor -> analysis tooling via
        # ``.parse``, quack -> pgsim via ``.append_rows``).
        if func.attr in _COMMON_METHOD_NAMES:
            return []
        candidates = self.method_index.get(func.attr, [])
        if candidates:
            visible = self._visible_modules(info.module)
            candidates = [c for c in candidates
                          if self.functions[c].module in visible]
        if 0 < len(candidates) <= _MAX_BLIND_TARGETS:
            return list(candidates)
        if not candidates:
            # Keyword-registered callbacks invoked through a data
            # attribute of the same name (evaluate_batch, fn_scalar, …).
            registered = self.callback_registry.get(func.attr)
            if registered:
                return list(registered)
        return []

    def _visible_modules(self, module: str) -> frozenset[str]:
        """The module itself plus every project module its import table
        references (directly, or as the home of an imported symbol)."""
        if not hasattr(self, "_visible_cache"):
            self._visible_cache: dict[str, frozenset[str]] = {}
        cached = self._visible_cache.get(module)
        if cached is not None:
            return cached
        visible = {module}
        for target in self.imports.get(module, {}).values():
            if target in self.by_name:
                visible.add(target)
                continue
            head = target.rsplit(".", 1)[0]
            if head in self.by_name:
                visible.add(head)
        result = frozenset(visible)
        self._visible_cache[module] = result
        return result

    def _edges_for(self, info: FunctionInfo) -> set[str]:
        edges: set[str] = set()
        nested_names: dict[str, str] = {}
        for scope in self._scope_chain(info):
            for name, qualname in self._nested_defs(scope).items():
                nested_names.setdefault(name, qualname)
        for node in iter_own_nodes(info.node):
            if isinstance(node, ast.Call):
                edges.update(self.resolve_call(info, node.func))
            elif isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Load):
                # A *reference* to a known function: it may run later
                # (callbacks, task lists) — reachability flows through.
                if node.id in nested_names:
                    edges.add(nested_names[node.id])
                else:
                    target = self.resolve_name(info, node.id)
                    if target is not None and target in self.functions:
                        edges.add(target)
        edges.discard(info.qualname)
        return edges

    # -- worker roots and contexts ----------------------------------------------

    def _returned_nested(self, qualname: str) -> list[str]:
        """Nested functions a factory returns (the ``make_task`` idiom)."""
        info = self.functions.get(qualname)
        if info is None or isinstance(info.node, ast.Lambda):
            return []
        nested = self._nested_defs(info)
        out = []
        for node in iter_own_nodes(info.node):
            if isinstance(node, ast.Return) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id in nested:
                out.append(nested[node.value.id])
        return out

    def _find_worker_roots(self) -> None:
        for info in list(self.functions.values()):
            for node in iter_own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                last = callee.attr if isinstance(callee, ast.Attribute) \
                    else callee.id if isinstance(callee, ast.Name) else None
                if last not in SUBMISSION_NAMES:
                    continue
                self._roots_from_args(info, node)

    def _roots_from_args(self, info: FunctionInfo, call: ast.Call) -> None:
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            call_funcs = {
                id(sub.func) for sub in ast.walk(arg)
                if isinstance(sub, ast.Call)
            }
            for node in ast.walk(arg):
                if isinstance(node, ast.Lambda):
                    qualname = self._lambda_qualname(info, node)
                    if qualname is not None:
                        self._add_root(qualname)
                elif isinstance(node, ast.Name) and \
                        isinstance(node.ctx, ast.Load):
                    target = self.resolve_name(info, node.id)
                    if target is None or target not in self.functions:
                        continue
                    if id(node) in call_funcs:
                        # Invoked eagerly at the submit site (the
                        # ``make_task(s, e)`` factory idiom): only its
                        # returned closures reach the pool.
                        for nested in self._returned_nested(target):
                            self._add_root(nested)
                    else:
                        self._add_root(target)

    def _add_root(self, qualname: str) -> None:
        self.worker_roots.add(qualname)

    def _classify_contexts(self) -> None:
        worker: dict[str, str] = {}
        # Deterministic order: sorted roots, sorted callees — the
        # ``worker_via`` attribution in reports stays stable run to run.
        queue = deque((root, root) for root in sorted(self.worker_roots))
        while queue:
            current, root = queue.popleft()
            if current in worker:
                continue
            worker[current] = root
            for callee in sorted(self.calls.get(current, ())):
                if callee not in worker:
                    queue.append((callee, root))
        self.worker_via = worker
        for qualname in self.functions:
            if qualname in worker:
                # Everything worker-reachable is also coordinator-callable
                # in principle (serial fallback paths); call it "both"
                # when it has non-worker callers or is a public def.
                self.contexts[qualname] = "worker"
            else:
                self.contexts[qualname] = "coordinator"
        # Upgrade worker functions that are also plainly coordinator
        # entry points (top-level defs called outside the worker set).
        callers: dict[str, set[str]] = {}
        for caller, callees in self.calls.items():
            for callee in callees:
                callers.setdefault(callee, set()).add(caller)
        for qualname in list(self.contexts):
            if self.contexts[qualname] != "worker":
                continue
            outside = {
                c for c in callers.get(qualname, set())
                if c not in self.worker_via
            }
            if outside or (qualname not in self.worker_roots
                           and ".<locals>." not in qualname):
                self.contexts[qualname] = "both"

    # -- queries -----------------------------------------------------------------

    def context_of(self, qualname: str) -> str:
        return self.contexts.get(qualname, "coordinator")

    def is_worker_reachable(self, qualname: str) -> bool:
        return qualname in self.worker_via

    def module_of(self, info: FunctionInfo) -> ModuleInfo | None:
        return self.by_name.get(info.module)

    def incoming_calls(self, qualname: str) -> set[str]:
        out: set[str] = set()
        for caller, callees in self.calls.items():
            if qualname in callees:
                out.add(caller)
        return out

    def module_for_path(self, path: str | Path) -> ModuleInfo | None:
        """Look a module up by the path string findings carry."""
        if not hasattr(self, "_path_index"):
            self._path_index = {str(m.path): m for m in self.modules}
        return self._path_index.get(str(path))

    def module_globals(self, module: str) -> frozenset[str]:
        """Names assigned at a module's top level (module-global
        mutable state candidates)."""
        if not hasattr(self, "_module_globals"):
            self._module_globals: dict[str, frozenset[str]] = {}
        cached = self._module_globals.get(module)
        if cached is not None:
            return cached
        info = self.by_name.get(module)
        names: set[str] = set()
        if info is not None:
            for stmt in info.tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        for sub in ast.walk(target):
                            if isinstance(sub, ast.Name):
                                names.add(sub.id)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(stmt.target, ast.Name):
                        names.add(stmt.target.id)
        result = frozenset(names)
        self._module_globals[module] = result
        return result


def own_nodes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | ast.Module,
) -> tuple[ast.AST, ...]:
    """Every AST node belonging to ``fn`` itself — nested function,
    lambda, and class bodies are skipped (they are separate scopes).

    Memoized on the AST node: every resolution layer and flow pass
    iterates the same scopes, and re-walking them dominated the profile.
    The model owns its trees for its whole lifetime, so stashing the
    tuple on the node is safe.
    """
    cached = getattr(fn, "_own_nodes_cache", None)
    if cached is not None:
        return cached
    if isinstance(fn, ast.Lambda):
        stack: list[ast.AST] = [fn.body]
    else:
        stack = list(fn.body)
    out: list[ast.AST] = []
    scope_types = (ast.FunctionDef, ast.AsyncFunctionDef,
                   ast.Lambda, ast.ClassDef)
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, scope_types):
                stack.append(child)
    result = tuple(out)
    fn._own_nodes_cache = result  # type: ignore[union-attr]
    return result


def iter_own_nodes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda | ast.Module,
) -> Iterator[ast.AST]:
    """Iterator form of :func:`own_nodes` (kept for call-site brevity)."""
    return iter(own_nodes(fn))


def _param_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> list[str]:
    """Positional-then-keyword parameter names of ``fn`` in order."""
    args = fn.args
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def own_statements(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    """Top-level and nested statements of ``fn`` excluding nested
    function/class bodies."""
    stack: list[ast.stmt] = list(fn.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield stmt
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        stack.append(item)
                    elif isinstance(item, ast.excepthandler):
                        stack.extend(item.body)


def collect_local_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
) -> set[str]:
    """Names bound *inside* ``fn``'s own body (assignments, loop/with/
    except targets, comprehension variables, nested def names) —
    parameters are deliberately excluded: an object passed in may be
    shared with other threads, an object created locally is not."""
    out: set[str] = set()

    def add_target(target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name) and \
                    isinstance(node.ctx, ast.Store):
                out.add(node.id)

    for node in iter_own_nodes(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                add_target(target)
        elif isinstance(node, ast.NamedExpr):
            add_target(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            add_target(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    add_target(item.optional_vars)
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                out.add(node.name)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                add_target(comp.target)
    if not isinstance(fn, ast.Lambda):
        for stmt in fn.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                out.add(stmt.name)
    return out
