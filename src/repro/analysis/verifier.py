"""The verification layer: plan, expression, rewrite, and chunk checks.

Modeled on DuckDB's ``PRAGMA enable_verification``.  Three families:

* :func:`verify_plan` — structural/type checks over a bound plan: every
  column binding resolves within its operator's input space, every
  expression node carries a resolved :class:`LogicalType`, every function
  and cast exists in the catalog, index scans only serve predicates their
  index advertises.
* :class:`RewriteVerifier` — wraps each optimizer filter rewrite: output
  schema must be stable, the conjunction of predicates must be preserved
  (pushdown may move conjuncts, never drop or invent them), and injected
  index scans/probes must match their index keys.  Violations name the
  optimizer rule(s) that fired during the rewrite.
* :func:`verify_chunk` + the ``assert_*`` cross-check helpers — runtime
  operator-output invariants (cardinality, validity-mask length, physical
  dtype, stale ``_aux`` caches) and kernel-vs-fallback comparison,
  naming the exact operator/kernel that diverged.

Every message names the guilty rule or operator so a failure pinpoints
the corruption site, not just the symptom.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Iterator

import numpy as np

from ..quack.plan import (
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConjunction,
    BoundConstant,
    BoundExpr,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundNot,
    BoundParameterRef,
    BoundSubqueryExpr,
    LogicalAggregate,
    LogicalFilter,
    LogicalIndexScan,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalProject,
    LogicalSetOp,
    LogicalSort,
    _children,
)
from ..quack.types import BOOLEAN, LogicalType, SQLNULL
from ..quack.vector import DataChunk, Vector, _PHYSICAL_DTYPES
from .errors import VerificationError

__all__ = [
    "RewriteVerifier",
    "assert_index_lists_match",
    "assert_join_pairs_match",
    "assert_rows_match",
    "assert_vectors_match",
    "fingerprint",
    "verify_chunk",
    "verify_plan",
]


# ---------------------------------------------------------------------------
# Expression fingerprints (structural identity across rebasing)
# ---------------------------------------------------------------------------


def _shift(delta, index: int) -> int:
    """Apply a column-space transform: a plain offset (pushdown rebasing)
    or an arbitrary index mapping (cost-based join reordering)."""
    if callable(delta):
        return delta(index)
    return index + delta


def fingerprint(expr: BoundExpr, delta=0) -> str:
    """Canonical structural string for ``expr`` with column indices
    mapped through ``delta`` — an integer shift (pushdown rebasing) or a
    callable index transform (join reordering) — used to compare
    predicates across rewrites.  ``=`` is fingerprinted with sorted
    operands so equi-key extraction commuting ``a = b`` does not read as
    a different predicate."""
    if isinstance(expr, BoundColumnRef):
        return f"col#{_shift(delta, expr.index)}"
    if isinstance(expr, BoundConstant):
        return f"const({expr.value!r})"
    if isinstance(expr, BoundFunction):
        fn_name = expr.function.name if expr.function is not None else expr.name
        parts = [fingerprint(a, delta) for a in expr.args]
        if fn_name == "=" and len(parts) == 2:
            parts = sorted(parts)
        return f"{fn_name}({', '.join(parts)})"
    if isinstance(expr, BoundConjunction):
        parts = ", ".join(fingerprint(a, delta) for a in expr.args)
        return f"{expr.op}({parts})"
    if isinstance(expr, BoundCast):
        return f"cast[{expr.ltype.name}]({fingerprint(expr.child, delta)})"
    if isinstance(expr, BoundNot):
        return f"not({fingerprint(expr.child, delta)})"
    if isinstance(expr, BoundIsNull):
        head = "is_not_null" if expr.negated else "is_null"
        return f"{head}({fingerprint(expr.child, delta)})"
    if isinstance(expr, BoundInList):
        head = "not_in" if expr.negated else "in"
        items = ", ".join(fingerprint(i, delta) for i in expr.items)
        return f"{head}({fingerprint(expr.operand, delta)}; {items})"
    if isinstance(expr, BoundCase):
        parts = [
            f"{fingerprint(c, delta)}->{fingerprint(r, delta)}"
            for c, r in expr.branches
        ]
        if expr.else_result is not None:
            parts.append(f"else->{fingerprint(expr.else_result, delta)}")
        return f"case({', '.join(parts)})"
    if isinstance(expr, BoundSubqueryExpr):
        params = ", ".join(
            fingerprint(p, delta) for p in expr.outer_params_exprs
        )
        return f"subquery[{expr.kind}]#{id(expr.plan)}({params})"
    if isinstance(expr, BoundParameterRef):
        return f"param#{expr.param_index}"
    return f"<{type(expr).__name__}>"


def _split_conjuncts(expr: BoundExpr) -> list[BoundExpr]:
    if isinstance(expr, BoundConjunction) and expr.op == "AND":
        out: list[BoundExpr] = []
        for arg in expr.args:
            out.extend(_split_conjuncts(arg))
        return out
    return [expr]


def _permutation_transform(op: LogicalProject):
    """If ``op`` is a pure column permutation (every expression a bare
    column reference, bijective over the child's width), return the map
    child-space index → output position; otherwise ``None``.  The
    cost-based optimizer emits such projections to restore binder column
    order after join reordering."""
    width = len(op.child.output_types())
    if len(op.exprs) != width:
        return None
    position_of: dict[int, int] = {}
    for position, expr in enumerate(op.exprs):
        if not isinstance(expr, BoundColumnRef):
            return None
        if expr.index in position_of:
            return None
        position_of[expr.index] = position
    if len(position_of) != width:
        return None
    return position_of


def _collect_conjuncts(op: LogicalOperator, delta,
                       out: list[str]) -> None:
    """Collect conjunct fingerprints from a filter/join subtree, expressed
    in the subtree root's flat column space.  ``delta`` maps each node's
    local indices into that space — an integer shift or, below a
    column-permutation projection (cost-based join reordering), a
    composed index transform.  Equi-join keys count as their original
    ``=`` conjunct (right side shifted back over the join boundary);
    collection stops at pipeline breakers (aggregates, computing
    projections, …) whose internals pushdown never crosses."""
    if isinstance(op, LogicalFilter):
        for conj in _split_conjuncts(op.condition):
            out.append(fingerprint(conj, delta))
        _collect_conjuncts(op.child, delta, out)
        return
    if isinstance(op, LogicalJoin):
        left_width = len(op.left.output_types())

        def right_delta(index: int, _delta=delta,
                        _width=left_width) -> int:
            return _shift(_delta, index + _width)

        _collect_conjuncts(op.left, delta, out)
        _collect_conjuncts(op.right, right_delta, out)
        for left_key, right_key in op.equi_keys:
            pair = sorted((
                fingerprint(left_key, delta),
                fingerprint(right_key, right_delta),
            ))
            out.append(f"=({', '.join(pair)})")
        if op.residual is not None:
            for conj in _split_conjuncts(op.residual):
                out.append(fingerprint(conj, delta))
        return
    if isinstance(op, LogicalProject):
        position_of = _permutation_transform(op)
        if position_of is not None:

            def child_delta(index: int, _delta=delta,
                            _position_of=position_of) -> int:
                return _shift(_delta, _position_of[index])

            _collect_conjuncts(op.child, child_delta, out)
        return
    # Leaves and pipeline breakers: nothing to collect.


# ---------------------------------------------------------------------------
# Plan / expression verification
# ---------------------------------------------------------------------------


def verify_plan(plan: LogicalOperator, functions=None,
                phase: str = "plan") -> None:
    """Walk a bound plan checking structural and type invariants.

    ``functions`` is the database's :class:`FunctionRegistry`; when given,
    every bound function and cast is checked to still exist in the
    catalog.  ``phase`` tags error messages (``bind``/``optimize``)."""
    _verify_operator(plan, functions, phase)


def verify_planned(plan: LogicalOperator, functions, stats,
                   phase: str) -> None:
    """Planner hook: verify and account one plan-verification pass."""
    verify_plan(plan, functions, phase=phase)
    if stats is not None:
        stats.bump("verify.plans")


def _verify_operator(op: LogicalOperator, functions, phase: str) -> None:
    label = op._explain_label()

    def fail(message: str) -> None:
        raise VerificationError(f"[{phase}] {label}: {message}")

    names = op.output_names()
    types = op.output_types()
    if len(names) != len(types):
        fail(
            f"{len(names)} output names but {len(types)} output types"
        )
    for i, ltype in enumerate(types):
        if not isinstance(ltype, LogicalType):
            fail(f"output column {i} has unresolved type {ltype!r}")

    if isinstance(op, LogicalFilter):
        cond_type = op.condition.ltype
        # An unresolved (non-LogicalType) condition type is reported by
        # the expression walk below with the offending node's class.
        if isinstance(cond_type, LogicalType) and cond_type not in (
            BOOLEAN, SQLNULL
        ):
            fail(
                f"filter condition has type {cond_type.name}, "
                f"expected BOOLEAN"
            )
    if isinstance(op, LogicalLimit):
        if op.limit is not None and op.limit < 0:
            fail(f"negative limit {op.limit}")
        if op.offset < 0:
            fail(f"negative offset {op.offset}")
    if isinstance(op, LogicalSetOp):
        left_arity = len(op.left.output_types())
        right_arity = len(op.right.output_types())
        if left_arity != right_arity:
            fail(
                f"set operation arity mismatch: {left_arity} vs "
                f"{right_arity} columns"
            )
    if isinstance(op, LogicalIndexScan):
        if not op.index.matches(op.op_name, op.index.column, op.constant):
            fail(
                f"index {op.index.name} does not advertise "
                f"{op.op_name!r} on column {op.index.column!r}"
            )
    if isinstance(op, LogicalJoin) and op.index_probe is not None:
        index, probe_op, _ = op.index_probe
        if not index.matches(probe_op, index.column, None):
            fail(
                f"index {index.name} does not advertise {probe_op!r} "
                f"on column {index.column!r}"
            )
        if op.residual is None:
            fail("index nested-loop join without a recheck residual")

    for expr, width in _operator_exprs(op):
        _verify_expr(expr, width, functions, label, phase)

    for child in op.children():
        _verify_operator(child, functions, phase)


def _operator_exprs(
    op: LogicalOperator,
) -> Iterator[tuple[BoundExpr, int]]:
    """Yield ``(expr, input_width)`` for the operator's own expressions."""
    if isinstance(op, LogicalFilter):
        yield op.condition, len(op.child.output_types())
    elif isinstance(op, LogicalProject):
        width = len(op.child.output_types())
        for expr in op.exprs:
            yield expr, width
    elif isinstance(op, LogicalJoin):
        left_width = len(op.left.output_types())
        right_width = len(op.right.output_types())
        for left_key, right_key in op.equi_keys:
            yield left_key, left_width
            yield right_key, right_width
        if op.residual is not None:
            yield op.residual, left_width + right_width
        if op.index_probe is not None:
            yield op.index_probe[2], left_width
    elif isinstance(op, LogicalAggregate):
        width = len(op.child.output_types())
        for group in op.groups:
            yield group, width
        for spec in op.aggregates:
            for arg in spec.args:
                yield arg, width
    elif isinstance(op, LogicalSort):
        width = len(op.child.output_types())
        for key, _, _ in op.keys:
            yield key, width


def _verify_expr(expr: BoundExpr, width: int, functions, label: str,
                 phase: str) -> None:
    def fail(message: str) -> None:
        raise VerificationError(f"[{phase}] {label}: {message}")

    ltype = getattr(expr, "ltype", None)
    if not isinstance(ltype, LogicalType):
        fail(
            f"{type(expr).__name__} carries no resolved type "
            f"(got {ltype!r})"
        )
    if isinstance(expr, BoundColumnRef):
        if not (0 <= expr.index < width):
            fail(
                f"dangling column binding #{expr.index} "
                f"({expr.name or 'unnamed'}): input has {width} columns"
            )
    elif isinstance(expr, BoundFunction):
        if expr.function is None:
            fail(f"function node {expr.name!r} has no bound function")
        if (
            functions is not None
            and not functions.has_scalar(expr.function.name)
            # The binder synthesizes ad-hoc functions (e.g. struct_pack
            # for struct literals) that carry their implementation inline
            # instead of living in the catalog.
            and expr.function.fn_scalar is None
            and expr.function.fn_vector is None
        ):
            fail(
                f"function {expr.function.name!r} is not in the catalog "
                f"and carries no implementation"
            )
    elif isinstance(expr, BoundCast):
        if expr.cast is not None:
            if expr.cast.target.name != expr.ltype.name:
                fail(
                    f"cast resolves to {expr.cast.target.name} but node "
                    f"is typed {expr.ltype.name}"
                )
            if functions is not None and functions.find_cast(
                expr.cast.source, expr.cast.target
            ) is None:
                fail(
                    f"cast {expr.cast.source.name} -> "
                    f"{expr.cast.target.name} is not in the catalog"
                )
    elif isinstance(expr, BoundConjunction):
        if expr.op not in ("AND", "OR"):
            fail(f"unknown conjunction operator {expr.op!r}")
    elif isinstance(expr, BoundParameterRef):
        if expr.param_index < 0:
            fail(f"negative parameter index {expr.param_index}")
    elif isinstance(expr, BoundSubqueryExpr):
        n_params = len(expr.outer_params_exprs)
        max_used = _max_param_index(expr.plan)
        if max_used >= n_params:
            fail(
                f"subquery references parameter #{max_used} but only "
                f"{n_params} outer parameter expressions are bound"
            )
        _verify_operator(expr.plan, functions, phase)
    for child in _children(expr):
        _verify_expr(child, width, functions, label, phase)


def _max_param_index(plan: LogicalOperator) -> int:
    """Largest ``BoundParameterRef`` index used by ``plan``'s own
    expressions (not descending into nested subquery plans, which have
    their own parameter spaces)."""
    best = -1

    def visit_expr(expr: BoundExpr) -> None:
        nonlocal best
        if isinstance(expr, BoundParameterRef):
            best = max(best, expr.param_index)
        for child in _children(expr):
            visit_expr(child)

    def visit_op(op: LogicalOperator) -> None:
        for expr, _ in _operator_exprs(op):
            visit_expr(expr)
        for child in op.children():
            visit_op(child)

    visit_op(plan)
    return best


# ---------------------------------------------------------------------------
# Optimizer rewrite verification
# ---------------------------------------------------------------------------


class RewriteVerifier:
    """Checks one optimizer filter rewrite against its snapshot.

    The optimizer reports each rule through :meth:`note_fire`; the
    conjunction/schema checks blame the rule(s) that fired during the
    rewrite being checked."""

    def __init__(self):
        self.fired: list[str] = []

    def note_fire(self, rule: str) -> None:
        self.fired.append(rule)

    def snapshot_filter(self, op: LogicalFilter):
        conjuncts: list[str] = []
        _collect_conjuncts(op, 0, conjuncts)
        return (
            list(op.output_names()),
            [t.name for t in op.output_types()],
            Counter(conjuncts),
        )

    def check_filter_rewrite(self, snapshot, result: LogicalOperator,
                             fired: list[str]) -> None:
        blame = ", ".join(sorted(set(fired))) or "(no rule fired)"
        names, type_names, before = snapshot
        new_names = list(result.output_names())
        new_types = [t.name for t in result.output_types()]
        if new_names != names or new_types != type_names:
            raise VerificationError(
                f"optimizer rule {blame}: schema-changing rewrite — "
                f"{list(zip(names, type_names))} became "
                f"{list(zip(new_names, new_types))}"
            )
        conjuncts: list[str] = []
        _collect_conjuncts(result, 0, conjuncts)
        after = Counter(conjuncts)
        missing = before - after
        invented = after - before
        if missing:
            raise VerificationError(
                f"optimizer rule {blame}: dropped predicate(s) "
                f"{sorted(missing.elements())}"
            )
        if invented:
            raise VerificationError(
                f"optimizer rule {blame}: invented predicate(s) "
                f"{sorted(invented.elements())}"
            )
        self._check_index_injections(result)

    def _check_index_injections(self, op: LogicalOperator) -> None:
        if isinstance(op, LogicalIndexScan):
            index = op.index
            if not index.matches(op.op_name, index.column, op.constant):
                raise VerificationError(
                    f"optimizer rule index_scan_injection: index "
                    f"{index.name} does not advertise {op.op_name!r} on "
                    f"column {index.column!r} (constant {op.constant!r})"
                )
        if isinstance(op, LogicalJoin) and op.index_probe is not None:
            index, probe_op, _ = op.index_probe
            if not index.matches(probe_op, index.column, None):
                raise VerificationError(
                    f"optimizer rule index_nl_join: index {index.name} "
                    f"does not advertise {probe_op!r} on column "
                    f"{index.column!r}"
                )
            if op.residual is None:
                raise VerificationError(
                    "optimizer rule index_nl_join: join lost its exact "
                    "recheck residual"
                )
        for child in op.children():
            self._check_index_injections(child)


# ---------------------------------------------------------------------------
# Chunk verification
# ---------------------------------------------------------------------------


def verify_chunk(op: LogicalOperator, chunk: DataChunk) -> None:
    """Check one operator output chunk's structural invariants."""
    label = op._explain_label()
    types = op.output_types()
    if len(chunk.vectors) != len(types):
        raise VerificationError(
            f"{label}: produced {len(chunk.vectors)} columns, schema "
            f"declares {len(types)}"
        )
    count = chunk.count
    for i, (vector, declared) in enumerate(zip(chunk.vectors, types)):
        if len(vector.data) != count:
            raise VerificationError(
                f"{label}: column {i} has {len(vector.data)} rows, "
                f"chunk cardinality is {count}"
            )
        if len(vector.validity) != len(vector.data):
            raise VerificationError(
                f"{label}: column {i} validity mask has "
                f"{len(vector.validity)} entries for {len(vector.data)} "
                f"rows"
            )
        if vector.validity.dtype != np.bool_:
            raise VerificationError(
                f"{label}: column {i} validity mask dtype is "
                f"{vector.validity.dtype}, expected bool"
            )
        _verify_vector_dtype(vector, declared, label, i)
        vector.verify_aux_fresh(f"{label} column {i}")


def _verify_vector_dtype(vector: Vector, declared: LogicalType,
                         label: str, i: int) -> None:
    if declared.name in ("ANY", "NULL") or vector.ltype.name == "NULL":
        return
    if vector.ltype.physical != declared.physical:
        raise VerificationError(
            f"{label}: column {i} is physically "
            f"{vector.ltype.physical}, schema declares "
            f"{declared.name} ({declared.physical})"
        )
    expected_dtype = _PHYSICAL_DTYPES[vector.ltype.physical]
    if vector.data.dtype != np.dtype(expected_dtype):
        raise VerificationError(
            f"{label}: column {i} array dtype {vector.data.dtype} does "
            f"not match physical type {vector.ltype.physical}"
        )


# ---------------------------------------------------------------------------
# Kernel-vs-fallback cross-check helpers
# ---------------------------------------------------------------------------


def _values_equal(a: Any, b: Any) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        # reduceat vs sequential summation may differ in rounding only.
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)
    try:
        if bool(a == b):
            return True
    except Exception:
        pass
    return repr(a) == repr(b)


def assert_vectors_match(actual: Vector, expected: Vector,
                         where: str) -> None:
    """Assert a kernel result vector equals its scalar-fallback result."""
    if len(actual) != len(expected):
        raise VerificationError(
            f"kernel/fallback divergence in {where}: kernel produced "
            f"{len(actual)} rows, fallback {len(expected)}"
        )
    for i in range(len(actual)):
        a = actual.value(i)
        b = expected.value(i)
        if not _values_equal(a, b):
            raise VerificationError(
                f"kernel/fallback divergence in {where}: row {i} — "
                f"kernel {a!r}, fallback {b!r}"
            )


def assert_rows_match(actual: list[tuple], expected: list[tuple],
                      where: str) -> None:
    if len(actual) != len(expected):
        raise VerificationError(
            f"kernel/fallback divergence in {where}: kernel produced "
            f"{len(actual)} rows, fallback {len(expected)}"
        )
    for i, (row_a, row_b) in enumerate(zip(actual, expected)):
        if len(row_a) != len(row_b) or not all(
            _values_equal(a, b) for a, b in zip(row_a, row_b)
        ):
            raise VerificationError(
                f"kernel/fallback divergence in {where}: row {i} — "
                f"kernel {row_a!r}, fallback {row_b!r}"
            )


def assert_join_pairs_match(kernel_pairs, fallback_pairs,
                            where: str) -> None:
    """Assert kernel join probe output equals the dict-probe fallback
    (exact: both emit probe-major pairs with build rows ascending)."""
    k_left, k_right = kernel_pairs
    f_left, f_right = fallback_pairs
    if len(k_left) != len(f_left) or not (
        np.array_equal(k_left, f_left) and np.array_equal(k_right, f_right)
    ):
        raise VerificationError(
            f"kernel/fallback divergence in {where}: kernel emitted "
            f"{len(k_left)} join pairs, fallback {len(f_left)} "
            f"(or pair order differs)"
        )


def assert_index_lists_match(actual: list[int], expected: list[int],
                             where: str) -> None:
    if list(map(int, actual)) != list(map(int, expected)):
        raise VerificationError(
            f"kernel/fallback divergence in {where}: kernel selected "
            f"rows {list(map(int, actual))[:16]}, fallback "
            f"{list(map(int, expected))[:16]}"
        )
