"""repro.berlinmod — the BerlinMOD-Hanoi benchmark (paper §5–§6).

Synthetic Hanoi districts and road network, the BerlinMOD trip generator
adapted to them, schema loading for both engines, the 17 benchmark
queries, and GeoJSON export.
"""

from .export import regions_to_geojson, trips_to_geojson, write_geojson
from .generator import Dataset, ScaleParams, Trip, TripGenerator, Vehicle, generate
from .network import RoadNetwork, make_network
from .queries import QUERIES, BenchmarkQuery, get_query
from .regions import District, make_districts
from .runner import (
    BenchmarkReport,
    CellResult,
    SCENARIOS,
    format_parallel_grid,
    prepare_scenario,
    run_benchmark,
    run_parallel_benchmark,
)
from .schema import (
    BASELINE_INDEX_DDL,
    create_baseline_indexes,
    load_dataset,
)

__all__ = [
    "BASELINE_INDEX_DDL",
    "BenchmarkReport",
    "CellResult",
    "SCENARIOS",
    "format_parallel_grid",
    "prepare_scenario",
    "run_benchmark",
    "run_parallel_benchmark",
    "BenchmarkQuery",
    "Dataset",
    "District",
    "QUERIES",
    "RoadNetwork",
    "ScaleParams",
    "Trip",
    "TripGenerator",
    "Vehicle",
    "create_baseline_indexes",
    "generate",
    "get_query",
    "load_dataset",
    "make_districts",
    "make_network",
    "regions_to_geojson",
    "trips_to_geojson",
    "write_geojson",
]
