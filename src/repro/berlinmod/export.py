"""GeoJSON export of trips and regions (paper §5.2, Figures 3–5).

The paper publishes GeoJSON exports for visualization in Kepler.gl/QGIS;
this module writes the same artifacts (FeatureCollections of trip
trajectories with timestamps and of district polygons).
"""

from __future__ import annotations

import json
from typing import Any

from .. import geo
from ..meos.timetypes import format_timestamptz
from .generator import Dataset


def _geometry_to_geojson(geom: geo.Geometry) -> dict[str, Any]:
    if isinstance(geom, geo.Point):
        return {"type": "Point", "coordinates": [geom.x, geom.y]}
    if isinstance(geom, geo.LineString):
        return {
            "type": "LineString",
            "coordinates": [[x, y] for x, y in geom.points],
        }
    if isinstance(geom, geo.Polygon):
        return {
            "type": "Polygon",
            "coordinates": [
                [[x, y] for x, y in ring] for ring in geom.rings()
            ],
        }
    if isinstance(geom, geo.MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [[p.x, p.y] for p in geom.geoms],
        }
    if isinstance(geom, geo.MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [
                [[x, y] for x, y in line.points] for line in geom.geoms
            ],
        }
    if isinstance(geom, geo.MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [
                [[[x, y] for x, y in ring] for ring in poly.rings()]
                for poly in geom.geoms
            ],
        }
    return {
        "type": "GeometryCollection",
        "geometries": [_geometry_to_geojson(g) for g in geom.geoms],
    }


def trips_to_geojson(dataset: Dataset) -> dict[str, Any]:
    """Trips as a FeatureCollection with per-vertex timestamps (the layout
    Kepler.gl's trip layer animates, Figure 3)."""
    features = []
    for trip in dataset.trips:
        instants = trip.trip.instants()
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        [inst.value.x, inst.value.y, 0,
                         inst.t // 1_000_000]
                        for inst in instants
                    ],
                },
                "properties": {
                    "trip_id": trip.trip_id,
                    "vehicle_id": trip.vehicle_id,
                    "day": trip.day.isoformat(),
                    "start": format_timestamptz(
                        trip.trip.start_timestamp()
                    ),
                    "end": format_timestamptz(trip.trip.end_timestamp()),
                },
            }
        )
    return {"type": "FeatureCollection", "features": features}


def regions_to_geojson(dataset: Dataset) -> dict[str, Any]:
    """District polygons as a FeatureCollection (Figure 4)."""
    features = [
        {
            "type": "Feature",
            "geometry": _geometry_to_geojson(d.geom),
            "properties": {
                "district_id": d.district_id,
                "name": d.name,
                "population": d.population,
            },
        }
        for d in dataset.districts
    ]
    return {"type": "FeatureCollection", "features": features}


def write_geojson(path: str, collection: dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(collection, handle)
