"""BerlinMOD-Hanoi trip generation (paper §5).

Follows the BerlinMOD methodology: vehicles get a home and a work node
sampled from district populations; every observation day they commute in
the morning and evening with stochastic leave times, plus additional
evening/weekend trips.  Movement follows shortest (fastest) paths over the
road network with per-edge speed perturbation and occasional stops.

Scale rules calibrated against the paper's Tables 2 and 3::

    vehicles = round(2000 * sqrt(SF))
    days     = round(28 * sqrt(SF)) + 2

which reproduces the published vehicle/day counts exactly (63/89/141/200
vehicles at SF 0.001–0.01; 5/6/8/11 days at SF 0.01–0.1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from datetime import date, timedelta

from .. import geo
from ..meos import Temporal
from ..meos.temporal import sequence_from_instants, trajectory
from ..meos.temporal.base import TInstant
from ..meos.temporal.ttypes import TGEOMPOINT
from ..meos.timetypes import USECS_PER_SEC, datetime_to_timestamptz
from .network import FREEWAY, RoadNetwork, make_network
from .regions import District, SRID, make_districts, population_weights

#: First observation day (a Monday, like BerlinMOD).
START_DAY = date(2020, 6, 1)

_VEHICLE_TYPES = [("passenger", 0.9), ("truck", 0.05), ("bus", 0.05)]
_MODELS = [
    "Toyota Vios", "Honda City", "Hyundai Accent", "Kia Morning",
    "Mazda 3", "VinFast Lux A", "Ford Ranger", "Mitsubishi Xpander",
]


@dataclass(frozen=True)
class ScaleParams:
    scale_factor: float
    vehicles: int
    days: int

    @classmethod
    def for_scale(cls, scale_factor: float) -> "ScaleParams":
        return cls(
            scale_factor,
            vehicles=round(2000 * math.sqrt(scale_factor)),
            days=round(28 * math.sqrt(scale_factor)) + 2,
        )


@dataclass
class Vehicle:
    vehicle_id: int
    licence: str
    vehicle_type: str
    model: str
    home_node: int
    work_node: int
    home_district: int
    work_district: int


@dataclass
class Trip:
    trip_id: int
    vehicle_id: int
    day: date
    seq_no: int
    source_node: int
    target_node: int
    trip: Temporal  # tgeompoint sequence
    traj: geo.Geometry


@dataclass
class Dataset:
    """A generated BerlinMOD-Hanoi dataset."""

    scale: ScaleParams
    districts: list[District]
    network: RoadNetwork
    vehicles: list[Vehicle]
    trips: list[Trip]
    seed: int

    def approx_size_bytes(self) -> int:
        """Approximate payload size (instants x 32 bytes, like MobilityDB's
        tgeompoint instant footprint) for the Table 2 'Size' column."""
        return sum(t.trip.num_instants() for t in self.trips) * 32


class TripGenerator:
    """Deterministic (seeded) BerlinMOD-Hanoi generator."""

    def __init__(self, scale_factor: float, seed: int = 4711,
                 spacing_m: float = 800.0):
        self.scale = ScaleParams.for_scale(scale_factor)
        self.seed = seed
        self.rng = random.Random(seed)
        self.districts = make_districts(seed)
        self.network = make_network(self.districts, seed,
                                    spacing_m=spacing_m)
        self._district_nodes = self._nodes_per_district()

    def _nodes_per_district(self) -> dict[int, list[int]]:
        """Nodes inside each district (fallback: nearest to centre)."""
        result: dict[int, list[int]] = {d.district_id: []
                                        for d in self.districts}
        for node in self.network.graph.nodes:
            x, y = self.network.node_position(node)
            for district in self.districts:
                if geo.point_in_polygon((x, y), district.geom):
                    result[district.district_id].append(node)
                    break
        for district in self.districts:
            if not result[district.district_id]:
                c = district.center
                result[district.district_id] = [
                    self.network.nearest_node(c.x, c.y)
                ]
        return result

    # -- vehicles -------------------------------------------------------------

    def make_vehicles(self) -> list[Vehicle]:
        weights = population_weights(self.districts)
        district_ids = [d.district_id for d in self.districts]
        vehicles = []
        for vid in range(1, self.scale.vehicles + 1):
            home_d = self.rng.choices(district_ids, weights)[0]
            work_d = self.rng.choices(district_ids, weights)[0]
            home = self.rng.choice(self._district_nodes[home_d])
            work = self.rng.choice(self._district_nodes[work_d])
            if home == work:
                work = self.rng.choice(list(self.network.graph.nodes))
            licence = (
                f"HN-{chr(65 + (vid * 7) % 26)}{chr(65 + (vid * 13) % 26)} "
                f"{1000 + vid}"
            )
            vtype = self.rng.choices(
                [t for t, _ in _VEHICLE_TYPES],
                [w for _, w in _VEHICLE_TYPES],
            )[0]
            vehicles.append(
                Vehicle(vid, licence, vtype, self.rng.choice(_MODELS),
                        home, work, home_d, work_d)
            )
        return vehicles

    # -- trips ----------------------------------------------------------------

    def generate(self) -> Dataset:
        vehicles = self.make_vehicles()
        trips: list[Trip] = []
        trip_id = 0
        for vehicle in vehicles:
            for day_offset in range(self.scale.days):
                day = START_DAY + timedelta(days=day_offset)
                for seq_no, (source, target, start_s) in enumerate(
                    self._day_plan(vehicle, day), start=1
                ):
                    trip = self._make_trip(source, target, day, start_s)
                    if trip is None:
                        continue
                    trip_id += 1
                    temporal, traj = trip
                    trips.append(
                        Trip(trip_id, vehicle.vehicle_id, day, seq_no,
                             source, target, temporal, traj)
                    )
        return Dataset(self.scale, self.districts, self.network,
                       vehicles, trips, self.seed)

    def _day_plan(self, vehicle: Vehicle, day: date):
        """Yield (source, target, start_seconds_of_day) trip plans."""
        rng = self.rng
        is_weekend = day.weekday() >= 5
        if not is_weekend:
            leave_home = _clamped_gauss(rng, 7.5 * 3600, 1800,
                                        5 * 3600, 10 * 3600)
            yield (vehicle.home_node, vehicle.work_node, leave_home)
            leave_work = _clamped_gauss(rng, 17.0 * 3600, 2700,
                                        14 * 3600, 20 * 3600)
            yield (vehicle.work_node, vehicle.home_node, leave_work)
            if rng.random() < 0.4:
                out = rng.choice(list(self.network.graph.nodes))
                start = _clamped_gauss(rng, 20 * 3600, 1800,
                                       19 * 3600, 21.5 * 3600)
                yield (vehicle.home_node, out, start)
                yield (out, vehicle.home_node, start + 3600)
        else:
            if rng.random() < 0.8:
                out = rng.choice(list(self.network.graph.nodes))
                start = _clamped_gauss(rng, 11 * 3600, 5400,
                                       8 * 3600, 15 * 3600)
                yield (vehicle.home_node, out, start)
                yield (out, vehicle.home_node, start + 2 * 3600)
            if rng.random() < 0.2:
                out = rng.choice(list(self.network.graph.nodes))
                start = _clamped_gauss(rng, 19 * 3600, 3600,
                                       17 * 3600, 21 * 3600)
                yield (vehicle.home_node, out, start)
                yield (out, vehicle.home_node, start + 5400)

    def _make_trip(
        self, source: int, target: int, day: date, start_seconds: float
    ) -> tuple[Temporal, geo.Geometry] | None:
        if source == target:
            return None
        path = self.network.shortest_path(source, target)
        if path is None or len(path) < 2:
            return None
        rng = self.rng
        from datetime import datetime, timezone

        t = datetime_to_timestamptz(
            datetime(day.year, day.month, day.day, tzinfo=timezone.utc)
        ) + int(start_seconds * USECS_PER_SEC)
        instants: list[TInstant] = []
        x, y = self.network.node_position(path[0])
        instants.append(_instant(x, y, t))
        for a, b, edge in self.network.path_edges(path):
            bx, by = self.network.node_position(b)
            ax, ay = self.network.node_position(a)
            speed = edge["speed"] * rng.uniform(0.8, 1.15)
            duration = edge["length"] / speed
            # Sample long edges at intermediate positions (GPS ticks).
            segments = max(1, int(edge["length"] // 400))
            for k in range(1, segments + 1):
                frac = k / segments
                t += int(duration / segments * USECS_PER_SEC)
                instants.append(
                    _instant(ax + (bx - ax) * frac, ay + (by - ay) * frac, t)
                )
            # Occasional stop at a junction (traffic light).
            if edge["category"] != FREEWAY and rng.random() < 0.15:
                t += int(rng.uniform(5, 40) * USECS_PER_SEC)
                instants.append(_instant(bx, by, t))
        temporal = sequence_from_instants(instants)
        return temporal, trajectory(temporal)


def _instant(x: float, y: float, t: int) -> TInstant:
    return TInstant(TGEOMPOINT, geo.Point(x, y, SRID), t)


def _clamped_gauss(rng: random.Random, mean: float, stddev: float,
                   low: float, high: float) -> float:
    return min(high, max(low, rng.gauss(mean, stddev)))


def generate(scale_factor: float, seed: int = 4711,
             spacing_m: float = 800.0) -> Dataset:
    """Generate a BerlinMOD-Hanoi dataset at the given scale factor."""
    return TripGenerator(scale_factor, seed, spacing_m).generate()
