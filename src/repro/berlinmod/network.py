"""Synthetic routable road network for BerlinMOD-Hanoi (paper §5.1).

The paper builds the network with osm2pgrouting from Hanoi OSM data; this
module synthesizes an equivalent routable topology offline: a jittered
grid of side streets, a sparser main-street overlay, and radial "freeway"
spokes into the centre — the three BerlinMOD road categories with their
speed limits.  Routing runs over networkx shortest paths weighted by
travel time.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

import networkx as nx

from .regions import District, SRID, bounding_box

#: BerlinMOD road categories and speed limits (km/h).
SIDE_STREET = "sidestreet"
MAIN_STREET = "mainstreet"
FREEWAY = "freeway"
SPEED_KMH = {SIDE_STREET: 30.0, MAIN_STREET: 50.0, FREEWAY: 70.0}


@dataclass
class RoadNetwork:
    """A routable road graph in planar metres."""

    graph: nx.Graph
    srid: int = SRID
    _node_list: list[int] = field(default_factory=list)

    def __post_init__(self):
        self._node_list = sorted(self.graph.nodes)

    def node_position(self, node: int) -> tuple[float, float]:
        data = self.graph.nodes[node]
        return (data["x"], data["y"])

    def nearest_node(self, x: float, y: float) -> int:
        best = None
        best_d2 = math.inf
        for node in self._node_list:
            data = self.graph.nodes[node]
            d2 = (data["x"] - x) ** 2 + (data["y"] - y) ** 2
            if d2 < best_d2:
                best_d2 = d2
                best = node
        return best

    def shortest_path(self, source: int, target: int) -> list[int] | None:
        """Fastest path (travel-time weighted); None when unreachable."""
        try:
            return nx.shortest_path(
                self.graph, source, target, weight="seconds"
            )
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def path_edges(self, path: list[int]):
        for a, b in zip(path, path[1:]):
            yield a, b, self.graph.edges[a, b]

    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    def num_edges(self) -> int:
        return self.graph.number_of_edges()


def _edge_attrs(category: str, x0, y0, x1, y1) -> dict:
    length = math.hypot(x1 - x0, y1 - y0)
    speed_ms = SPEED_KMH[category] / 3.6
    return {
        "category": category,
        "length": length,
        "speed": speed_ms,
        "seconds": length / speed_ms,
    }


def make_network(
    districts: list[District],
    seed: int = 4711,
    spacing_m: float = 800.0,
) -> RoadNetwork:
    """Build the synthetic Hanoi road network.

    ``spacing_m`` controls grid density; the default yields a network of a
    few hundred nodes — enough route diversity for the benchmark while
    keeping offline generation fast.
    """
    rng = random.Random(seed * 31 + 7)
    xmin, ymin, xmax, ymax = bounding_box(districts)
    graph = nx.Graph()

    cols = int((xmax - xmin) / spacing_m) + 1
    rows = int((ymax - ymin) / spacing_m) + 1

    def node_id(i: int, j: int) -> int:
        return j * cols + i

    # Grid nodes with positional jitter (curved street approximation).
    for j in range(rows):
        for i in range(cols):
            x = xmin + i * spacing_m + rng.uniform(-0.2, 0.2) * spacing_m
            y = ymin + j * spacing_m + rng.uniform(-0.2, 0.2) * spacing_m
            graph.add_node(node_id(i, j), x=x, y=y)

    # Side streets: 4-connected grid with some removals for irregularity.
    for j in range(rows):
        for i in range(cols):
            a = node_id(i, j)
            for di, dj in ((1, 0), (0, 1)):
                ni, nj = i + di, j + dj
                if ni >= cols or nj >= rows:
                    continue
                if rng.random() < 0.06:
                    continue  # missing street segment
                b = node_id(ni, nj)
                ax, ay = graph.nodes[a]["x"], graph.nodes[a]["y"]
                bx, by = graph.nodes[b]["x"], graph.nodes[b]["y"]
                graph.add_edge(a, b, **_edge_attrs(SIDE_STREET, ax, ay,
                                                   bx, by))

    # Main streets: every third row/column upgrades to 50 km/h.
    for j in range(0, rows, 3):
        for i in range(cols - 1):
            a, b = node_id(i, j), node_id(i + 1, j)
            if graph.has_edge(a, b):
                _upgrade(graph, a, b, MAIN_STREET)
    for i in range(0, cols, 3):
        for j in range(rows - 1):
            a, b = node_id(i, j), node_id(i, j + 1)
            if graph.has_edge(a, b):
                _upgrade(graph, a, b, MAIN_STREET)

    # Freeways: radial spokes from the rim toward the centre node.
    center = min(
        graph.nodes,
        key=lambda n: graph.nodes[n]["x"] ** 2 + graph.nodes[n]["y"] ** 2,
    )
    rim_nodes = [
        node_id(i, j)
        for i, j in (
            (0, 0), (cols - 1, 0), (0, rows - 1), (cols - 1, rows - 1),
            (cols // 2, 0), (cols // 2, rows - 1), (0, rows // 2),
            (cols - 1, rows // 2),
        )
    ]
    for rim in rim_nodes:
        path = nx.shortest_path(graph, rim, center, weight="length")
        for a, b in zip(path, path[1:]):
            _upgrade(graph, a, b, FREEWAY)

    # Keep the largest connected component (grid removals may split it).
    largest = max(nx.connected_components(graph), key=len)
    graph = graph.subgraph(largest).copy()
    return RoadNetwork(graph)


def _upgrade(graph: nx.Graph, a: int, b: int, category: str) -> None:
    data = graph.edges[a, b]
    if SPEED_KMH[category] <= SPEED_KMH[data["category"]]:
        return
    speed_ms = SPEED_KMH[category] / 3.6
    data["category"] = category
    data["speed"] = speed_ms
    data["seconds"] = data["length"] / speed_ms
