"""The 17 BerlinMOD range queries (paper §6.3, Figure 12).

The SQL follows the BerlinMOD benchmark as adapted by the paper; queries
3, 5 (both variants), 7 and 10 match the paper's listings verbatim up to
the ``Licence`` spelling of the BerlinMOD schema.  Every query runs
unchanged on both engines (MobilityDuck/quack and the MobilityDB/pgsim
baseline).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkQuery:
    number: int
    question: str
    sql: str
    #: optional MobilityDuck-optimized variant (the §6.3 *_gs rewrite)
    optimized_sql: str | None = None


QUERIES: list[BenchmarkQuery] = [
    BenchmarkQuery(
        1,
        "What are the models of the vehicles with licence plate numbers "
        "from Licences1?",
        """
        SELECT DISTINCT l.Licence, v.Model
        FROM Vehicles v, Licences1 l
        WHERE v.Licence = l.Licence
        ORDER BY l.Licence
        """,
    ),
    BenchmarkQuery(
        2,
        "How many vehicles exist that are passenger cars?",
        """
        SELECT COUNT(*) AS PassengerCars
        FROM Vehicles v
        WHERE v.VehicleType = 'passenger'
        """,
    ),
    BenchmarkQuery(
        3,
        "Where have the vehicles with licences from Licences1 been at "
        "each of the instants from Instants1?",
        """
        SELECT DISTINCT l.Licence, i.InstantId, i.Instant AS Instant,
          valueAtTimestamp(t.Trip, i.Instant)::GEOMETRY AS Pos
        FROM Trips t, Licences1 l, Instants1 i
        WHERE t.VehicleId = l.VehicleId AND
          t.Trip::tstzspan @> i.Instant
        ORDER BY l.Licence, i.InstantId
        """,
    ),
    BenchmarkQuery(
        4,
        "Which licence plate numbers belong to vehicles that have passed "
        "the points from Points?",
        """
        SELECT DISTINCT p.PointId, v.Licence
        FROM Trips t, Vehicles v, Points1 p
        WHERE t.VehicleId = v.VehicleId AND
          t.Trip && stbox(p.Geom::WKB_BLOB) AND
          ST_Intersects(trajectory(t.Trip)::GEOMETRY, p.Geom)
        ORDER BY p.PointId, v.Licence
        """,
    ),
    BenchmarkQuery(
        5,
        "What is the minimum distance between places, where a vehicle "
        "with a licence from Licences1 and a vehicle with a licence from "
        "Licences2 have been?",
        """
        WITH Temp1(Licence1, Trajs) AS (
          SELECT l1.Licence,
            ST_Collect(list(trajectory(t1.Trip)::GEOMETRY))
          FROM Trips t1, Licences1 l1
          WHERE t1.VehicleId = l1.VehicleId
          GROUP BY l1.Licence ),
        Temp2(Licence2, Trajs) AS (
          SELECT l2.Licence,
            ST_Collect(list(trajectory(t2.Trip)::GEOMETRY))
          FROM Trips t2, Licences2 l2
          WHERE t2.VehicleId = l2.VehicleId
          GROUP BY l2.Licence )
        SELECT Licence1, Licence2,
          ST_Distance(t1.Trajs, t2.Trajs) AS MinDist
        FROM Temp1 t1, Temp2 t2
        ORDER BY Licence1, Licence2
        """,
        optimized_sql="""
        WITH Temp1(Licence1, Trajs) AS (
          SELECT l1.Licence,
            collect_gs(list(trajectory_gs(t1.Trip)))
          FROM Trips t1, Licences1 l1
          WHERE t1.VehicleId = l1.VehicleId
          GROUP BY l1.Licence ),
        Temp2(Licence2, Trajs) AS (
          SELECT l2.Licence,
            collect_gs(list(trajectory_gs(t2.Trip)))
          FROM Trips t2, Licences2 l2
          WHERE t2.VehicleId = l2.VehicleId
          GROUP BY l2.Licence )
        SELECT Licence1, Licence2,
          distance_gs(t1.Trajs, t2.Trajs) AS MinDist
        FROM Temp1 t1, Temp2 t2
        ORDER BY Licence1, Licence2
        """,
    ),
    BenchmarkQuery(
        6,
        "What are the pairs of trucks that have ever been as close as "
        "10m or less to each other?",
        """
        SELECT DISTINCT v1.Licence AS Licence1, v2.Licence AS Licence2
        FROM Trips t1, Vehicles v1, Trips t2, Vehicles v2
        WHERE t1.VehicleId = v1.VehicleId AND
          t2.VehicleId = v2.VehicleId AND
          t1.VehicleId < t2.VehicleId AND
          v1.VehicleType = 'truck' AND v2.VehicleType = 'truck' AND
          t2.Trip && expandSpace(t1.Trip::STBOX, 10.0) AND
          eDwithin(t1.Trip, t2.Trip, 10.0)
        ORDER BY Licence1, Licence2
        """,
    ),
    BenchmarkQuery(
        7,
        "What are the licence plate numbers of the passenger cars that "
        "have reached the points from Points first of all passenger cars "
        "during the complete observation period?",
        """
        WITH Timestamps AS (
          SELECT DISTINCT v.Licence, p.PointId, p.Geom,
            MIN(startTimestamp(atValues(t.Trip,
              p.Geom::WKB_BLOB))) AS Instant
          FROM Trips t, Vehicles v, Points1 p
          WHERE t.VehicleId = v.VehicleId AND
            v.VehicleType = 'passenger' AND
            t.Trip && stbox(p.Geom::WKB_BLOB) AND
            ST_Intersects(trajectory(t.Trip)::GEOMETRY, p.Geom)
          GROUP BY v.Licence, p.PointId, p.Geom )
        SELECT t1.Licence, t1.PointId, t1.Geom, t1.Instant
        FROM Timestamps t1
        WHERE t1.Instant <= ALL (
          SELECT t2.Instant
          FROM Timestamps t2
          WHERE t1.PointId = t2.PointId )
        ORDER BY t1.PointId, t1.Licence
        """,
    ),
    BenchmarkQuery(
        8,
        "What are the overall travelled distances of the vehicles with "
        "licences from Licences1 during the periods from Periods1?",
        """
        SELECT l.Licence, p.PeriodId, p.Period,
          SUM(length(atTime(t.Trip, p.Period))) AS Dist
        FROM Trips t, Licences1 l, Periods1 p
        WHERE t.VehicleId = l.VehicleId AND
          t.Trip && p.Period
        GROUP BY l.Licence, p.PeriodId, p.Period
        ORDER BY l.Licence, p.PeriodId
        """,
    ),
    BenchmarkQuery(
        9,
        "What is the longest distance that was travelled by a vehicle "
        "during each of the periods from Periods?",
        """
        WITH Distances AS (
          SELECT p.PeriodId, p.Period, t.VehicleId,
            SUM(length(atTime(t.Trip, p.Period))) AS Dist
          FROM Trips t, Periods p
          WHERE t.Trip && p.Period
          GROUP BY p.PeriodId, p.Period, t.VehicleId )
        SELECT PeriodId, MAX(Dist) AS MaxDist
        FROM Distances
        GROUP BY PeriodId
        ORDER BY PeriodId
        """,
    ),
    BenchmarkQuery(
        10,
        "When and where did the vehicles with licence plate numbers from "
        "Licences1 meet other vehicles (distance < 3m) and what are the "
        "latter licences?",
        """
        WITH Temp AS (
          SELECT l1.Licence AS Licence1,
            t2.VehicleId AS Car2Id,
            whenTrue(tDwithin(t1.Trip, t2.Trip, 3.0)) AS Periods
          FROM Trips t1, Licences1 l1, Trips t2, Vehicles v
          WHERE t1.VehicleId = l1.VehicleId AND
            t2.VehicleId = v.VehicleId AND
            t1.VehicleId <> t2.VehicleId AND
            t2.Trip && expandSpace(t1.Trip::STBOX, 3.0) )
        SELECT Licence1, Car2Id, Periods
        FROM Temp
        WHERE Periods IS NOT NULL
        ORDER BY Licence1, Car2Id
        """,
    ),
    BenchmarkQuery(
        11,
        "Which vehicles passed a point from Points1 at one of the "
        "instants from Instants1?",
        """
        SELECT DISTINCT p.PointId, i.InstantId, v.Licence
        FROM Trips t, Vehicles v, Points1 p, Instants1 i
        WHERE t.VehicleId = v.VehicleId AND
          t.Trip::tstzspan @> i.Instant AND
          ST_DWithin(valueAtTimestamp(t.Trip, i.Instant)::GEOMETRY,
                     p.Geom, 30.0)
        ORDER BY p.PointId, i.InstantId, v.Licence
        """,
    ),
    BenchmarkQuery(
        12,
        "Which vehicles met at a point from Points1 at an instant from "
        "Instants1?",
        """
        SELECT DISTINCT p.PointId, i.InstantId,
          v1.Licence AS Licence1, v2.Licence AS Licence2
        FROM Trips t1, Vehicles v1, Points1 p, Instants1 i,
          Trips t2, Vehicles v2
        WHERE t1.VehicleId = v1.VehicleId AND
          t1.Trip::tstzspan @> i.Instant AND
          ST_DWithin(valueAtTimestamp(t1.Trip, i.Instant)::GEOMETRY,
                     p.Geom, 30.0) AND
          t2.VehicleId = v2.VehicleId AND
          t1.VehicleId < t2.VehicleId AND
          t2.Trip::tstzspan @> i.Instant AND
          ST_DWithin(valueAtTimestamp(t2.Trip, i.Instant)::GEOMETRY,
                     p.Geom, 30.0)
        ORDER BY p.PointId, i.InstantId, Licence1, Licence2
        """,
    ),
    BenchmarkQuery(
        13,
        "Which vehicles travelled within one of the regions from "
        "Regions1 during the periods from Periods1?",
        """
        SELECT DISTINCT r.RegionId, p.PeriodId, v.Licence
        FROM Trips t, Vehicles v, Regions1 r, Periods1 p
        WHERE t.VehicleId = v.VehicleId AND
          t.Trip && p.Period AND
          eIntersects(atTime(t.Trip, p.Period), r.Geom)
        ORDER BY r.RegionId, p.PeriodId, v.Licence
        """,
    ),
    BenchmarkQuery(
        14,
        "Which vehicles travelled within one of the regions from "
        "Regions1 at one of the instants from Instants1?",
        """
        SELECT DISTINCT r.RegionId, i.InstantId, v.Licence
        FROM Trips t, Vehicles v, Regions1 r, Instants1 i
        WHERE t.VehicleId = v.VehicleId AND
          t.Trip::tstzspan @> i.Instant AND
          ST_Contains(r.Geom, valueAtTimestamp(t.Trip, i.Instant)::GEOMETRY)
        ORDER BY r.RegionId, i.InstantId, v.Licence
        """,
    ),
    BenchmarkQuery(
        15,
        "Which vehicles passed a point from Points1 during a period from "
        "Periods1?",
        """
        SELECT DISTINCT p.PointId, pr.PeriodId, v.Licence
        FROM Trips t, Vehicles v, Points1 p, Periods1 pr
        WHERE t.VehicleId = v.VehicleId AND
          t.Trip && pr.Period AND
          eIntersects(atTime(t.Trip, pr.Period), p.Geom)
        ORDER BY p.PointId, pr.PeriodId, v.Licence
        """,
    ),
    BenchmarkQuery(
        16,
        "List the pairs of licences from Licences1 and Licences2 where "
        "the corresponding vehicles are both present within a region from "
        "Regions1 during a period from Periods1, but do not meet each "
        "other there and then.",
        """
        SELECT DISTINCT r.RegionId, pr.PeriodId,
          l1.Licence AS Licence1, l2.Licence AS Licence2
        FROM Trips t1, Licences1 l1, Periods1 pr, Regions1 r,
          Trips t2, Licences2 l2
        WHERE t1.VehicleId = l1.VehicleId AND
          t1.Trip && pr.Period AND
          eIntersects(atTime(t1.Trip, pr.Period), r.Geom) AND
          t2.VehicleId = l2.VehicleId AND
          t1.VehicleId <> t2.VehicleId AND
          t2.Trip && pr.Period AND
          eIntersects(atTime(t2.Trip, pr.Period), r.Geom) AND
          NOT eDwithin(atTime(t1.Trip, pr.Period),
                       atTime(t2.Trip, pr.Period), 3.0)
        ORDER BY r.RegionId, pr.PeriodId, Licence1, Licence2
        """,
    ),
    BenchmarkQuery(
        17,
        "Which point(s) from Points have been visited by a maximum "
        "number of different vehicles?",
        """
        WITH PointCount AS (
          SELECT p.PointId, COUNT(DISTINCT t.VehicleId) AS Hits
          FROM Trips t, Points p
          WHERE ST_DWithin(t.Traj, p.Geom, 1.0)
          GROUP BY p.PointId )
        SELECT PointId, Hits
        FROM PointCount
        WHERE Hits = (SELECT MAX(Hits) FROM PointCount)
        ORDER BY PointId
        """,
    ),
]


def get_query(number: int) -> BenchmarkQuery:
    for query in QUERIES:
        if query.number == number:
            return query
    raise KeyError(f"no BerlinMOD query {number}")
