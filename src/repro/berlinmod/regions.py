"""Hanoi administrative regions for BerlinMOD-Hanoi (paper §5).

The paper extracts districts from OpenStreetMap; offline we synthesize a
deterministic district map that preserves what the benchmark needs:
named districts with realistic relative populations (for home/work
sampling) and polygon boundaries (for region queries and the §6.2 use
cases).  Coordinates are planar metres in a local grid (SRID 3405,
VN-2000 / UTM 48N-like), with the city centre at (0, 0).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .. import geo

SRID = 3405

#: (name, population, centre_x_km, centre_y_km, approx_radius_km)
#: Populations are approximate 2019 census values for Hanoi's urban
#: districts; layout mimics their actual relative arrangement.
_DISTRICTS = [
    ("Ba Dinh", 221_893, -1.5, 1.5, 2.0),
    ("Hoan Kiem", 135_618, 0.5, 0.5, 1.5),
    ("Tay Ho", 160_495, -0.5, 4.5, 2.6),
    ("Long Bien", 322_549, 4.5, 1.5, 3.4),
    ("Cau Giay", 292_536, -4.5, 0.5, 2.4),
    ("Dong Da", 371_606, -1.5, -1.0, 2.0),
    ("Hai Ba Trung", 303_586, 0.5, -1.8, 2.0),
    ("Hoang Mai", 506_347, 1.0, -5.0, 3.2),
    ("Thanh Xuan", 293_292, -3.0, -3.4, 2.2),
    ("Ha Dong", 382_637, -6.5, -6.0, 3.4),
    ("Bac Tu Liem", 333_300, -6.5, 3.5, 3.2),
    ("Nam Tu Liem", 236_700, -7.5, -1.5, 3.0),
]


@dataclass(frozen=True)
class District:
    district_id: int
    name: str
    population: int
    geom: geo.Polygon

    @property
    def center(self) -> geo.Point:
        return self.geom.centroid()


def _district_polygon(
    rng: random.Random, cx_km: float, cy_km: float, radius_km: float
) -> geo.Polygon:
    """An irregular convex-ish polygon around a centre (metres)."""
    cx, cy = cx_km * 1000.0, cy_km * 1000.0
    radius = radius_km * 1000.0
    vertices = []
    count = rng.randint(8, 12)
    for k in range(count):
        angle = 2 * math.pi * k / count
        r = radius * rng.uniform(0.72, 1.0)
        vertices.append(
            (cx + r * math.cos(angle), cy + r * math.sin(angle))
        )
    return geo.Polygon(vertices, srid=SRID)


def make_districts(seed: int = 4711) -> list[District]:
    """Deterministic district list (same seed -> same map)."""
    rng = random.Random(seed)
    districts = []
    for i, (name, population, cx, cy, radius) in enumerate(_DISTRICTS):
        districts.append(
            District(
                district_id=i + 1,
                name=name,
                population=population,
                geom=_district_polygon(rng, cx, cy, radius),
            )
        )
    return districts


def population_weights(districts: list[District]) -> list[float]:
    total = sum(d.population for d in districts)
    return [d.population / total for d in districts]


def bounding_box(districts: list[District]) -> tuple[float, float, float, float]:
    xmin = ymin = math.inf
    xmax = ymax = -math.inf
    for district in districts:
        bx0, by0, bx1, by1 = district.geom.bounds()
        xmin = min(xmin, bx0)
        ymin = min(ymin, by0)
        xmax = max(xmax, bx1)
        ymax = max(ymax, by1)
    return (xmin, ymin, xmax, ymax)
