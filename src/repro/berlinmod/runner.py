"""Programmatic BerlinMOD-Hanoi benchmark runner (the Figure 12 harness).

Gives downstream users the paper's evaluation as an API::

    from repro.berlinmod import run_benchmark

    report = run_benchmark(scale_factors=[0.001], queries=[1, 3, 10])
    print(report.format_grid())

Three scenarios are prepared per scale factor — ``mobilityduck`` (columnar
engine + extension), ``mobilitydb`` (row baseline, no indexes), and
``mobilitydb_idx`` (row baseline + GiST/B-tree indexes) — and every query
is checked to return the same number of rows on each before its runtime
is recorded.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from .. import core
from .generator import Dataset, generate
from .queries import QUERIES, get_query
from .schema import create_baseline_indexes, load_dataset

SCENARIOS = ("mobilityduck", "mobilitydb", "mobilitydb_idx")


@dataclass(frozen=True)
class CellResult:
    """One (scale factor, query, scenario) measurement."""

    scale_factor: float
    query: int
    scenario: str
    seconds: float
    rows: int
    #: query-statistics snapshot (``QueryStatistics.to_dict()``), when
    #: the run captured one
    stats: dict | None = None

    def to_dict(self) -> dict:
        return {
            "scale_factor": self.scale_factor,
            "query": self.query,
            "scenario": self.scenario,
            "seconds": self.seconds,
            "rows": self.rows,
            "stats": self.stats,
        }


@dataclass
class BenchmarkReport:
    """All measurements of one benchmark run."""

    cells: list[CellResult] = field(default_factory=list)

    def get(self, scale_factor: float, query: int,
            scenario: str) -> CellResult | None:
        for cell in self.cells:
            if (cell.scale_factor == scale_factor
                    and cell.query == query
                    and cell.scenario == scenario):
                return cell
        return None

    def scale_factors(self) -> list[float]:
        return sorted({c.scale_factor for c in self.cells})

    def queries(self) -> list[int]:
        return sorted({c.query for c in self.cells})

    def win_ratio(self, against: str = "mobilitydb") -> float:
        """Fraction of cells where mobilityduck beats ``against``."""
        wins = total = 0
        for sf in self.scale_factors():
            for q in self.queries():
                duck = self.get(sf, q, "mobilityduck")
                other = self.get(sf, q, against)
                if duck is None or other is None:
                    continue
                total += 1
                if duck.seconds < other.seconds:
                    wins += 1
        return wins / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "benchmark": "berlinmod-hanoi",
            "scale_factors": self.scale_factors(),
            "queries": self.queries(),
            "win_ratio_vs_mobilitydb": self.win_ratio(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, path: str | None = None, indent: int = 2) -> str:
        """Serialize the report; also write it to ``path`` when given."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text

    def format_grid(self) -> str:
        lines = [
            "BerlinMOD-Hanoi runtimes in seconds "
            "(duck | mobilitydb | mobilitydb+idx):"
        ]
        for sf in self.scale_factors():
            lines.append(f"  SF {sf}:")
            for q in self.queries():
                duck = self.get(sf, q, "mobilityduck")
                plain = self.get(sf, q, "mobilitydb")
                idx = self.get(sf, q, "mobilitydb_idx")
                parts = [
                    f"{c.seconds:8.3f}" if c else "       -"
                    for c in (duck, plain, idx)
                ]
                rows = duck.rows if duck else 0
                lines.append(
                    f"   Q{q:<3} {parts[0]} | {parts[1]} | {parts[2]}"
                    f"  ({rows} rows)"
                )
        lines.append(
            f"mobilityduck wins vs unindexed baseline: "
            f"{self.win_ratio():.0%}"
        )
        return "\n".join(lines)


def prepare_scenario(name: str, dataset: Dataset):
    """Load a dataset into one scenario's engine; returns a connection."""
    if name == "mobilityduck":
        con = core.connect()
        load_dataset(con, dataset)
    elif name == "mobilitydb":
        con = core.connect_baseline()
        load_dataset(con, dataset)
    elif name == "mobilitydb_idx":
        con = core.connect_baseline()
        load_dataset(con, dataset)
        create_baseline_indexes(con)
    else:
        raise ValueError(f"unknown scenario {name!r}")
    return con


def _export_cell_trace(con, trace_dir: str, label: str) -> None:
    """Write one executed query's timeline into ``trace_dir``."""
    export = getattr(con, "export_trace", None)
    if export is None or getattr(con, "last_query_stats", None) is None:
        return
    os.makedirs(trace_dir, exist_ok=True)
    export(os.path.join(trace_dir, f"{label}.trace.json"))


def run_benchmark(
    scale_factors: list[float] | None = None,
    queries: list[int] | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
    seed: int = 4711,
    check_rows: bool = True,
    profile_path: str | None = None,
    trace_dir: str | None = None,
) -> BenchmarkReport:
    """Run the benchmark grid and return a report.

    ``check_rows`` asserts that all scenarios agree on each query's row
    count (correctness before performance).  ``profile_path`` writes the
    full report — including per-cell query-statistics snapshots — as a
    JSON profile artifact (the Figure 12 companion file).  ``trace_dir``
    additionally writes one Chrome trace-event JSON per cell
    (``sf<sf>_q<n>_<scenario>.trace.json``, Perfetto-loadable)."""
    report = BenchmarkReport()
    for sf in scale_factors or [0.001]:
        dataset = generate(sf, seed=seed)
        connections = {
            name: prepare_scenario(name, dataset) for name in scenarios
        }
        for number in queries or [q.number for q in QUERIES]:
            query = get_query(number)
            counts = {}
            for name, con in connections.items():
                start = time.perf_counter()
                result = con.execute(query.sql)
                elapsed = time.perf_counter() - start
                counts[name] = len(result)
                stats = getattr(con, "last_query_stats", None)
                report.cells.append(
                    CellResult(
                        sf, number, name, elapsed, len(result),
                        stats=stats.to_dict() if stats is not None else None,
                    )
                )
                if trace_dir is not None:
                    _export_cell_trace(
                        con, trace_dir, f"sf{sf}_q{number}_{name}"
                    )
            if check_rows and len(set(counts.values())) != 1:
                raise AssertionError(
                    f"Q{number} at SF {sf}: row counts diverge {counts}"
                )
    if profile_path is not None:
        report.to_json(profile_path)
    return report


def run_parallel_benchmark(
    scale_factor: float = 0.001,
    queries: list[int] | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 4711,
    repeats: int = 3,
    profile_path: str | None = None,
    trace_dir: str | None = None,
) -> dict:
    """Measure the morsel-parallel scaling curve on the columnar engine.

    One ``mobilityduck`` connection runs each query at every worker count
    (reconfigured with ``SET threads = N`` between legs, so the same pool
    plumbing a user would hit is exercised); the best of ``repeats`` runs
    is recorded per leg, with the speedup relative to the serial leg.
    Row counts must agree across legs — a parallel plan that changes the
    answer fails the benchmark before any timing is reported.

    Note on expectations: the workers are Python threads, so wall-clock
    speedup requires NumPy kernels releasing the GIL *and* free CPU
    cores; on a single-core host the curve is flat and the benchmark
    only demonstrates correctness and overhead."""
    dataset = generate(scale_factor, seed=seed)
    con = prepare_scenario("mobilityduck", dataset)
    legs: list[dict] = []
    for number in queries or [4, 7]:
        query = get_query(number)
        serial_seconds: float | None = None
        rows_expected: int | None = None
        for workers in worker_counts:
            con.execute(f"SET threads = {workers}")
            best = None
            rows = 0
            stats_dict = None
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                result = con.execute(query.sql)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best:
                    best = elapsed
                    rows = len(result)
                    stats = getattr(con, "last_query_stats", None)
                    stats_dict = (
                        stats.to_dict() if stats is not None else None
                    )
            if rows_expected is None:
                rows_expected = rows
            elif rows != rows_expected:
                raise AssertionError(
                    f"Q{number}: {workers}-worker run returned {rows} "
                    f"rows, serial returned {rows_expected}"
                )
            if workers == 1:
                serial_seconds = best
            if trace_dir is not None:
                # the last repeat's timeline (last_query_stats is the
                # most recent execute)
                _export_cell_trace(
                    con, trace_dir, f"q{number}_w{workers}"
                )
            legs.append({
                "query": number,
                "workers": workers,
                "seconds": best,
                "rows": rows,
                "speedup_vs_serial": (
                    serial_seconds / best
                    if serial_seconds and best else None
                ),
                "stats": stats_dict,
            })
    con.execute("SET threads = 1")
    out = {
        "benchmark": "berlinmod-hanoi-parallel",
        "scale_factor": scale_factor,
        "worker_counts": list(worker_counts),
        "legs": legs,
    }
    if profile_path is not None:
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(out, indent=2, sort_keys=True))
    return out


def format_parallel_grid(report: dict) -> str:
    """One line per (query, workers) leg of a parallel scaling report."""
    lines = ["Morsel-parallel scaling (best-of-N seconds):"]
    for leg in report["legs"]:
        speedup = leg["speedup_vs_serial"]
        lines.append(
            f"  Q{leg['query']:<3} workers={leg['workers']:<2} "
            f"{leg['seconds']:8.3f}s"
            + (f"  x{speedup:.2f}" if speedup else "")
            + f"  ({leg['rows']} rows)"
        )
    return "\n".join(lines)
