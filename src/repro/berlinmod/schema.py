"""Loading a BerlinMOD-Hanoi dataset into a database (quack or pgsim).

Creates the benchmark schema — ``Vehicles``, ``Trips``, ``Licences``,
``Instants``, ``Periods``, ``Points``, ``Regions`` (plus the ``*1``/``*2``
samples the queries reference and the ``hanoi`` district table) — and
bulk-loads the generated data.  Rows are appended through the storage
layer directly (the benchmark's loading phase is excluded from timing in
the paper, §6.3.1).
"""

from __future__ import annotations

import random

from .. import geo
from ..meos import Span
from ..meos.basetypes import TSTZ
from ..meos.timetypes import USECS_PER_SEC
from .generator import Dataset

#: Number of rows in the full parameter tables and in the *1/*2 samples
#: (BerlinMOD uses 10-element samples; the paper keeps that, §6.3).
PARAM_ROWS = 100
SAMPLE_ROWS = 10


def load_dataset(con, dataset: Dataset, with_trajectories: bool = True) -> None:
    """Create and populate the benchmark schema on ``con``.

    Works identically against quack and pgsim connections: tables are
    created through SQL DDL and populated through the catalog.
    """
    rng = random.Random(dataset.seed * 977 + 13)
    catalog = con.database.catalog

    con.execute(
        """
        CREATE OR REPLACE TABLE Vehicles(
            VehicleId INTEGER, Licence VARCHAR, VehicleType VARCHAR,
            Model VARCHAR
        )
        """
    )
    catalog.get_table("Vehicles").append_rows(
        [
            (v.vehicle_id, v.licence, v.vehicle_type, v.model)
            for v in dataset.vehicles
        ]
    )

    con.execute(
        """
        CREATE OR REPLACE TABLE Trips(
            TripId INTEGER, VehicleId INTEGER, Day DATE, SeqNo INTEGER,
            SourceNode BIGINT, TargetNode BIGINT, Trip TGEOMPOINT,
            Traj GEOMETRY
        )
        """
    )
    epoch = __import__("datetime").date(1970, 1, 1)
    catalog.get_table("Trips").append_rows(
        [
            (
                t.trip_id, t.vehicle_id, (t.day - epoch).days, t.seq_no,
                t.source_node, t.target_node, t.trip, t.traj,
            )
            for t in dataset.trips
        ]
    )

    # -- hanoi districts (the §6.2 use-case table) ------------------------------
    con.execute(
        """
        CREATE OR REPLACE TABLE hanoi(
            DistrictId INTEGER, MunicipalityName VARCHAR,
            Population BIGINT, Geom GEOMETRY
        )
        """
    )
    catalog.get_table("hanoi").append_rows(
        [
            (d.district_id, d.name, d.population, d.geom)
            for d in dataset.districts
        ]
    )

    # -- parameter tables ----------------------------------------------------------
    con.execute(
        "CREATE OR REPLACE TABLE Licences("
        "LicenceId INTEGER, Licence VARCHAR, VehicleId INTEGER)"
    )
    licence_rows = [
        (i + 1, v.licence, v.vehicle_id)
        for i, v in enumerate(dataset.vehicles)
    ]
    catalog.get_table("Licences").append_rows(licence_rows)

    shuffled = list(licence_rows)
    rng.shuffle(shuffled)
    for name, sample in (
        ("Licences1", shuffled[:SAMPLE_ROWS]),
        ("Licences2", shuffled[SAMPLE_ROWS : 2 * SAMPLE_ROWS]),
    ):
        con.execute(
            f"CREATE OR REPLACE TABLE {name}("
            "LicenceId INTEGER, Licence VARCHAR, VehicleId INTEGER)"
        )
        catalog.get_table(name).append_rows(sample)

    # Observation period bounds.
    t_lo = min(t.trip.start_timestamp() for t in dataset.trips)
    t_hi = max(t.trip.end_timestamp() for t in dataset.trips)

    con.execute(
        "CREATE OR REPLACE TABLE Instants("
        "InstantId INTEGER, Instant TIMESTAMPTZ)"
    )
    instants = [
        (i + 1, rng.randrange(t_lo, t_hi))
        for i in range(PARAM_ROWS)
    ]
    catalog.get_table("Instants").append_rows(instants)
    con.execute(
        "CREATE OR REPLACE TABLE Instants1("
        "InstantId INTEGER, Instant TIMESTAMPTZ)"
    )
    catalog.get_table("Instants1").append_rows(instants[:SAMPLE_ROWS])

    con.execute(
        "CREATE OR REPLACE TABLE Periods("
        "PeriodId INTEGER, Period TSTZSPAN)"
    )
    periods = []
    for i in range(PARAM_ROWS):
        start = rng.randrange(t_lo, t_hi)
        duration = rng.randrange(30 * 60, 6 * 3600) * USECS_PER_SEC
        periods.append(
            (i + 1, Span(start, min(start + duration, t_hi), True, True,
                         TSTZ))
        )
    catalog.get_table("Periods").append_rows(periods)
    con.execute(
        "CREATE OR REPLACE TABLE Periods1("
        "PeriodId INTEGER, Period TSTZSPAN)"
    )
    catalog.get_table("Periods1").append_rows(periods[:SAMPLE_ROWS])

    # Points: sampled from network nodes so trips actually pass them.
    nodes = list(dataset.network.graph.nodes)
    con.execute(
        "CREATE OR REPLACE TABLE Points(PointId INTEGER, Geom GEOMETRY)"
    )
    points = []
    for i in range(PARAM_ROWS):
        node = rng.choice(nodes)
        x, y = dataset.network.node_position(node)
        points.append((i + 1, geo.Point(x, y, dataset.network.srid)))
    catalog.get_table("Points").append_rows(points)
    con.execute(
        "CREATE OR REPLACE TABLE Points1(PointId INTEGER, Geom GEOMETRY)"
    )
    catalog.get_table("Points1").append_rows(points[:SAMPLE_ROWS])

    # Regions: octagonal neighbourhoods around random positions.
    con.execute(
        "CREATE OR REPLACE TABLE Regions(RegionId INTEGER, Geom GEOMETRY)"
    )
    regions = []
    for i in range(PARAM_ROWS):
        node = rng.choice(nodes)
        cx, cy = dataset.network.node_position(node)
        radius = rng.uniform(500.0, 2000.0)
        import math

        ring = [
            (cx + radius * math.cos(k * math.pi / 4),
             cy + radius * math.sin(k * math.pi / 4))
            for k in range(8)
        ]
        regions.append(
            (i + 1, geo.Polygon(ring, srid=dataset.network.srid))
        )
    catalog.get_table("Regions").append_rows(regions)
    con.execute(
        "CREATE OR REPLACE TABLE Regions1(RegionId INTEGER, Geom GEOMETRY)"
    )
    catalog.get_table("Regions1").append_rows(regions[:SAMPLE_ROWS])

    if with_trajectories:
        con.execute(
            """
            CREATE OR REPLACE TABLE trajectories(
                VehicleId INTEGER, TripId INTEGER, Trip TGEOMPOINT,
                Traj GEOMETRY
            )
            """
        )
        catalog.get_table("trajectories").append_rows(
            [
                (t.vehicle_id, t.trip_id, t.trip, t.traj)
                for t in dataset.trips
            ]
        )


#: MobilityDB-style index DDL for the "with indexes" scenario (§6.3.1).
BASELINE_INDEX_DDL = [
    "CREATE INDEX trips_trip_gist ON Trips USING GIST(Trip)",
    "CREATE INDEX trips_vehicle_btree ON Trips USING BTREE(VehicleId)",
    "CREATE INDEX vehicles_id_btree ON Vehicles USING BTREE(VehicleId)",
    "CREATE INDEX licences_vehicle_btree ON Licences USING BTREE(VehicleId)",
    "CREATE INDEX points_geom_gist ON Points USING GIST(Geom)",
    "CREATE INDEX regions_geom_gist ON Regions USING GIST(Geom)",
]


def create_baseline_indexes(con) -> None:
    """Create the MobilityDB-style GiST/B-tree indexes on a pgsim DB."""
    for ddl in BASELINE_INDEX_DDL:
        con.execute(ddl)
