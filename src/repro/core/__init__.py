"""repro.core — the MobilityDuck extension (the paper's contribution).

Registers the MEOS temporal algebra into the quack engine (and into the
row-store baseline) as user-defined types, cast functions, scalar
functions, operators, aggregates, and the ``TRTREE`` R-tree index on
``stbox`` (paper §3–§4).

Quickstart::

    from repro import core
    con = core.connect()          # quack + MobilityDuck
    con.execute("SELECT duration('{1@2025-01-01, 2@2025-01-03}'::TINT, true)")
"""

from . import spatial
from .extension import (
    EXTENSION_NAME,
    connect,
    connect_baseline,
    load,
    serve_metrics,
)
from .rtree_index import RTreeIndex, RTreeModule, TYPE_NAME
from .types import (
    ALL_TYPES,
    GSERIALIZED_TYPE,
    SET_TYPES,
    SPAN_TYPES,
    SPANSET_TYPES,
    STBOX_TYPE,
    TBOX_TYPE,
    TEMPORAL_TYPES,
    TYPE_COVERAGE,
)

__all__ = [
    "ALL_TYPES",
    "EXTENSION_NAME",
    "GSERIALIZED_TYPE",
    "RTreeIndex",
    "RTreeModule",
    "SET_TYPES",
    "SPAN_TYPES",
    "SPANSET_TYPES",
    "STBOX_TYPE",
    "TBOX_TYPE",
    "TEMPORAL_TYPES",
    "TYPE_COVERAGE",
    "TYPE_NAME",
    "connect",
    "connect_baseline",
    "load",
    "serve_metrics",
    "spatial",
]
