"""Columnar stbox predicate kernels (struct-of-arrays bounding boxes).

The paper's §3.4 argument is that spatiotemporal predicates should run
inside the vectorized executor rather than once per row.  This module
supplies the columnar half of that claim for the box operators: a
per-chunk struct-of-arrays view of the bounding boxes in an object
vector (:class:`BoxSoA`, extracted once and cached on the
:class:`~repro.quack.vector.Vector`), and ``evaluate_batch`` kernels for
``&&`` / ``@>`` / ``<@`` between stboxes, temporal points and stboxes,
and the bbox prefilter of ``eIntersects``.

The kernels are *sound prefilters*, not replacements: a NumPy comparison
pass splits each chunk into rows whose outcome is decided by bounding
boxes alone (strict separation, strict containment) and rows that need
the exact scalar operator (time-span boundaries whose inclusivity flags
matter, SRID mismatches and dimensionality errors that must surface as
exceptions, payloads that are not boxes at all).  Only the undecided
rows run the per-row path.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .. import geo
from ..meos import STBox
from ..meos.temporal.base import Temporal
from ..observability import count as _count
from ..quack.types import BOOLEAN
from ..quack.vector import Vector


class BoxSoA:
    """Struct-of-arrays bounding boxes for one object vector.

    ``ok[i]`` is True when row ``i`` held a value with a usable bounding
    box; spatial/time bounds are float64 (NaN when the dimension is
    absent, with ``has_x``/``has_t`` as the authoritative masks).
    """

    __slots__ = ("ok", "has_x", "has_t", "xmin", "ymin", "xmax", "ymax",
                 "tmin", "tmax", "srid")

    def __init__(self, count: int):
        self.ok = np.zeros(count, dtype=np.bool_)
        self.has_x = np.zeros(count, dtype=np.bool_)
        self.has_t = np.zeros(count, dtype=np.bool_)
        self.xmin = np.full(count, np.nan)
        self.ymin = np.full(count, np.nan)
        self.xmax = np.full(count, np.nan)
        self.ymax = np.full(count, np.nan)
        self.tmin = np.full(count, np.nan)
        self.tmax = np.full(count, np.nan)
        self.srid = np.zeros(count, dtype=np.int64)

    def fill(self, i: int, box: STBox) -> None:
        self.ok[i] = True
        if box.has_x:
            self.has_x[i] = True
            self.xmin[i] = box.xmin
            self.ymin[i] = box.ymin
            self.xmax[i] = box.xmax
            self.ymax[i] = box.ymax
        if box.has_t:
            self.has_t[i] = True
            self.tmin[i] = float(box.tspan.lower)
            self.tmax[i] = float(box.tspan.upper)
        self.srid[i] = box.srid


def _extract(vector: Vector, to_box: Callable[[Any], STBox | None]) -> BoxSoA:
    count = len(vector)
    soa = BoxSoA(count)
    data = vector.data
    validity = vector.validity
    prev_value: Any = None
    prev_box: STBox | None = None
    have_prev = False
    for i in range(count):
        if not validity[i]:
            continue
        value = data[i]
        # Constant vectors repeat one object: convert it only once.
        if have_prev and value is prev_value:
            box = prev_box
        else:
            try:
                box = to_box(value)
            except Exception:
                box = None
            prev_value, prev_box, have_prev = value, box, True
        if box is not None:
            soa.fill(i, box)
    return soa


def _stbox_of(value: Any) -> STBox | None:
    return value if isinstance(value, STBox) else None


def _tpoint_box_of(value: Any) -> STBox | None:
    return value.stbox() if isinstance(value, Temporal) else None


def _geom_box_of(value: Any) -> STBox | None:
    if isinstance(value, geo.Geometry):
        geom = value
    elif isinstance(value, (bytes, bytearray)):
        geom = geo.decode_wkb(value)
    elif isinstance(value, str):
        geom = geo.parse_wkt(value)
    else:
        return None
    return STBox.from_geometry(geom)


def stbox_soa(vector: Vector) -> BoxSoA | None:
    if vector.ltype.physical != "object":
        return None
    return vector.cached_aux(
        ("box_soa", "stbox"), lambda v: _extract(v, _stbox_of)
    )


def tpoint_soa(vector: Vector) -> BoxSoA | None:
    if vector.ltype.physical != "object":
        return None
    return vector.cached_aux(
        ("box_soa", "tpoint"), lambda v: _extract(v, _tpoint_box_of)
    )


def geom_soa(vector: Vector) -> BoxSoA | None:
    if vector.ltype.physical != "object":
        return None
    return vector.cached_aux(
        ("box_soa", "geom"), lambda v: _extract(v, _geom_box_of)
    )


# ---------------------------------------------------------------------------
# Decision kernels: (definitely false, definitely true) row masks
# ---------------------------------------------------------------------------


def _pair_masks(a: BoxSoA, b: BoxSoA):
    ok = a.ok & b.ok
    # Rows where the scalar operator would raise (SRID mismatch, no
    # shared dimension) are never "decided" here so the error surfaces.
    srid_ok = (a.srid == 0) | (b.srid == 0) | (a.srid == b.srid)
    shared_x = a.has_x & b.has_x
    shared_t = a.has_t & b.has_t
    eligible = ok & srid_ok & (shared_x | shared_t)
    return eligible, shared_x, shared_t


def overlaps_decide(a: BoxSoA, b: BoxSoA):
    eligible, shared_x, shared_t = _pair_masks(a, b)
    # Spatial bounds are closed intervals: the array comparisons decide
    # every shared-x row exactly.  Time spans carry inclusivity flags, so
    # only strictly-separated (false) and interior-overlapping (true)
    # rows are decidable; boundary-touching spans go to the scalar path.
    sep_x = (
        (a.xmax < b.xmin) | (b.xmax < a.xmin)
        | (a.ymax < b.ymin) | (b.ymax < a.ymin)
    )
    ov_x = (
        (a.xmax >= b.xmin) & (b.xmax >= a.xmin)
        & (a.ymax >= b.ymin) & (b.ymax >= a.ymin)
    )
    sep_t = (a.tmax < b.tmin) | (b.tmax < a.tmin)
    interior_t = (a.tmin < b.tmax) & (b.tmin < a.tmax)
    def_false = eligible & ((shared_x & sep_x) | (shared_t & sep_t))
    def_true = (
        eligible
        & (~shared_x | ov_x)
        & (~shared_t | interior_t)
    )
    return def_false, def_true


def contains_decide(a: BoxSoA, b: BoxSoA):
    """Decide ``a @> b`` where possible."""
    eligible, shared_x, shared_t = _pair_masks(a, b)
    in_x = (
        (a.xmin <= b.xmin) & (a.xmax >= b.xmax)
        & (a.ymin <= b.ymin) & (a.ymax >= b.ymax)
    )
    out_t = (a.tmin > b.tmin) | (a.tmax < b.tmax)
    interior_t = (a.tmin < b.tmin) & (b.tmax < a.tmax)
    def_false = eligible & ((shared_x & ~in_x) | (shared_t & out_t))
    def_true = (
        eligible
        & (~shared_x | in_x)
        & (~shared_t | interior_t)
    )
    return def_false, def_true


def eintersects_decide(a: BoxSoA, b: BoxSoA):
    """Bbox prefilter for eIntersects: strict spatial separation is a
    definite no; everything else needs the exact geometry test."""
    ok = a.ok & b.ok
    srid_ok = (a.srid == 0) | (b.srid == 0) | (a.srid == b.srid)
    sep_x = (
        (a.xmax < b.xmin) | (b.xmax < a.xmin)
        | (a.ymax < b.ymin) | (b.ymax < a.ymin)
    )
    def_false = ok & srid_ok & a.has_x & b.has_x & sep_x
    return def_false, np.zeros(len(def_false), dtype=np.bool_)


# ---------------------------------------------------------------------------
# evaluate_batch factory
# ---------------------------------------------------------------------------


def make_batch(
    extract_a: Callable[[Vector], BoxSoA | None],
    extract_b: Callable[[Vector], BoxSoA | None],
    decide: Callable[[BoxSoA, BoxSoA], tuple[np.ndarray, np.ndarray]],
    scalar_fn: Callable[[Any, Any], Any],
):
    """Build an ``evaluate_batch`` hook for a binary box predicate.

    The decided rows are answered from the SoA comparison masks; the
    remaining valid rows run ``scalar_fn`` row-wise (exact geometry,
    inclusivity flags, and error raising all live there).
    """

    def batch(args: list[Vector], count: int) -> Vector | None:
        va, vb = args[0], args[1]
        a = extract_a(va)
        b = extract_b(vb)
        if a is None or b is None:
            return None
        validity = va.validity & vb.validity
        def_false, def_true = decide(a, b)
        decided = (def_false | def_true) & validity
        data = np.zeros(count, dtype=np.bool_)
        data[def_true & validity] = True
        rest = validity & ~decided
        n_rest = int(rest.sum())
        _count("quack.bbox_rows_decided", int(decided.sum()))
        if n_rest:
            _count("quack.bbox_rows_scalar", n_rest)
            a_data = va.data
            b_data = vb.data
            for i in np.nonzero(rest)[0]:
                result = scalar_fn(a_data[i], b_data[i])
                if result is None:
                    validity[i] = False
                else:
                    data[i] = bool(result)
        return Vector(BOOLEAN, data, validity)

    return batch


# Premade kernels for the stbox/stbox operators registered in
# functions/boxes.py.
STBOX_OVERLAPS_BATCH = make_batch(
    stbox_soa, stbox_soa, overlaps_decide, STBox.overlaps
)
STBOX_CONTAINS_BATCH = make_batch(
    stbox_soa, stbox_soa, contains_decide, STBox.contains
)
STBOX_CONTAINED_BATCH = make_batch(
    stbox_soa, stbox_soa, lambda a, b: contains_decide(b, a),
    lambda a, b: b.contains(a),
)
