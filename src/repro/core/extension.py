"""The MobilityDuck extension: entry point that registers everything.

``load(database)`` installs, in order: the mini-Spatial extension (unless
already present), all MEOS user types with their casts, the scalar
functions and operators of each type family, the aggregates, and the
``TRTREE`` index type (paper §3–§4).  The same loader works against both
engines — :class:`repro.quack.Database` (columnar, where TRTREE is
available) and :class:`repro.pgsim.RowDatabase` (the MobilityDB baseline,
which uses its built-in GiST instead).
"""

from __future__ import annotations

from ..quack.database import Database
from . import spatial
from .functions import boxes, sets, spans, temporal, tpoint
from .rtree_index import RTreeModule

EXTENSION_NAME = "mobilityduck"


def load(database) -> None:
    """Register MobilityDuck's types, functions, operators and index."""
    if not database.types.known("GEOMETRY"):
        spatial.load(database)
    sets.register(database)
    spans.register(database)
    boxes.register(database)
    temporal.register(database)
    tpoint.register(database)
    # TRTREE only exists on the columnar engine: it plugs into the chunk
    # append / bulk-build pipeline of quack tables (§4.2).  The row-store
    # baseline models MobilityDB, whose spatiotemporal indexing is GiST.
    if isinstance(database, Database):
        RTreeModule.register_rtree_index(database)


def connect(workers: int | None = None):
    """Create a quack database with MobilityDuck loaded; returns a
    connection (convenience for examples and tests).  ``workers > 1``
    enables morsel-driven parallel execution (default: the
    ``REPRO_THREADS`` environment variable, else serial)."""
    from ..quack import Database as _Database

    db = _Database()
    db.load_extension(_module())
    return db.connect(workers=workers)


def connect_baseline():
    """Create the row-store baseline (MobilityDB stand-in) with the same
    extension surface; returns a connection."""
    from ..pgsim import RowDatabase

    db = RowDatabase()
    db.load_extension(_module())
    return db.connect()


def serve_metrics(port: int = 0, host: str = "127.0.0.1"):
    """Expose the process-wide metrics registry over HTTP in Prometheus
    text format (convenience re-export of
    :func:`repro.observability.serve_metrics`); returns the server
    handle — read ``.url``, call ``.shutdown()`` when done."""
    from ..observability import serve_metrics as _serve

    return _serve(port=port, host=host)


def _module():
    import sys

    return sys.modules[__name__]
