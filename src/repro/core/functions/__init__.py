"""Function/operator registration modules of the MobilityDuck extension.

Each module registers one type family's casts, scalar functions and
operators into a database (quack or pgsim — the registration surface is
identical), mirroring the paper's §3.4 categories: cast functions, scalar
functions, and operators-as-named-functions.
"""

from . import boxes, sets, spans, temporal, tpoint

__all__ = ["boxes", "sets", "spans", "temporal", "tpoint"]
