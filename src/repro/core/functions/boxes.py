"""Registration of ``tbox`` / ``stbox`` functions and operators.

Includes the paper's §3.5 examples (``expandSpace``, ``expandTime``) and
the pieces the benchmark queries need: ``stbox(WKB_BLOB)`` around a
geometry (Query 7), ``trip::STBOX`` (Query 10), ``geometry(stbox)``
(Figure 2 table setup), and the overlap operators the TRTREE index scan
matches on (§4.3).
"""

from __future__ import annotations

from ... import geo
from ...meos import STBox, TBox
from ...quack.extension import ExtensionUtil
from ...quack.functions import ScalarFunction
from ..boxkernels import (
    STBOX_CONTAINED_BATCH,
    STBOX_CONTAINS_BATCH,
    STBOX_OVERLAPS_BATCH,
)
from ...quack.types import (
    BIGINT,
    BLOB,
    BOOLEAN,
    DOUBLE,
    INTERVAL,
    VARCHAR,
)
from ..types import SPAN_TYPES, STBOX_TYPE, TBOX_TYPE


def register(database) -> None:
    def scalar(name, arg_types, return_type, fn, batch=None):
        ExtensionUtil.register_function(
            database,
            ScalarFunction(name, tuple(arg_types), return_type, fn_scalar=fn,
                           evaluate_batch=batch),
        )

    tstzspan = SPAN_TYPES["tstzspan"]

    for name, ltype, parse in (
        ("TBOX", TBOX_TYPE, TBox.parse),
        ("STBOX", STBOX_TYPE, STBox.parse),
    ):
        ExtensionUtil.register_type(database, name, ltype)
        ExtensionUtil.register_cast_function(database, VARCHAR, ltype, parse)
        ExtensionUtil.register_cast_function(database, ltype, VARCHAR, str)
        scalar(name.lower(), (VARCHAR,), ltype, parse)
        scalar("asText", (ltype,), VARCHAR, str)

    # -- tbox ------------------------------------------------------------------
    scalar("expandValue", (TBOX_TYPE, DOUBLE), TBOX_TYPE, TBox.expand_value)
    scalar("expandTime", (TBOX_TYPE, INTERVAL), TBOX_TYPE, TBox.expand_time)
    for op, method in (
        ("&&", TBox.overlaps),
        ("@>", TBox.contains),
        ("<@", lambda a, b: b.contains(a)),
    ):
        scalar(op, (TBOX_TYPE, TBOX_TYPE), BOOLEAN, method)
    scalar("union", (TBOX_TYPE, TBOX_TYPE), TBOX_TYPE, TBox.union)
    scalar("intersection", (TBOX_TYPE, TBOX_TYPE), TBOX_TYPE,
           TBox.intersection)

    # -- stbox -----------------------------------------------------------------
    # Constructors around geometries (WKB bytes or text).
    scalar("stbox", (BLOB,), STBOX_TYPE,
           lambda wkb: STBox.from_geometry(geo.decode_wkb(wkb)))
    stbox_from_geom = lambda g: STBox.from_geometry(g)  # noqa: E731
    geometry_type = database.types.lookup("GEOMETRY") if (
        database.types.known("GEOMETRY")
    ) else None
    if geometry_type is not None:
        scalar("stbox", (geometry_type,), STBOX_TYPE, stbox_from_geom)
        ExtensionUtil.register_cast_function(
            database, geometry_type, STBOX_TYPE, stbox_from_geom
        )
        ExtensionUtil.register_cast_function(
            database, STBOX_TYPE, geometry_type, STBox.to_geometry
        )
    # geometry(stbox): spatial extent as WKB bytes (the paper's proxy-layer
    # convention — GEOMETRY results travel as WKB_BLOB, §7).
    scalar("geometry", (STBOX_TYPE,), BLOB,
           lambda box: geo.encode_wkb(box.to_geometry()))

    scalar("expandSpace", (STBOX_TYPE, DOUBLE), STBOX_TYPE,
           STBox.expand_space)
    scalar("expandTime", (STBOX_TYPE, INTERVAL), STBOX_TYPE,
           STBox.expand_time)
    scalar("area", (STBOX_TYPE,), DOUBLE, STBox.area)
    scalar("SRID", (STBOX_TYPE,), BIGINT, lambda b: b.srid)
    scalar("setSRID", (STBOX_TYPE, BIGINT), STBOX_TYPE,
           lambda b, srid: b.set_srid(int(srid)))
    scalar("transform", (STBOX_TYPE, BIGINT), STBOX_TYPE,
           lambda b, srid: b.transform(int(srid)))

    for op, method, batch in (
        ("&&", STBox.overlaps, STBOX_OVERLAPS_BATCH),
        ("@>", STBox.contains, STBOX_CONTAINS_BATCH),
        ("<@", lambda a, b: b.contains(a), STBOX_CONTAINED_BATCH),
    ):
        scalar(op, (STBOX_TYPE, STBOX_TYPE), BOOLEAN, method, batch=batch)
    scalar("union", (STBOX_TYPE, STBOX_TYPE), STBOX_TYPE, STBox.union)
    scalar("intersection", (STBOX_TYPE, STBOX_TYPE), STBOX_TYPE,
           STBox.intersection)

    # Time extraction.
    ExtensionUtil.register_cast_function(
        database, STBOX_TYPE, tstzspan, STBox.to_tstzspan
    )
    scalar("timeSpan", (STBOX_TYPE,), tstzspan, STBox.to_tstzspan)
