"""Registration of ``set`` template-type functions (paper §3.4).

Covers the functions shown in the paper: ``Value_to_set``,
``Intset_to_floatset`` / ``Floatset_to_intset``, ``Dateset_to_tstzset`` /
``Tstzset_to_dateset``, ``Set_mem_size`` (exposed as ``memSize``),
``shiftScale``, ``transform``, ``asEWKT``, plus accessors and the set
operators.
"""

from __future__ import annotations


from ... import geo, meos
from ...meos import basetypes
from ...meos.setcls import Set
from ...quack.extension import ExtensionUtil
from ...quack.functions import ScalarFunction
from ...quack.types import BIGINT, BOOLEAN, DOUBLE, INTERVAL, VARCHAR
from ..types import BASE_VALUE_TYPES, SET_BASE, SET_TYPES


def register(database) -> None:
    fns = database.functions

    def scalar(name, arg_types, return_type, fn):
        ExtensionUtil.register_function(
            database,
            ScalarFunction(name, tuple(arg_types), return_type, fn_scalar=fn),
        )

    for name, ltype in SET_TYPES.items():
        base_name = SET_BASE[name]
        # Type + textual casts (the paper's cast-function category).
        ExtensionUtil.register_type(database, name, ltype)
        ExtensionUtil.register_cast_function(
            database, VARCHAR, ltype,
            lambda text, _n=name: meos.parse_set(text, _n),
        )
        ExtensionUtil.register_cast_function(database, ltype, VARCHAR, str)
        # Constructor function with the type's name, e.g. intset('{1,2}').
        scalar(name, (VARCHAR,), ltype,
               lambda text, _n=name: meos.parse_set(text, _n))

        # Accessors.
        scalar("numValues", (ltype,), BIGINT, len)
        scalar("memSize", (ltype,), BIGINT, Set.mem_size)
        scalar("asText", (ltype,), VARCHAR, str)
        if base_name in BASE_VALUE_TYPES:
            value_type = BASE_VALUE_TYPES[base_name]
            scalar("startValue", (ltype,), value_type, Set.start_value)
            scalar("endValue", (ltype,), value_type, Set.end_value)
            scalar("valueN", (ltype, BIGINT), value_type,
                   lambda s, n: s.value_at(int(n)))

        # Set-vs-set predicates/operators.
        for op, method in (
            ("&&", Set.overlaps),
            ("@>", Set.contains_set),
            ("<@", lambda a, b: b.contains_set(a)),
        ):
            scalar(op, (ltype, ltype), BOOLEAN, method)
        scalar("union", (ltype, ltype), ltype, Set.union)
        scalar("intersection", (ltype, ltype), ltype, Set.intersection)
        scalar("minus", (ltype, ltype), ltype, Set.minus)
        scalar("+", (ltype, ltype), ltype, Set.union)
        scalar("*", (ltype, ltype), ltype, Set.intersection)
        scalar("-", (ltype, ltype), ltype, Set.minus)
        if base_name in BASE_VALUE_TYPES:
            value_type = BASE_VALUE_TYPES[base_name]
            scalar("@>", (ltype, value_type), BOOLEAN, Set.contains_value)
            scalar("<@", (value_type, ltype), BOOLEAN,
                   lambda v, s: s.contains_value(v))
            # Value_to_set constructor.
            scalar("set", (value_type,), ltype,
                   lambda v, _b=base_name: Set.from_values(
                       [v], basetypes.base_type(_b)))

    # shiftScale — numeric sets take numbers, tstzset takes intervals
    # (the paper's registration example).
    for name in ("intset", "bigintset"):
        ltype = SET_TYPES[name]
        scalar("shiftScale", (ltype, BIGINT, BIGINT), ltype,
               lambda s, sh, w: s.shift_scale(int(sh), int(w)))
        scalar("shift", (ltype, BIGINT), ltype,
               lambda s, sh: s.shift_scale(shift=int(sh)))
    scalar("shiftScale", (SET_TYPES["floatset"], DOUBLE, DOUBLE),
           SET_TYPES["floatset"],
           lambda s, sh, w: s.shift_scale(sh, w))
    scalar("shiftScale", (SET_TYPES["tstzset"], INTERVAL, INTERVAL),
           SET_TYPES["tstzset"],
           lambda s, sh, w: s.shift_scale(sh, w))
    scalar("shift", (SET_TYPES["tstzset"], INTERVAL), SET_TYPES["tstzset"],
           lambda s, sh: s.shift_scale(shift=sh))

    # Conversions between set types (paper §3.4 scalar-function examples).
    scalar("intset_to_floatset", (SET_TYPES["intset"],),
           SET_TYPES["floatset"],
           lambda s: s.map_values(float, basetypes.FLOAT))
    scalar("floatset_to_intset", (SET_TYPES["floatset"],),
           SET_TYPES["intset"],
           lambda s: s.map_values(lambda v: int(round(v)), basetypes.INT))
    ExtensionUtil.register_cast_function(
        database, SET_TYPES["intset"], SET_TYPES["floatset"],
        lambda s: s.map_values(float, basetypes.FLOAT),
    )
    ExtensionUtil.register_cast_function(
        database, SET_TYPES["floatset"], SET_TYPES["intset"],
        lambda s: s.map_values(lambda v: int(round(v)), basetypes.INT),
    )

    from ...meos.timetypes import date_to_timestamptz, timestamptz_to_date

    ExtensionUtil.register_cast_function(
        database, SET_TYPES["dateset"], SET_TYPES["tstzset"],
        lambda s: s.map_values(date_to_timestamptz, basetypes.TSTZ),
    )
    ExtensionUtil.register_cast_function(
        database, SET_TYPES["tstzset"], SET_TYPES["dateset"],
        lambda s: s.map_values(timestamptz_to_date, basetypes.DATE),
    )
    scalar("tstzset_to_dateset", (SET_TYPES["tstzset"],),
           SET_TYPES["dateset"],
           lambda s: s.map_values(timestamptz_to_date, basetypes.DATE))
    scalar("dateset_to_tstzset", (SET_TYPES["dateset"],),
           SET_TYPES["tstzset"],
           lambda s: s.map_values(date_to_timestamptz, basetypes.TSTZ))

    # geomset spatial functions (the §3.5 transform/asEWKT example).
    geomset = SET_TYPES["geomset"]
    scalar("transform", (geomset, BIGINT), geomset,
           lambda s, srid: s.transform(int(srid)))
    scalar("SRID", (geomset,), BIGINT, Set.srid)
    scalar("asEWKT", (geomset,), VARCHAR, str)

    def as_ewkt_digits(s: Set, digits: int) -> str:
        formatted = ", ".join(
            f'"{geo.format_wkt(v, int(digits))}"' for v in s.values
        )
        srid = s.srid()
        prefix = f"SRID={srid};" if srid else ""
        return f"{prefix}{{{formatted}}}"

    scalar("asEWKT", (geomset, BIGINT), VARCHAR, as_ewkt_digits)
