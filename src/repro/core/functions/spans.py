"""Registration of ``span`` and ``spanset`` template-type functions."""

from __future__ import annotations

from ... import meos
from ...meos.span import Span
from ...meos.spanset import SpanSet
from ...quack.extension import ExtensionUtil
from ...quack.functions import ScalarFunction
from ...quack.types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTERVAL,
    TIMESTAMP,
    VARCHAR,
)
from ..types import (
    BASE_VALUE_TYPES,
    SPAN_BASE,
    SPAN_TYPES,
    SPANSET_BASE,
    SPANSET_TYPES,
)

#: span type -> matching spanset type
_SPAN_TO_SPANSET = {
    "intspan": "intspanset",
    "bigintspan": "bigintspanset",
    "floatspan": "floatspanset",
    "datespan": "datespanset",
    "tstzspan": "tstzspanset",
}


def register(database) -> None:
    def scalar(name, arg_types, return_type, fn):
        ExtensionUtil.register_function(
            database,
            ScalarFunction(name, tuple(arg_types), return_type, fn_scalar=fn),
        )

    for name, ltype in SPAN_TYPES.items():
        base_name = SPAN_BASE[name]
        value_type = BASE_VALUE_TYPES[base_name]
        ExtensionUtil.register_type(database, name, ltype)
        ExtensionUtil.register_cast_function(
            database, VARCHAR, ltype,
            lambda text, _n=name: meos.parse_span(text, _n),
        )
        ExtensionUtil.register_cast_function(database, ltype, VARCHAR, str)
        scalar(name, (VARCHAR,), ltype,
               lambda text, _n=name: meos.parse_span(text, _n))

        # Accessors.
        scalar("lower", (ltype,), value_type, lambda s: s.lower)
        scalar("upper", (ltype,), value_type, lambda s: s.upper)
        scalar("lowerInc", (ltype,), BOOLEAN, lambda s: s.lower_inc)
        scalar("upperInc", (ltype,), BOOLEAN, lambda s: s.upper_inc)
        scalar("asText", (ltype,), VARCHAR, str)
        if name == "tstzspan":
            scalar("duration", (ltype,), INTERVAL, Span.duration)
        else:
            width_type = DOUBLE if base_name == "float" else BIGINT
            scalar("width", (ltype,), width_type, Span.width)

        # Span-vs-span operators.
        for op, method in (
            ("&&", Span.overlaps),
            ("@>", Span.contains_span),
            ("<@", lambda a, b: b.contains_span(a)),
            ("<<", Span.is_left),
            (">>", Span.is_right),
            ("-|-", Span.is_adjacent),
        ):
            scalar(op, (ltype, ltype), BOOLEAN, method)
        # Span-vs-value.
        scalar("@>", (ltype, value_type), BOOLEAN, Span.contains_value)
        scalar("<@", (value_type, ltype), BOOLEAN,
               lambda v, s: s.contains_value(v))

        scalar("span_union", (ltype, ltype), ltype, Span.union)
        scalar("span_intersection", (ltype, ltype), ltype, Span.intersection)

        # MobilityDB arithmetic-style set operators: + union, * intersection,
        # - difference.  Union/difference of spans yield spansets.
        spanset_type = SPANSET_TYPES[_SPAN_TO_SPANSET[name]]
        scalar("+", (ltype, ltype), spanset_type,
               lambda a, b: SpanSet.from_spans([a, b]))
        scalar("*", (ltype, ltype), ltype, Span.intersection)
        scalar("-", (ltype, ltype), spanset_type,
               lambda a, b: SpanSet.from_spans(a.minus(b))
               if a.minus(b) else None)

        # shiftScale / expand.
        if name == "tstzspan":
            scalar("shiftScale", (ltype, INTERVAL, INTERVAL), ltype,
                   lambda s, sh, w: s.shift_scale(
                       sh.total_usecs(), w.total_usecs()))
            scalar("shift", (ltype, INTERVAL), ltype,
                   lambda s, sh: s.shift_scale(shift=sh.total_usecs()))
            scalar("expand", (ltype, INTERVAL), ltype,
                   lambda s, iv: s.expand(iv.total_usecs()))
        elif base_name == "float":
            scalar("shiftScale", (ltype, DOUBLE, DOUBLE), ltype,
                   lambda s, sh, w: s.shift_scale(sh, w))
            scalar("expand", (ltype, DOUBLE), ltype, Span.expand)
        else:
            scalar("shiftScale", (ltype, BIGINT, BIGINT), ltype,
                   lambda s, sh, w: s.shift_scale(int(sh), int(w)))
            scalar("expand", (ltype, BIGINT), ltype,
                   lambda s, a: s.expand(int(a)))

    for name, ltype in SPANSET_TYPES.items():
        base_name = SPANSET_BASE[name]
        value_type = BASE_VALUE_TYPES[base_name]
        span_name = [k for k, v in _SPAN_TO_SPANSET.items() if v == name][0]
        span_type = SPAN_TYPES[span_name]
        ExtensionUtil.register_type(database, name, ltype)
        ExtensionUtil.register_cast_function(
            database, VARCHAR, ltype,
            lambda text, _n=name: meos.parse_spanset(text, _n),
        )
        ExtensionUtil.register_cast_function(database, ltype, VARCHAR, str)
        scalar(name, (VARCHAR,), ltype,
               lambda text, _n=name: meos.parse_spanset(text, _n))

        scalar("numSpans", (ltype,), BIGINT, SpanSet.num_spans)
        scalar("startSpan", (ltype,), span_type, SpanSet.start_span)
        scalar("endSpan", (ltype,), span_type, SpanSet.end_span)
        scalar("span", (ltype,), span_type, SpanSet.to_span)
        scalar("asText", (ltype,), VARCHAR, str)
        ExtensionUtil.register_cast_function(
            database, ltype, span_type, SpanSet.to_span
        )
        if name == "tstzspanset":
            scalar("duration", (ltype,), INTERVAL,
                   lambda ss: ss.duration(False))
            scalar("duration", (ltype, BOOLEAN), INTERVAL,
                   lambda ss, bs: ss.duration(bool(bs)))
            scalar("startTimestamp", (ltype,), TIMESTAMP,
                   lambda ss: ss.spans[0].lower)
            scalar("endTimestamp", (ltype,), TIMESTAMP,
                   lambda ss: ss.spans[-1].upper)

        # Operators.
        for op, method in (
            ("&&", SpanSet.overlaps),
            ("@>", SpanSet.contains_spanset),
            ("<@", lambda a, b: b.contains_spanset(a)),
        ):
            scalar(op, (ltype, ltype), BOOLEAN, method)
        scalar("&&", (ltype, span_type), BOOLEAN, SpanSet.overlaps_span)
        scalar("&&", (span_type, ltype), BOOLEAN,
               lambda s, ss: ss.overlaps_span(s))
        scalar("@>", (ltype, span_type), BOOLEAN, SpanSet.contains_span)
        scalar("@>", (ltype, value_type), BOOLEAN, SpanSet.contains_value)
        scalar("<@", (value_type, ltype), BOOLEAN,
               lambda v, ss: ss.contains_value(v))

        scalar("spanset_union", (ltype, ltype), ltype, SpanSet.union)
        scalar("spanset_intersection", (ltype, ltype), ltype,
               SpanSet.intersection)
        scalar("spanset_minus", (ltype, ltype), ltype, SpanSet.minus)
        scalar("+", (ltype, ltype), ltype, SpanSet.union)
        scalar("*", (ltype, ltype), ltype, SpanSet.intersection)
        scalar("-", (ltype, ltype), ltype, SpanSet.minus)
