"""Registration of generic temporal-type functions (paper §3.4, §3.5).

Covers the accessors and restriction operators shared by all temporal
types: ``duration``, ``startTimestamp`` / ``endTimestamp``,
``valueAtTimestamp``, ``atTime`` / ``minusTime``, ``atValues``,
``whenTrue``, ``shiftTime`` / ``scaleTime``, interpolation changes, and
the bounding-box operators with spans.
"""

from __future__ import annotations

from typing import Any

from ... import geo, meos
from ...meos import Interp, Temporal
from ...meos.temporal import (
    from_base_tstzspan,
    parse_temporal,
    temporal_compare,
    temporal_type,
    when_true,
)
from ...quack.extension import ExtensionUtil
from ...quack.functions import ScalarFunction
from ...quack.types import (
    BIGINT,
    BLOB,
    BOOLEAN,
    DOUBLE,
    INTERVAL,
    TIMESTAMP,
    VARCHAR,
)
from ..types import (
    BASE_VALUE_TYPES,
    SET_TYPES,
    SPAN_TYPES,
    SPANSET_TYPES,
    TBOX_TYPE,
    TEMPORAL_BASE,
    TEMPORAL_TYPES,
)

_TSTZSPAN = SPAN_TYPES["tstzspan"]
_TSTZSPANSET = SPANSET_TYPES["tstzspanset"]
_TSTZSET = SET_TYPES["tstzset"]


def _value_out(ttype_name: str) -> Any:
    """Engine type of a temporal type's base values.

    Spatial values travel as WKB bytes (the paper's proxy layer, §7)."""
    base = TEMPORAL_BASE[ttype_name]
    if base == "geometry":
        return BLOB
    return BASE_VALUE_TYPES[base]


def _wrap_value_out(ttype_name: str, value: Any) -> Any:
    if value is None:
        return None
    if TEMPORAL_BASE[ttype_name] == "geometry":
        return geo.encode_wkb(value)
    return value


def _from_mfjson_checked(text, expected_name):
    value = meos.from_mfjson(text)
    if value.ttype.name != expected_name:
        raise meos.MeosTypeError(
            f"MF-JSON document is a {value.ttype.name}, "
            f"not a {expected_name}"
        )
    return value


def register(database) -> None:
    def scalar(name, arg_types, return_type, fn):
        ExtensionUtil.register_function(
            database,
            ScalarFunction(name, tuple(arg_types), return_type, fn_scalar=fn),
        )

    for name, ltype in TEMPORAL_TYPES.items():
        ttype = temporal_type(name)
        value_out = _value_out(name)

        ExtensionUtil.register_type(database, name, ltype)
        ExtensionUtil.register_cast_function(
            database, VARCHAR, ltype,
            lambda text, _t=ttype: parse_temporal(text, _t),
        )
        ExtensionUtil.register_cast_function(database, ltype, VARCHAR, str)
        scalar(name, (VARCHAR,), ltype,
               lambda text, _t=ttype: parse_temporal(text, _t))

        # Constructor from a base value and a time span (§3.5 tgeometry
        # example); the value may arrive as text or WKB bytes.
        def make_from_span(value, span, interp=None, _t=ttype):
            if isinstance(value, (bytes, bytearray)):
                value = geo.decode_wkb(value)
            return from_base_tstzspan(_t, value, span, interp)

        scalar(name, (VARCHAR, _TSTZSPAN), ltype, make_from_span)
        scalar(name, (VARCHAR, _TSTZSPAN, VARCHAR), ltype, make_from_span)
        if TEMPORAL_BASE[name] == "geometry":
            scalar(name, (BLOB, _TSTZSPAN, VARCHAR), ltype, make_from_span)
            scalar(name, (BLOB, _TSTZSPAN), ltype, make_from_span)

        # -- accessors ----------------------------------------------------------
        scalar("duration", (ltype,), INTERVAL,
               lambda t: t.duration(False))
        scalar("duration", (ltype, BOOLEAN), INTERVAL,
               lambda t, bs: t.duration(bool(bs)))
        scalar("startTimestamp", (ltype,), TIMESTAMP,
               Temporal.start_timestamp)
        scalar("endTimestamp", (ltype,), TIMESTAMP, Temporal.end_timestamp)
        scalar("numInstants", (ltype,), BIGINT, Temporal.num_instants)
        scalar("startValue", (ltype,), value_out,
               lambda t, _n=name: _wrap_value_out(_n, t.start_value()))
        scalar("endValue", (ltype,), value_out,
               lambda t, _n=name: _wrap_value_out(_n, t.end_value()))
        scalar("valueAtTimestamp", (ltype, TIMESTAMP), value_out,
               lambda t, ts, _n=name: _wrap_value_out(
                   _n, t.value_at_timestamp(int(ts))))
        scalar("getTime", (ltype,), _TSTZSPANSET, lambda t: t.time())
        scalar("timeSpan", (ltype,), _TSTZSPAN, lambda t: t.tstzspan())
        scalar("interp", (ltype,), VARCHAR, lambda t: t.interp.value)
        scalar("asText", (ltype,), VARCHAR, Temporal.as_text)
        scalar("asMFJSON", (ltype,), VARCHAR,
               lambda t: meos.as_mfjson(t))
        scalar("asMFJSON", (ltype, BOOLEAN), VARCHAR,
               lambda t, bbox: meos.as_mfjson(t, bool(bbox)))
        scalar(f"{name}FromMFJSON", (VARCHAR,), ltype,
               lambda text, _n=name: _from_mfjson_checked(text, _n))
        if TEMPORAL_BASE[name] in ("integer", "float"):
            scalar("minValue", (ltype,), value_out, Temporal.min_value)
            scalar("maxValue", (ltype,), value_out, Temporal.max_value)
            scalar("atMin", (ltype,), ltype, lambda t: t.at_min())
            scalar("atMax", (ltype,), ltype, lambda t: t.at_max())

        # -- subtype / structure accessors -------------------------------------
        scalar("tempSubtype", (ltype,), VARCHAR, lambda t: t.subtype)
        scalar("instantN", (ltype, BIGINT), ltype,
               lambda t, n: t.instant_n(int(n)))
        scalar("startInstant", (ltype,), ltype,
               lambda t: t.instants()[0])
        scalar("endInstant", (ltype,), ltype,
               lambda t: t.instants()[-1])
        scalar("numSequences", (ltype,), BIGINT,
               lambda t: len(t.sequences()))
        scalar("startSequence", (ltype,), ltype,
               lambda t: t.sequences()[0])
        scalar("endSequence", (ltype,), ltype,
               lambda t: t.sequences()[-1])
        scalar("sequenceN", (ltype, BIGINT), ltype,
               lambda t, n: t.sequences()[int(n) - 1])
        scalar("timestampN", (ltype, BIGINT), TIMESTAMP,
               lambda t, n: t.instant_n(int(n)).t)

        # -- casts to time frames (paper Query 3: Trip::tstzspan) -----------------
        ExtensionUtil.register_cast_function(
            database, ltype, _TSTZSPAN, lambda t: t.tstzspan()
        )
        ExtensionUtil.register_cast_function(
            database, ltype, _TSTZSPANSET, lambda t: t.time()
        )

        # -- restriction ----------------------------------------------------------
        scalar("atTime", (ltype, _TSTZSPAN), ltype, lambda t, w: t.at_time(w))
        scalar("atTime", (ltype, _TSTZSPANSET), ltype,
               lambda t, w: t.at_time(w))
        scalar("atTime", (ltype, _TSTZSET), ltype, lambda t, w: t.at_time(w))
        scalar("atTime", (ltype, TIMESTAMP), ltype,
               lambda t, ts: t.at_time(int(ts)))
        scalar("minusTime", (ltype, _TSTZSPAN), ltype, Temporal.minus_time)
        scalar("minusTime", (ltype, _TSTZSPANSET), ltype,
               Temporal.minus_time)

        base = TEMPORAL_BASE[name]
        if base == "geometry":
            def at_values_geom(t, value):
                if isinstance(value, (bytes, bytearray)):
                    value = geo.decode_wkb(value)
                if isinstance(value, geo.Point):
                    return t.at_value(value)
                return meos.at_geometry(t, value)

            scalar("atValues", (ltype, BLOB), ltype, at_values_geom)
            geometry_type = (
                database.types.lookup("GEOMETRY")
                if database.types.known("GEOMETRY") else None
            )
            if geometry_type is not None:
                scalar("atValues", (ltype, geometry_type), ltype,
                       at_values_geom)
        else:
            value_in = BASE_VALUE_TYPES[base]
            scalar("atValues", (ltype, value_in), ltype,
                   lambda t, v: t.at_value(v))
            set_name = {
                "bool": None, "integer": "intset", "float": "floatset",
                "text": "textset",
            }.get(base)
            if set_name:
                scalar("atValues", (ltype, SET_TYPES[set_name]), ltype,
                       lambda t, s: t.at_values(s))
            scalar("minusValues", (ltype, value_in), ltype,
                   lambda t, v: t.minus_value(v))

        # -- ever/always equality ---------------------------------------------------
        if base != "geometry":
            value_in = BASE_VALUE_TYPES[base]
            scalar("ever_eq", (ltype, value_in), BOOLEAN, Temporal.ever_eq)
            scalar("always_eq", (ltype, value_in), BOOLEAN,
                   Temporal.always_eq)

        # -- transformations -----------------------------------------------------------
        scalar("timeSplit", (ltype, INTERVAL), database.types.lookup("LIST"),
               lambda t, width: [frag for _, frag in
                                 meos.time_split(t, width)])
        scalar("shiftTime", (ltype, INTERVAL), ltype, Temporal.shift_time)
        scalar("scaleTime", (ltype, INTERVAL), ltype, Temporal.scale_time)
        scalar("shiftScaleTime", (ltype, INTERVAL, INTERVAL), ltype,
               Temporal.shift_scale_time)
        scalar("setInterp", (ltype, VARCHAR), ltype,
               lambda t, i: t.set_interp(Interp.parse(i))
               if hasattr(t, "set_interp") else t)

        # -- bounding-box operators with time frames --------------------------------------
        for frame, overlap in (
            (_TSTZSPAN, lambda t, s: t.tstzspan().overlaps(s)),
            (_TSTZSPANSET, lambda t, ss: ss.overlaps(t.time())),
        ):
            scalar("&&", (ltype, frame), BOOLEAN, overlap)
            scalar("&&", (frame, ltype), BOOLEAN,
                   lambda s, t, _f=overlap: _f(t, s))
        scalar("@>", (ltype, TIMESTAMP), BOOLEAN,
               lambda t, ts: t.tstzspan().contains_value(int(ts)))
        scalar("@>", (_TSTZSPAN, TIMESTAMP), BOOLEAN,
               lambda s, ts: s.contains_value(int(ts)))

    # -- numeric temporal extras -----------------------------------------------------
    tint = TEMPORAL_TYPES["tint"]
    tfloat = TEMPORAL_TYPES["tfloat"]
    tbool = TEMPORAL_TYPES["tbool"]

    from ...meos.temporal.ttypes import TFLOAT as _TFLOAT, TINT as _TINT

    ExtensionUtil.register_cast_function(
        database, tint, tfloat,
        lambda t: t.map_values(float, _TFLOAT),
    )
    ExtensionUtil.register_cast_function(
        database, tfloat, tint,
        lambda t: t.map_values(lambda v: int(round(v)), _TINT),
    )
    scalar("tbox", (tint,), TBOX_TYPE, lambda t: t.bbox())
    scalar("tbox", (tfloat,), TBOX_TYPE, lambda t: t.bbox())
    ExtensionUtil.register_cast_function(
        database, tint, TBOX_TYPE, lambda t: t.bbox()
    )
    ExtensionUtil.register_cast_function(
        database, tfloat, TBOX_TYPE, lambda t: t.bbox()
    )

    # whenTrue over temporal booleans (paper Query 10).
    scalar("whenTrue", (tbool,), _TSTZSPANSET, when_true)
    scalar("whenFalse", (tbool,), _TSTZSPANSET,
           lambda t: when_true(temporal_not(t)))

    # Lifted boolean algebra on tbool (MobilityDB & | ~).
    from ...meos.temporal import temporal_and, temporal_not, temporal_or

    scalar("tand", (tbool, tbool), tbool, temporal_and)
    scalar("tor", (tbool, tbool), tbool, temporal_or)
    scalar("tnot", (tbool,), tbool, temporal_not)

    # Lifted arithmetic on temporal numbers (MEOS tnumber ops).
    import operator as _op

    from ...meos.temporal import (
        arith_const,
        arith_temporal,
        integral,
        tnumber_abs,
        tnumber_round,
        tw_avg,
    )

    for tnum in (tint, tfloat):
        for symbol, fn in (("+", _op.add), ("-", _op.sub),
                           ("*", _op.mul), ("/", _op.truediv)):
            scalar(symbol, (tnum, DOUBLE), tfloat if symbol == "/" else tnum,
                   lambda t, c, _f=fn: arith_const(t, c, _f))
            scalar(symbol, (DOUBLE, tnum), tfloat if symbol == "/" else tnum,
                   lambda c, t, _f=fn: arith_const(t, c, _f, reverse=True))
            scalar(symbol, (tnum, tnum), tfloat,
                   lambda a, b, _f=fn: arith_temporal(a, b, _f))
        scalar("abs", (tnum,), tnum, tnumber_abs)
        scalar("round", (tnum, BIGINT), tnum,
               lambda t, n: tnumber_round(t, int(n)))
        scalar("integral", (tnum,), DOUBLE, integral)
        scalar("twAvg", (tnum,), DOUBLE, tw_avg)
    scalar("+", (tint, tfloat), tfloat,
           lambda a, b: arith_temporal(a, b, _op.add))
    scalar("+", (tfloat, tint), tfloat,
           lambda a, b: arith_temporal(a, b, _op.add))

    # Lifted comparisons for temporal numbers (tfloat #< 5 style, exposed
    # with MobilityDB's function names).
    import operator

    for fn_name, op in (
        ("temporal_teq", operator.eq),
        ("temporal_tlt", operator.lt),
        ("temporal_tle", operator.le),
        ("temporal_tgt", operator.gt),
        ("temporal_tge", operator.ge),
    ):
        scalar(fn_name, (tint, BIGINT), tbool,
               lambda t, v, _op=op: temporal_compare(t, int(v), _op))
        scalar(fn_name, (tfloat, DOUBLE), tbool,
               lambda t, v, _op=op: temporal_compare(t, float(v), _op))
