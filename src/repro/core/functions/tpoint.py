"""Registration of temporal-point spatial functions and geometry interop.

This module carries the paper's headline query functionality:

* trajectory accessors — ``trajectory`` (WKB out, §6.2) and the optimized
  ``trajectory_gs`` / ``collect_gs`` / ``distance_gs`` GSERIALIZED path
  that §6.3 introduces to avoid WKB round-trips in Query 5;
* spatiotemporal relationships — ``eIntersects``, ``tDwithin``,
  ``eDwithin``, ``aDwithin`` (use case 6, Queries 6/10);
* restriction — ``atGeometry`` / ``atStbox`` (use case 4, Query 13);
* the ``&&`` operators between temporal points and stboxes that drive the
  TRTREE index scan injection (§4.3);
* aggregates — ``extent`` and the instant-to-sequence assembly used in the
  §6.2 demonstration.
"""

from __future__ import annotations

from typing import Any

from ... import geo, meos
from ...meos import Temporal
from ...meos.temporal import merge_all, sequence_from_instants, tcount
from ...meos.temporal.base import TInstant
from ...quack.extension import ExtensionUtil
from ...quack.functions import AggregateFunction, ScalarFunction
from ...quack.types import (
    BIGINT,
    BLOB,
    BOOLEAN,
    DOUBLE,
    INTERVAL,
    LIST,
    TIMESTAMP,
    VARCHAR,
)
from ..boxkernels import (
    contains_decide,
    eintersects_decide,
    geom_soa,
    make_batch,
    overlaps_decide,
    stbox_soa,
    tpoint_soa,
)
from ..types import (
    GSERIALIZED_TYPE,
    SPAN_TYPES,
    STBOX_TYPE,
    TEMPORAL_TYPES,
)

_TGEOMPOINT = TEMPORAL_TYPES["tgeompoint"]
_TGEOMETRY = TEMPORAL_TYPES["tgeometry"]
_TBOOL = TEMPORAL_TYPES["tbool"]
_TFLOAT = TEMPORAL_TYPES["tfloat"]
_TSTZSPAN = SPAN_TYPES["tstzspan"]


def _as_geom(value: Any) -> geo.Geometry:
    if isinstance(value, geo.Geometry):
        return value
    if isinstance(value, (bytes, bytearray)):
        return geo.decode_wkb(value)
    if isinstance(value, str):
        return geo.parse_wkt(value)
    raise ValueError(f"cannot interpret {type(value).__name__} as geometry")


def register(database) -> None:
    def scalar(name, arg_types, return_type, fn, batch=None):
        ExtensionUtil.register_function(
            database,
            ScalarFunction(name, tuple(arg_types), return_type, fn_scalar=fn,
                           evaluate_batch=batch),
        )

    geometry_type = (
        database.types.lookup("GEOMETRY")
        if database.types.known("GEOMETRY") else None
    )
    geom_ins: list = [BLOB]
    if geometry_type is not None:
        geom_ins.append(geometry_type)

    ExtensionUtil.register_type(database, "GSERIALIZED", GSERIALIZED_TYPE)
    ExtensionUtil.register_cast_function(
        database, GSERIALIZED_TYPE, BLOB, geo.encode_wkb
    )
    ExtensionUtil.register_cast_function(
        database, BLOB, GSERIALIZED_TYPE, geo.decode_wkb
    )
    if geometry_type is not None:
        # GSERIALIZED <-> GEOMETRY both hold geometry payloads: free casts.
        ExtensionUtil.register_cast_function(
            database, GSERIALIZED_TYPE, geometry_type, lambda g: g
        )
        ExtensionUtil.register_cast_function(
            database, geometry_type, GSERIALIZED_TYPE, lambda g: g
        )

    for tname in ("tgeompoint", "tgeometry"):
        ltype = TEMPORAL_TYPES[tname]

        # -- instant constructors (value, timestamp) -------------------------------
        def make_instant(value, ts, _t=tname):
            value = _as_geom(value)
            return TInstant(meos.temporal_type(_t), value, int(ts))

        scalar(tname, (VARCHAR, TIMESTAMP), ltype, make_instant)
        for geom_in in geom_ins:
            scalar(tname, (geom_in, TIMESTAMP), ltype, make_instant)

        # -- trajectory & measures ---------------------------------------------------
        scalar("trajectory", (ltype,), BLOB,
               lambda t: geo.encode_wkb(meos.trajectory(t)))
        scalar("trajectory_gs", (ltype,), GSERIALIZED_TYPE, meos.trajectory)
        scalar("length", (ltype,), DOUBLE, meos.length)
        scalar("cumulativeLength", (ltype,), _TFLOAT, meos.cumulative_length)
        scalar("speed", (ltype,), _TFLOAT, meos.speed)
        scalar("twcentroid", (ltype,), BLOB,
               lambda t: geo.encode_wkb(meos.twcentroid(t)))
        scalar("azimuth", (ltype,), _TFLOAT, meos.azimuth)
        scalar("direction", (ltype,), DOUBLE, meos.direction)
        scalar("convexHull", (ltype,), BLOB,
               lambda t: geo.encode_wkb(meos.convex_hull(t)))
        scalar("SRID", (ltype,), BIGINT, Temporal.srid)
        scalar("transform", (ltype, BIGINT), ltype,
               lambda t, srid: meos.transform(t, int(srid)))
        scalar("setSRID", (ltype, BIGINT), ltype,
               lambda t, srid: meos.set_srid(t, int(srid)))
        scalar("asEWKT", (ltype,), VARCHAR, Temporal.as_ewkt)

        # -- stbox ---------------------------------------------------------------------
        scalar("stbox", (ltype,), STBOX_TYPE, Temporal.stbox)
        ExtensionUtil.register_cast_function(
            database, ltype, STBOX_TYPE, Temporal.stbox
        )
        scalar("expandSpace", (ltype, DOUBLE), STBOX_TYPE,
               lambda t, d: t.stbox().expand_space(d))

        # -- restriction to geometries / boxes -------------------------------------------
        for geom_in in geom_ins:
            scalar("atGeometry", (ltype, geom_in), ltype,
                   lambda t, g: meos.at_geometry(t, _as_geom(g)))
            scalar("minusGeometry", (ltype, geom_in), ltype,
                   lambda t, g: meos.minus_geometry(t, _as_geom(g)))
        scalar("atStbox", (ltype, STBOX_TYPE), ltype, meos.at_stbox)
        scalar("stops", (ltype, DOUBLE, INTERVAL), ltype,
               lambda t, d, dur: meos.stops(t, float(d), dur))
        scalar("numStops", (ltype, DOUBLE, INTERVAL), BIGINT,
               lambda t, d, dur: meos.num_stops(t, float(d), dur))
        scalar("minDistSimplify", (ltype, DOUBLE), ltype,
               lambda t, d: meos.min_dist_simplify(t, float(d)))
        scalar("douglasPeuckerSimplify", (ltype, DOUBLE), ltype,
               lambda t, d: meos.douglas_peucker_simplify(t, float(d)))

        # -- relationships ------------------------------------------------------------------
        def _eintersects_tg(t, g):
            return meos.e_intersects(t, _as_geom(g))

        def _eintersects_gt(g, t):
            return meos.e_intersects(t, _as_geom(g))

        for geom_in in geom_ins:
            scalar("eIntersects", (ltype, geom_in), BOOLEAN,
                   _eintersects_tg,
                   batch=make_batch(tpoint_soa, geom_soa,
                                    eintersects_decide, _eintersects_tg))
            scalar("eIntersects", (geom_in, ltype), BOOLEAN,
                   _eintersects_gt,
                   batch=make_batch(geom_soa, tpoint_soa,
                                    eintersects_decide, _eintersects_gt))
            scalar("aIntersects", (ltype, geom_in), BOOLEAN,
                   lambda t, g: meos.a_intersects(t, _as_geom(g)))
            scalar("tIntersects", (ltype, geom_in), _TBOOL,
                   lambda t, g: meos.t_intersects(t, _as_geom(g)))

        # -- bounding-box operators (drive TRTREE scan injection, §4.3) ---------------------
        def _tp_overlaps_box(t, box):
            return t.stbox().overlaps(box)

        def _box_overlaps_tp(box, t):
            return t.stbox().overlaps(box)

        def _box_contains_tp(box, t):
            return box.contains(t.stbox())

        def _tp_in_box(t, box):
            return box.contains(t.stbox())

        scalar("&&", (ltype, STBOX_TYPE), BOOLEAN, _tp_overlaps_box,
               batch=make_batch(tpoint_soa, stbox_soa, overlaps_decide,
                                _tp_overlaps_box))
        scalar("&&", (STBOX_TYPE, ltype), BOOLEAN, _box_overlaps_tp,
               batch=make_batch(stbox_soa, tpoint_soa, overlaps_decide,
                                _box_overlaps_tp))
        scalar("@>", (STBOX_TYPE, ltype), BOOLEAN, _box_contains_tp,
               batch=make_batch(stbox_soa, tpoint_soa, contains_decide,
                                _box_contains_tp))
        scalar("<@", (ltype, STBOX_TYPE), BOOLEAN, _tp_in_box,
               batch=make_batch(tpoint_soa, stbox_soa,
                                lambda a, b: contains_decide(b, a),
                                _tp_in_box))

    # Temporal point vs temporal point.
    def _tp_overlaps_tp(x, y):
        return x.stbox().overlaps(y.stbox())

    for a in (_TGEOMPOINT, _TGEOMETRY):
        for b in (_TGEOMPOINT, _TGEOMETRY):
            scalar("&&", (a, b), BOOLEAN, _tp_overlaps_tp,
                   batch=make_batch(tpoint_soa, tpoint_soa,
                                    overlaps_decide, _tp_overlaps_tp))
            scalar("tDwithin", (a, b, DOUBLE), _TBOOL, meos.t_dwithin)
            scalar("eDwithin", (a, b, DOUBLE), BOOLEAN, meos.e_dwithin)
            scalar("aDwithin", (a, b, DOUBLE), BOOLEAN, meos.a_dwithin)
            scalar("distance", (a, b), _TFLOAT, meos.temporal_distance)
            scalar("nearestApproachDistance", (a, b), DOUBLE,
                   meos.nearest_approach_distance)

    # -- sequence assembly (§6.2: instants -> tgeompointSeq) ---------------------------
    def tgeompoint_seq(instants, interp=None):
        items = [i for i in instants if i is not None]
        flat: list[TInstant] = []
        for item in items:
            if isinstance(item, TInstant):
                flat.append(item)
            else:
                flat.extend(item.instants())
        return sequence_from_instants(flat, interp=interp)

    scalar("tgeompointSeq", (LIST,), _TGEOMPOINT, tgeompoint_seq)
    scalar("tgeompointSeq", (LIST, VARCHAR), _TGEOMPOINT, tgeompoint_seq)
    scalar("merge", (LIST,), _TGEOMPOINT,
           lambda items: merge_all([i for i in items if i is not None]))

    # -- GSERIALIZED fast path (§6.3 optimized Query 5) ----------------------------------
    scalar("collect_gs", (LIST,), GSERIALIZED_TYPE,
           lambda items: geo.collect(
               [_as_geom(v) for v in items if v is not None]
           ))
    scalar("distance_gs", (GSERIALIZED_TYPE, GSERIALIZED_TYPE), DOUBLE,
           lambda a, b: geo.distance(_as_geom(a), _as_geom(b)))
    scalar("asText_gs", (GSERIALIZED_TYPE,), VARCHAR,
           lambda g: geo.format_wkt(_as_geom(g)))
    scalar("length_gs", (GSERIALIZED_TYPE,), DOUBLE,
           lambda g: geo.length(_as_geom(g)))

    # -- aggregates -----------------------------------------------------------------------
    for tname in ("tgeompoint", "tgeometry"):
        ltype = TEMPORAL_TYPES[tname]
        ExtensionUtil.register_aggregate_function(
            database,
            AggregateFunction(
                "extent", (ltype,), STBOX_TYPE,
                init=lambda: None,
                step=lambda state, value: (
                    value.stbox() if state is None
                    else state.union(value.stbox())
                ),
                final=lambda state: state,
            ),
        )
    ExtensionUtil.register_aggregate_function(
        database,
        AggregateFunction(
            "tcount", (TEMPORAL_TYPES["tgeompoint"],),
            TEMPORAL_TYPES["tint"],
            init=lambda: [],
            step=lambda state, value: state + [value],
            final=lambda state: tcount(state) if state else None,
        ),
    )
