"""The MobilityDuck ``TRTREE`` index on ``stbox`` columns (paper §4).

Implements both construction scenarios of §4.2:

* **Incremental (index-first)** — :meth:`RTreeIndex.append` is called when
  rows are inserted into an already-indexed table; it evaluates the index
  expression on the new chunk and feeds ``rtree_insert``.
* **Bulk (data-first)** — ``CREATE INDEX`` over existing data runs the
  three-phase pipeline: :meth:`RTreeIndex.sink` collects per-"thread"
  partitions, :meth:`RTreeIndex.combine` merges them, and
  :meth:`RTreeIndex.bulk_construct` packs the R-tree (STR).

Probing supports the spatial overlap operator ``&&`` between the indexed
stbox column and a constant stbox (§4.3); the query SRID is normalized to
the index SRID before the R-tree search, and candidates are rechecked by
the engine's residual filter.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .. import geo
from ..index import RTree
from ..meos import STBox
from ..observability import count as _count
from ..quack.catalog import IndexType, TableIndex
from ..quack.vector import DataChunk

#: Avoid a naming conflict with DuckDB-Spatial's RTREE (paper §4.1).
TYPE_NAME = "TRTREE"

_UNBOUNDED = 4e18


def stbox_to_rect(box: STBox) -> tuple[float, ...] | None:
    """stbox -> 3D rectangle (x, y, t), unbounded dims padded out."""
    if box is None:
        return None
    if box.has_x:
        xmin, ymin, xmax, ymax = box.xmin, box.ymin, box.xmax, box.ymax
    else:
        xmin = ymin = -_UNBOUNDED
        xmax = ymax = _UNBOUNDED
    if box.has_t:
        tmin, tmax = float(box.tspan.lower), float(box.tspan.upper)
    else:
        tmin, tmax = -_UNBOUNDED, _UNBOUNDED
    return (xmin, ymin, tmin, xmax, ymax, tmax)


def _coerce_stbox(value: Any) -> STBox | None:
    if value is None:
        return None
    if isinstance(value, STBox):
        return value
    if isinstance(value, str):
        return STBox.parse(value)
    if isinstance(value, geo.Geometry):
        return STBox.from_geometry(value)
    if hasattr(value, "stbox"):
        return value.stbox()
    return None


class RTreeIndex(TableIndex):
    """R-tree index instance attached to one stbox column."""

    SUPPORTED_OPS = ("&&", "@>", "<@")

    def __init__(self, name: str, table, column: str, database=None):
        super().__init__(name, table, column, TYPE_NAME)
        self._column_index = table.column_index(column)
        self._tree = RTree(dimensions=3)
        self._srid = 0
        #: thread-local collections of the bulk pipeline (phase 1)
        self._local_states: list[list[tuple[tuple[float, ...], int]]] = []
        self._build_from_table(table)

    # -- §4.2.2 bulk pipeline --------------------------------------------------------

    def _build_from_table(self, table) -> None:
        """CREATE INDEX over existing data: Sink -> Combine -> BulkConstruct."""
        self._local_states = []
        for chunk, row_ids in table.scan():
            # Each scan partition plays the role of one worker thread.
            self.sink(chunk, row_ids)
        entries = self.combine()
        self.bulk_construct(entries)

    def sink(self, chunk: DataChunk, row_ids: np.ndarray) -> None:
        """Phase 1: collect (rect, rowid) pairs into thread-local storage."""
        local: list[tuple[tuple[float, ...], int]] = []
        vector = chunk.column(self._column_index)
        for i in range(chunk.count):
            box = _coerce_stbox(vector.value(i))
            if box is None:
                continue
            box = self._normalize_srid(box)
            rect = stbox_to_rect(box)
            if rect is not None:
                local.append((rect, int(row_ids[i])))
        self._local_states.append(local)

    def combine(self) -> list[tuple[tuple[float, ...], int]]:
        """Phase 2: merge thread-local collections (mutex-protected in the
        paper; single-threaded here)."""
        merged: list[tuple[tuple[float, ...], int]] = []
        for local in self._local_states:
            merged.extend(local)
        self._local_states = []
        return merged

    def bulk_construct(
        self, entries: list[tuple[tuple[float, ...], int]]
    ) -> None:
        """Phase 3: STR-pack all entries into the R-tree."""
        if entries:
            self._tree = RTree.bulk_load(entries, dimensions=3)
        else:
            self._tree = RTree(dimensions=3)

    # -- §4.2.1 incremental append -----------------------------------------------------

    def append(self, chunk: DataChunk, row_ids: np.ndarray) -> None:
        """Evaluate the index expression on appended data and insert
        (the paper's ``RTreeIndex::Append`` -> ``Construct`` ->
        ``rtree_insert`` path)."""
        vector = chunk.column(self._column_index)
        for i in range(chunk.count):
            box = _coerce_stbox(vector.value(i))
            if box is None:
                continue
            box = self._normalize_srid(box)
            rect = stbox_to_rect(box)
            if rect is not None:
                self._tree.insert(rect, int(row_ids[i]))

    def rebuild(self, table) -> None:
        self._tree = RTree(dimensions=3)
        self._build_from_table(table)

    # -- §4.3 scan matching --------------------------------------------------------------

    def matches(self, op_name: str, column_name: str, constant: Any) -> bool:
        if column_name.lower() != self.column.lower():
            return False
        if op_name not in self.SUPPORTED_OPS:
            return False
        if constant is None:  # join probe: operand type unknown until run
            return True
        return _coerce_stbox(constant) is not None

    def probe(self, op_name: str, constant: Any) -> list[int] | None:
        box = _coerce_stbox(constant)
        if box is None:
            return None
        box = self._normalize_srid(box)
        rect = stbox_to_rect(box)
        if op_name in ("&&", "<@", "@>"):
            # Overlap search over bounding rectangles; the residual filter
            # rechecks the exact operator on the candidates.
            candidates = self._tree.search(rect)
            _count("index.trtree.probes")
            _count("index.trtree.candidates", len(candidates))
            return candidates
        return None

    def probe_batch(
        self, op_name: str, values: Sequence[Any]
    ) -> list[list[int] | None] | None:
        """Probe many values in one R-tree traversal (§4.3 batched).

        Entries whose value cannot be coerced to an stbox come back as
        None (no candidates); returns None overall only when the
        operator is unsupported, sending the caller to :meth:`probe`.
        """
        if op_name not in ("&&", "<@", "@>"):
            return None
        out: list[list[int] | None] = [None] * len(values)
        rects: list[tuple[float, ...]] = []
        slots: list[int] = []
        for i, value in enumerate(values):
            box = _coerce_stbox(value)
            if box is None:
                continue
            box = self._normalize_srid(box)
            rect = stbox_to_rect(box)
            if rect is None:
                continue
            rects.append(rect)
            slots.append(i)
        if rects:
            results = self._tree.search_batch(rects)
            for slot, candidates in zip(slots, results):
                out[slot] = candidates
            _count("index.trtree.batch_probes", len(rects))
            _count("index.trtree.batches")
            _count(
                "index.trtree.candidates",
                sum(len(c) for c in results),
            )
        return out

    def _normalize_srid(self, box: STBox) -> STBox:
        """SRID normalization of §4.2.2/§4.3: all entries and queries are
        brought to the SRID of the first indexed value."""
        if box.srid == 0:
            return box
        if self._srid == 0:
            self._srid = box.srid
            return box
        if box.srid != self._srid:
            return box.transform(self._srid)
        return box

    def __len__(self) -> int:
        return len(self._tree)


class RTreeModule:
    """Registration entry point (paper §4.1 ``RegisterRTreeIndex``)."""

    @staticmethod
    def register_rtree_index(database) -> None:
        index_type = IndexType(
            TYPE_NAME,
            lambda name, table, column, database=None: RTreeIndex(
                name, table, column, database
            ),
        )
        database.config.index_types.register(index_type)
