"""A miniature DuckDB-Spatial extension stand-in.

Registers the ``GEOMETRY`` and ``BOX_2D`` types, the ``ST_*`` functions the
paper's queries call, and the native ``RTREE`` index on GEOMETRY columns
that Figure 2 compares MobilityDuck's ``TRTREE`` against.

Cost model fidelity: GEOMETRY values are geometry objects, ``WKB_BLOB``
values are raw bytes.  Casting between them performs real WKB
encoding/decoding — reproducing the interop overhead the paper discusses
in §6.3/§7 (and that its ``*_gs`` functions avoid).
"""

from __future__ import annotations

from typing import Any


from .. import geo
from ..index import RTree
from ..quack.catalog import IndexType, TableIndex
from ..quack.extension import ExtensionUtil, make_user_type
from ..quack.functions import AggregateFunction, ScalarFunction
from ..quack.types import (
    BIGINT as BIGINT_,
    BLOB,
    BOOLEAN,
    DOUBLE,
    LIST,
    VARCHAR,
    LogicalType,
)

EXTENSION_NAME = "spatial"

GEOMETRY_TYPE = make_user_type("GEOMETRY", geo.Geometry)


class Box2D:
    """Value of the DuckDB ``BOX_2D`` type."""

    __slots__ = ("min_x", "min_y", "max_x", "max_y")

    def __init__(self, min_x: float, min_y: float, max_x: float, max_y: float):
        self.min_x = float(min_x)
        self.min_y = float(min_y)
        self.max_x = float(max_x)
        self.max_y = float(max_y)

    @classmethod
    def from_struct(cls, fields: dict) -> "Box2D":
        try:
            return cls(fields["min_x"], fields["min_y"], fields["max_x"],
                       fields["max_y"])
        except KeyError as exc:
            raise ValueError(f"BOX_2D struct missing field {exc}") from None

    def to_polygon(self) -> geo.Geometry:
        return geo.Polygon(
            [
                (self.min_x, self.min_y),
                (self.max_x, self.min_y),
                (self.max_x, self.max_y),
                (self.min_x, self.max_y),
            ]
        )

    def __repr__(self) -> str:
        return (
            f"BOX_2D({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
        )


BOX2D_TYPE = make_user_type("BOX_2D", Box2D)


def _as_geometry(value: Any) -> geo.Geometry:
    if isinstance(value, geo.Geometry):
        return value
    if isinstance(value, Box2D):
        return value.to_polygon()
    if isinstance(value, (bytes, bytearray)):
        return geo.decode_wkb(value)
    if isinstance(value, str):
        return geo.parse_wkt(value)
    raise ValueError(f"cannot interpret {type(value).__name__} as GEOMETRY")


class SpatialRTreeIndex(TableIndex):
    """DuckDB-Spatial's native RTREE index over GEOMETRY bounding boxes."""

    SUPPORTED_OPS = ("&&", "st_intersects")

    def __init__(self, name: str, table, column: str, database=None):
        super().__init__(name, table, column, "RTREE")
        self._column_index = table.column_index(column)
        self._tree = RTree(dimensions=2)
        self._bulk_build(table)

    def _bulk_build(self, table) -> None:
        items = []
        for chunk, row_ids in table.scan():
            vector = chunk.column(self._column_index)
            for i in range(chunk.count):
                value = vector.value(i)
                if value is None or value.is_empty():
                    continue
                items.append((value.bounds(), int(row_ids[i])))
        if items:
            self._tree = RTree.bulk_load(items, dimensions=2)

    def append(self, chunk, row_ids) -> None:
        vector = chunk.column(self._column_index)
        for i in range(chunk.count):
            value = vector.value(i)
            if value is None or value.is_empty():
                continue
            self._tree.insert(value.bounds(), int(row_ids[i]))

    def rebuild(self, table) -> None:
        self._tree = RTree(dimensions=2)
        self._bulk_build(table)

    def matches(self, op_name: str, column_name: str, constant: Any) -> bool:
        if column_name.lower() != self.column.lower():
            return False
        if op_name.lower() not in self.SUPPORTED_OPS:
            return False
        if constant is None:  # join probe: operand type unknown until run
            return True
        try:
            _as_geometry(constant)
            return True
        except ValueError:
            return False

    def probe(self, op_name: str, constant: Any) -> list[int] | None:
        try:
            query = _as_geometry(constant)
        except ValueError:
            return None
        return self._tree.search(query.bounds())


def load(database) -> None:
    """Register the spatial types, functions and RTREE index type."""
    ExtensionUtil.register_type(database, "GEOMETRY", GEOMETRY_TYPE)
    ExtensionUtil.register_type(database, "BOX_2D", BOX2D_TYPE)

    # Casts: WKT text and WKB bytes to/from GEOMETRY; struct to BOX_2D.
    ExtensionUtil.register_cast_function(
        database, VARCHAR, GEOMETRY_TYPE, geo.parse_wkt
    )
    ExtensionUtil.register_cast_function(
        database, GEOMETRY_TYPE, VARCHAR,
        lambda g: geo.format_ewkt(g)
    )
    ExtensionUtil.register_cast_function(
        database, BLOB, GEOMETRY_TYPE, geo.decode_wkb
    )
    ExtensionUtil.register_cast_function(
        database, GEOMETRY_TYPE, BLOB, geo.encode_wkb
    )
    ExtensionUtil.register_cast_function(
        database, LogicalType("STRUCT", "object"), BOX2D_TYPE,
        Box2D.from_struct,
    )

    def register(name, arg_types, return_type, fn):
        ExtensionUtil.register_function(
            database, ScalarFunction(name, arg_types, return_type,
                                     fn_scalar=fn)
        )

    register("ST_GeomFromText", (VARCHAR,), GEOMETRY_TYPE, geo.parse_wkt)
    register("ST_AsText", (GEOMETRY_TYPE,), VARCHAR,
             lambda g: geo.format_wkt(_as_geometry(g)))
    register("ST_AsText", (BLOB,), VARCHAR,
             lambda b: geo.format_wkt(geo.decode_wkb(b)))
    register("ST_AsEWKT", (GEOMETRY_TYPE,), VARCHAR,
             lambda g: geo.format_ewkt(_as_geometry(g)))
    register("ST_AsWKB", (GEOMETRY_TYPE,), BLOB,
             lambda g: geo.encode_wkb(_as_geometry(g)))
    register("ST_GeomFromWKB", (BLOB,), GEOMETRY_TYPE, geo.decode_wkb)

    for left in (GEOMETRY_TYPE, BOX2D_TYPE):
        for right in (GEOMETRY_TYPE, BOX2D_TYPE):
            register(
                "ST_Intersects", (left, right), BOOLEAN,
                lambda a, b: geo.intersects(_as_geometry(a),
                                            _as_geometry(b)),
            )
    register("ST_Distance", (GEOMETRY_TYPE, GEOMETRY_TYPE), DOUBLE,
             lambda a, b: geo.distance(_as_geometry(a), _as_geometry(b)))
    register("ST_DWithin", (GEOMETRY_TYPE, GEOMETRY_TYPE, DOUBLE), BOOLEAN,
             lambda a, b, d: geo.dwithin(_as_geometry(a), _as_geometry(b), d))
    register("ST_Contains", (GEOMETRY_TYPE, GEOMETRY_TYPE), BOOLEAN,
             lambda a, b: geo.contains(_as_geometry(a), _as_geometry(b)))
    register("ST_Length", (GEOMETRY_TYPE,), DOUBLE,
             lambda g: geo.length(_as_geometry(g)))
    register("ST_Area", (GEOMETRY_TYPE,), DOUBLE,
             lambda g: sum(
                 p.area() for p in geo.flatten(_as_geometry(g))
                 if isinstance(p, geo.Polygon)
             ))
    register("ST_Centroid", (GEOMETRY_TYPE,), GEOMETRY_TYPE,
             lambda g: geo.centroid(_as_geometry(g)))
    register("ST_ConvexHull", (GEOMETRY_TYPE,), GEOMETRY_TYPE,
             lambda g: geo.convex_hull(_as_geometry(g)))
    register("ST_X", (GEOMETRY_TYPE,), DOUBLE, lambda g: g.x)
    register("ST_Y", (GEOMETRY_TYPE,), DOUBLE, lambda g: g.y)
    register("ST_Point", (DOUBLE, DOUBLE), GEOMETRY_TYPE,
             lambda x, y: geo.Point(x, y))
    register("ST_Transform", (GEOMETRY_TYPE, VARCHAR, VARCHAR), GEOMETRY_TYPE,
             lambda g, src, dst: geo.transform(
                 _as_geometry(g).with_srid(int(src.split(":")[-1])),
                 int(dst.split(":")[-1]),
             ))
    register("ST_SetSRID", (GEOMETRY_TYPE, BIGINT_), GEOMETRY_TYPE,
             lambda g, srid: _as_geometry(g).with_srid(int(srid)))

    # ST_Collect over a LIST (DuckDB's signature used in paper Query 5).
    register(
        "ST_Collect", (LIST,), GEOMETRY_TYPE,
        lambda items: geo.collect(
            [_as_geometry(v) for v in items if v is not None]
        ),
    )
    # Aggregate form for convenience (PostGIS-style usage).
    ExtensionUtil.register_aggregate_function(
        database,
        AggregateFunction(
            "ST_Collect_Agg", (GEOMETRY_TYPE,), GEOMETRY_TYPE,
            init=lambda: [],
            step=lambda state, value: state + [value],
            final=lambda state: geo.collect(state) if state else None,
        ),
    )
    ExtensionUtil.register_aggregate_function(
        database,
        AggregateFunction(
            "ST_Extent", (GEOMETRY_TYPE,), BOX2D_TYPE,
            init=lambda: None,
            step=lambda state, value: _extend_box(state, value),
            final=lambda state: state,
        ),
    )

    ExtensionUtil.register_index_type(
        database,
        IndexType(
            "RTREE",
            lambda name, table, column, database: SpatialRTreeIndex(
                name, table, column, database
            ),
        ),
    )


def _extend_box(state: Box2D | None, value: geo.Geometry) -> Box2D:
    xmin, ymin, xmax, ymax = _as_geometry(value).bounds()
    if state is None:
        return Box2D(xmin, ymin, xmax, ymax)
    return Box2D(
        min(state.min_x, xmin),
        min(state.min_y, ymin),
        max(state.max_x, xmax),
        max(state.max_y, ymax),
    )
