"""MobilityDuck user-defined types (paper §3.3, Table 1).

Every MEOS type is registered in the engine as a BLOB-backed user type
under its MobilityDB alias.  The ``TYPE_COVERAGE`` table mirrors the
paper's Table 1: types marked ``"duck"`` are registered by MobilityDuck
(green cells), ``"mobilitydb"`` exist upstream only (white), and ``None``
is not applicable (gray).
"""

from __future__ import annotations

from typing import Any, Callable

from .. import meos
from ..meos.setcls import Set
from ..meos.span import Span
from ..meos.spanset import SpanSet
from ..quack.extension import make_user_type
from ..quack.types import (
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    TIMESTAMP,
    VARCHAR,
    LogicalType,
)

# -- set / span / spanset types ------------------------------------------------

SET_TYPES: dict[str, LogicalType] = {
    name: make_user_type(name, Set)
    for name in (
        "intset", "bigintset", "floatset", "textset", "dateset",
        "tstzset", "geomset",
    )
}
SPAN_TYPES: dict[str, LogicalType] = {
    name: make_user_type(name, Span)
    for name in ("intspan", "bigintspan", "floatspan", "datespan", "tstzspan")
}
SPANSET_TYPES: dict[str, LogicalType] = {
    name: make_user_type(name, SpanSet)
    for name in (
        "intspanset", "bigintspanset", "floatspanset", "datespanset",
        "tstzspanset",
    )
}

# -- temporal types --------------------------------------------------------------

TEMPORAL_TYPES: dict[str, LogicalType] = {
    name: make_user_type(name, meos.Temporal)
    for name in ("tbool", "tint", "tfloat", "ttext", "tgeompoint",
                 "tgeometry")
}

# -- box types ---------------------------------------------------------------------

TBOX_TYPE = make_user_type("TBOX", meos.TBox)
STBOX_TYPE = make_user_type("STBOX", meos.STBox)

#: GSERIALIZED: MEOS' native geometry payload carried through the engine as
#: a BLOB without WKB round-trips (paper §6.3, the ``*_gs`` optimization).
GSERIALIZED_TYPE = make_user_type("GSERIALIZED", object)

ALL_TYPES: dict[str, LogicalType] = {
    **SET_TYPES,
    **SPAN_TYPES,
    **SPANSET_TYPES,
    **TEMPORAL_TYPES,
    "tbox": TBOX_TYPE,
    "stbox": STBOX_TYPE,
    "gserialized": GSERIALIZED_TYPE,
}

#: Paper Table 1 coverage matrix: base type -> template -> status.
TYPE_COVERAGE: dict[str, dict[str, str | None]] = {
    "bool": {"set": None, "span": None, "spanset": None, "temporal": "duck"},
    "text": {"set": "duck", "span": None, "spanset": None,
             "temporal": "duck"},
    "integer": {"set": "duck", "span": "duck", "spanset": "duck",
                "temporal": "duck"},
    "bigint": {"set": "duck", "span": "duck", "spanset": "duck",
               "temporal": None},
    "float": {"set": "duck", "span": "duck", "spanset": "duck",
              "temporal": "duck"},
    "date": {"set": "duck", "span": "duck", "spanset": "duck",
             "temporal": None},
    "timestamptz": {"set": "duck", "span": "duck", "spanset": "duck",
                    "temporal": None},
    "geometry": {"set": "duck", "span": None, "spanset": None,
                 "temporal": "duck"},
    "geography": {"set": "mobilitydb", "span": None, "spanset": None,
                  "temporal": "mobilitydb"},
    "pose": {"set": "mobilitydb", "span": None, "spanset": None,
             "temporal": "mobilitydb"},
    "npoint": {"set": "mobilitydb", "span": None, "spanset": None,
               "temporal": "mobilitydb"},
    "cbuffer": {"set": "mobilitydb", "span": None, "spanset": None,
                "temporal": "mobilitydb"},
}

# -- parse/format dispatch ------------------------------------------------------------

PARSERS: dict[str, Callable[[str], Any]] = {
    **{name: (lambda text, _n=name: meos.parse_set(text, _n))
       for name in SET_TYPES},
    **{name: (lambda text, _n=name: meos.parse_span(text, _n))
       for name in SPAN_TYPES},
    **{name: (lambda text, _n=name: meos.parse_spanset(text, _n))
       for name in SPANSET_TYPES},
    **{name: (lambda text, _n=name: meos.parse_temporal(
        text, meos.temporal_type(_n)))
       for name in TEMPORAL_TYPES},
    "tbox": meos.TBox.parse,
    "stbox": meos.STBox.parse,
}

#: Engine-level type of each base type's values (for accessor signatures).
BASE_VALUE_TYPES: dict[str, LogicalType] = {
    "bool": BOOLEAN,
    "integer": BIGINT,
    "bigint": BIGINT,
    "float": DOUBLE,
    "text": VARCHAR,
    "date": DATE,
    "timestamptz": TIMESTAMP,
}

SET_BASE: dict[str, str] = {
    "intset": "integer",
    "bigintset": "bigint",
    "floatset": "float",
    "textset": "text",
    "dateset": "date",
    "tstzset": "timestamptz",
    "geomset": "geometry",
}
SPAN_BASE: dict[str, str] = {
    "intspan": "integer",
    "bigintspan": "bigint",
    "floatspan": "float",
    "datespan": "date",
    "tstzspan": "timestamptz",
}
SPANSET_BASE: dict[str, str] = {
    "intspanset": "integer",
    "bigintspanset": "bigint",
    "floatspanset": "float",
    "datespanset": "date",
    "tstzspanset": "timestamptz",
}
TEMPORAL_BASE: dict[str, str] = {
    "tbool": "bool",
    "tint": "integer",
    "tfloat": "float",
    "ttext": "text",
    "tgeompoint": "geometry",
    "tgeometry": "geometry",
}
