"""repro.geo — a self-contained planar geometry kernel.

Stands in for GEOS/PostGIS: geometry value types, WKT/EWKT/WKB
serialization, spatial predicates and measures, and SRID reprojection.
"""

from .algorithms import (
    centroid,
    convex_hull,
    clip_segment_to_geometry,
    clip_segment_to_polygon,
    contains,
    distance,
    dwithin,
    intersects,
    length,
    point_in_polygon,
)
from .crs import known_srids, register_projection, transform, transform_coord
from .geometry import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    collect,
    flatten,
)
from .wkb import decode_wkb, encode_wkb
from .wkt import format_ewkt, format_wkt, parse_wkt

__all__ = [
    "Geometry",
    "GeometryCollection",
    "GeometryError",
    "LineString",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "centroid",
    "clip_segment_to_geometry",
    "clip_segment_to_polygon",
    "collect",
    "contains",
    "convex_hull",
    "decode_wkb",
    "distance",
    "dwithin",
    "encode_wkb",
    "flatten",
    "format_ewkt",
    "format_wkt",
    "intersects",
    "known_srids",
    "length",
    "parse_wkt",
    "point_in_polygon",
    "register_projection",
    "transform",
    "transform_coord",
]
