"""Computational-geometry predicates and measures.

All algorithms are exact-enough planar implementations with an epsilon
tolerance for boundary cases; they back the PostGIS-style functions
(``ST_Distance``, ``ST_Intersects``, ``ST_Contains``, …) and the MEOS
restriction operator ``atGeometry`` (segment-to-polygon clipping).
"""

from __future__ import annotations

import math
from typing import Sequence

from .geometry import (
    Geometry,
    GeometryError,
    LineString,
    Point,
    Polygon,
    flatten,
)

EPSILON = 1e-9

Coord = tuple[float, float]


# ---------------------------------------------------------------------------
# Segment primitives
# ---------------------------------------------------------------------------


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Distance from point ``p`` to segment ``ab``."""
    ax, ay = a
    bx, by = b
    px, py = p
    dx, dy = bx - ax, by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 <= EPSILON * EPSILON:
        return math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len2
    t = min(1.0, max(0.0, t))
    return math.hypot(px - (ax + t * dx), py - (ay + t * dy))


def segment_segment_distance(a: Coord, b: Coord, c: Coord, d: Coord) -> float:
    """Distance between segments ``ab`` and ``cd`` (0 if they intersect)."""
    if segments_intersect(a, b, c, d):
        return 0.0
    return min(
        point_segment_distance(a, c, d),
        point_segment_distance(b, c, d),
        point_segment_distance(c, a, b),
        point_segment_distance(d, a, b),
    )


def _orient(a: Coord, b: Coord, c: Coord) -> float:
    return (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])


def _on_segment(a: Coord, b: Coord, p: Coord) -> bool:
    return (
        min(a[0], b[0]) - EPSILON <= p[0] <= max(a[0], b[0]) + EPSILON
        and min(a[1], b[1]) - EPSILON <= p[1] <= max(a[1], b[1]) + EPSILON
    )


def segments_intersect(a: Coord, b: Coord, c: Coord, d: Coord) -> bool:
    """True if closed segments ``ab`` and ``cd`` share at least one point."""
    o1 = _orient(a, b, c)
    o2 = _orient(a, b, d)
    o3 = _orient(c, d, a)
    o4 = _orient(c, d, b)
    if ((o1 > EPSILON and o2 < -EPSILON) or (o1 < -EPSILON and o2 > EPSILON)) and (
        (o3 > EPSILON and o4 < -EPSILON) or (o3 < -EPSILON and o4 > EPSILON)
    ):
        return True
    if abs(o1) <= EPSILON and _on_segment(a, b, c):
        return True
    if abs(o2) <= EPSILON and _on_segment(a, b, d):
        return True
    if abs(o3) <= EPSILON and _on_segment(c, d, a):
        return True
    if abs(o4) <= EPSILON and _on_segment(c, d, b):
        return True
    return False


def segment_intersection_params(
    a: Coord, b: Coord, c: Coord, d: Coord
) -> list[float]:
    """Parameters ``t`` in [0, 1] along ``ab`` where it crosses segment ``cd``.

    Collinear overlaps contribute the parameter range endpoints of the
    overlapping portion.
    """
    ax, ay = a
    bx, by = b
    cx, cy = c
    dx_, dy_ = d
    r = (bx - ax, by - ay)
    s = (dx_ - cx, dy_ - cy)
    denom = r[0] * s[1] - r[1] * s[0]
    qp = (cx - ax, cy - ay)
    if abs(denom) > EPSILON:
        t = (qp[0] * s[1] - qp[1] * s[0]) / denom
        u = (qp[0] * r[1] - qp[1] * r[0]) / denom
        if -EPSILON <= t <= 1 + EPSILON and -EPSILON <= u <= 1 + EPSILON:
            return [min(1.0, max(0.0, t))]
        return []
    # Parallel: check collinearity.
    if abs(qp[0] * r[1] - qp[1] * r[0]) > EPSILON:
        return []
    r_len2 = r[0] * r[0] + r[1] * r[1]
    if r_len2 <= EPSILON * EPSILON:
        return []
    t0 = (qp[0] * r[0] + qp[1] * r[1]) / r_len2
    t1 = t0 + (s[0] * r[0] + s[1] * r[1]) / r_len2
    lo, hi = min(t0, t1), max(t0, t1)
    lo = max(0.0, lo)
    hi = min(1.0, hi)
    if lo > hi:
        return []
    return [lo, hi]


# ---------------------------------------------------------------------------
# Point-in-polygon (even-odd rule, boundary counts as inside)
# ---------------------------------------------------------------------------


def point_in_ring(p: Coord, ring: Sequence[Coord]) -> bool:
    px, py = p
    inside = False
    for (x0, y0), (x1, y1) in zip(ring, ring[1:]):
        if point_segment_distance(p, (x0, y0), (x1, y1)) <= EPSILON:
            return True  # on the boundary
        if (y0 > py) != (y1 > py):
            x_cross = x0 + (py - y0) * (x1 - x0) / (y1 - y0)
            if px < x_cross:
                inside = not inside
    return inside


def point_in_polygon(p: Coord, polygon: Polygon) -> bool:
    if not point_in_ring(p, polygon.shell):
        return False
    for hole in polygon.holes:
        # Points strictly inside a hole are outside; hole boundary is inside.
        on_boundary = any(
            point_segment_distance(p, a, b) <= EPSILON
            for a, b in zip(hole, hole[1:])
        )
        if not on_boundary and point_in_ring(p, hole):
            return False
    return True


# ---------------------------------------------------------------------------
# Pairwise primitive predicates
# ---------------------------------------------------------------------------


def _segments_of(geom: Geometry):
    if isinstance(geom, LineString):
        yield from geom.segments()
    elif isinstance(geom, Polygon):
        for ring in geom.rings():
            yield from zip(ring, ring[1:])


def _primitive_intersects(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, Point) and isinstance(b, Point):
        return a.distance_to(b) <= EPSILON
    if isinstance(a, Point):
        return _primitive_intersects(b, a)
    if isinstance(b, Point):
        p = (b.x, b.y)
        if isinstance(a, LineString):
            return any(
                point_segment_distance(p, s, e) <= EPSILON
                for s, e in a.segments()
            )
        if isinstance(a, Polygon):
            return point_in_polygon(p, a)
        raise GeometryError(f"unsupported geometry {a.geom_type}")
    # line/line, line/polygon, polygon/polygon
    for s1 in _segments_of(a):
        for s2 in _segments_of(b):
            if segments_intersect(s1[0], s1[1], s2[0], s2[1]):
                return True
    # Containment without boundary crossing.
    if isinstance(a, Polygon):
        probe = next(b.coordinates(), None)
        if probe is not None and point_in_polygon(probe, a):
            return True
    if isinstance(b, Polygon):
        probe = next(a.coordinates(), None)
        if probe is not None and point_in_polygon(probe, b):
            return True
    return False


def _primitive_distance(a: Geometry, b: Geometry) -> float:
    if _primitive_intersects(a, b):
        return 0.0
    # Disjoint segments attain their minimum distance at a vertex of one of
    # them, so vertex-to-segment distances both ways are exact — and they
    # vectorize.
    coords_a = list(a.coordinates())
    coords_b = list(b.coordinates())
    segs_a = list(_segments_of(a))
    segs_b = list(_segments_of(b))
    if len(coords_a) * max(1, len(segs_b)) >= 64:
        return min(
            _points_to_segments(coords_a, segs_b),
            _points_to_segments(coords_b, segs_a),
        )
    best = math.inf
    for p in coords_a:
        if segs_b:
            for s, e in segs_b:
                best = min(best, point_segment_distance(p, s, e))
        else:
            for q in coords_b:
                best = min(best, math.hypot(p[0] - q[0], p[1] - q[1]))
    for q in coords_b:
        for s, e in segs_a:
            best = min(best, point_segment_distance(q, s, e))
    return best


def _points_to_segments(points, segments) -> float:
    """Vectorized min distance from a point set to a segment set."""
    import numpy as np

    pts = np.asarray(points, dtype=np.float64)
    if not segments:
        return math.inf
    starts = np.asarray([s for s, _ in segments], dtype=np.float64)
    ends = np.asarray([e for _, e in segments], dtype=np.float64)
    delta = ends - starts
    len2 = (delta * delta).sum(axis=1)
    safe_len2 = np.where(len2 > 0.0, len2, 1.0)
    best = math.inf
    # Chunk the point axis to bound the (n, m, 2) intermediate.
    chunk = max(1, int(4_000_000 / max(1, len(segments))))
    for i in range(0, len(pts), chunk):
        block = pts[i : i + chunk]
        diff = block[:, None, :] - starts[None, :, :]
        t = np.clip((diff * delta[None, :, :]).sum(axis=2) / safe_len2,
                    0.0, 1.0)
        proj = starts[None, :, :] + t[..., None] * delta[None, :, :]
        d2 = ((block[:, None, :] - proj) ** 2).sum(axis=2)
        best = min(best, float(np.sqrt(d2.min())))
    return best


# ---------------------------------------------------------------------------
# Public geometry predicates / measures
# ---------------------------------------------------------------------------


def _bounds_disjoint(a: Geometry, b: Geometry, pad: float = 0.0) -> bool:
    if a.is_empty() or b.is_empty():
        return True
    ax0, ay0, ax1, ay1 = a.bounds()
    bx0, by0, bx1, by1 = b.bounds()
    return (
        ax1 + pad < bx0
        or bx1 + pad < ax0
        or ay1 + pad < by0
        or by1 + pad < ay0
    )


def intersects(a: Geometry, b: Geometry) -> bool:
    """PostGIS-style ``ST_Intersects``."""
    if _bounds_disjoint(a, b):
        return False
    for pa in flatten(a):
        for pb in flatten(b):
            if _bounds_disjoint(pa, pb):
                continue
            if _primitive_intersects(pa, pb):
                return True
    return False


def distance(a: Geometry, b: Geometry) -> float:
    """PostGIS-style ``ST_Distance`` (planar minimum distance).

    Primitive pairs are visited in order of their bounding-box distance
    (branch-and-bound), and line/line distances are vectorized, so large
    collections (e.g. collected trajectories, paper Query 5) stay fast.
    """
    if a.is_empty() or b.is_empty():
        raise GeometryError("distance to an empty geometry is undefined")
    parts_a = [g for g in flatten(a) if not g.is_empty()]
    parts_b = [g for g in flatten(b) if not g.is_empty()]
    pairs = []
    for pa in parts_a:
        for pb in parts_b:
            pairs.append((_bounds_distance(pa, pb), pa, pb))
    pairs.sort(key=lambda item: item[0])
    best = math.inf
    for lower_bound, pa, pb in pairs:
        if lower_bound >= best:
            break
        best = min(best, _primitive_distance(pa, pb))
        if best == 0.0:
            return 0.0
    return best


def _bounds_distance(a: Geometry, b: Geometry) -> float:
    ax0, ay0, ax1, ay1 = a.bounds()
    bx0, by0, bx1, by1 = b.bounds()
    dx = max(bx0 - ax1, ax0 - bx1, 0.0)
    dy = max(by0 - ay1, ay0 - by1, 0.0)
    return math.hypot(dx, dy)


def dwithin(a: Geometry, b: Geometry, dist: float) -> bool:
    """True if the geometries come within ``dist`` of each other."""
    if _bounds_disjoint(a, b, pad=dist):
        return False
    return distance(a, b) <= dist + EPSILON


def contains(container: Geometry, item: Geometry) -> bool:
    """Simplified ``ST_Contains``: every vertex of ``item`` lies inside
    ``container`` (boundary included) and the geometries intersect."""
    if container.is_empty() or item.is_empty():
        return False
    polys = [g for g in flatten(container) if isinstance(g, Polygon)]
    if not polys:
        return False
    for coord in item.coordinates():
        if not any(point_in_polygon(coord, poly) for poly in polys):
            return False
    return True


def length(geom: Geometry) -> float:
    """Total length of all linear components."""
    total = 0.0
    for g in flatten(geom):
        if isinstance(g, LineString):
            total += g.length()
    return total


def convex_hull(geom: Geometry) -> Geometry:
    """Convex hull via Andrew's monotone chain.

    Returns a Polygon for 3+ non-collinear points, a LineString for
    collinear inputs, or the Point itself."""
    points = sorted(set(geom.coordinates()))
    if not points:
        raise GeometryError("convex hull of empty geometry")
    if len(points) == 1:
        return Point(points[0][0], points[0][1], geom.srid)

    def half(iterable):
        chain: list[Coord] = []
        for p in iterable:
            while len(chain) >= 2 and _orient(chain[-2], chain[-1], p) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = half(points)
    upper = half(reversed(points))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return LineString([points[0], points[-1]], geom.srid)
    return Polygon(hull, srid=geom.srid)


def centroid(geom: Geometry) -> Point:
    """Centroid of the highest-dimension components (simplified)."""
    polys = [g for g in flatten(geom) if isinstance(g, Polygon)]
    if polys:
        wx = wy = wsum = 0.0
        for poly in polys:
            c = poly.centroid()
            w = poly.area() or 1.0
            wx += c.x * w
            wy += c.y * w
            wsum += w
        return Point(wx / wsum, wy / wsum, geom.srid)
    coords = list(geom.coordinates())
    if not coords:
        raise GeometryError("centroid of empty geometry")
    return Point(
        sum(c[0] for c in coords) / len(coords),
        sum(c[1] for c in coords) / len(coords),
        geom.srid,
    )


# ---------------------------------------------------------------------------
# Segment-polygon clipping (for MEOS atGeometry)
# ---------------------------------------------------------------------------


def clip_segment_to_polygon(
    a: Coord, b: Coord, polygon: Polygon
) -> list[tuple[float, float]]:
    """Parameter intervals of segment ``ab`` that lie inside ``polygon``.

    Returns a sorted list of ``(t0, t1)`` with ``0 <= t0 <= t1 <= 1``;
    degenerate touch points appear as zero-width intervals.
    """
    cuts = {0.0, 1.0}
    for ring in polygon.rings():
        for c, d in zip(ring, ring[1:]):
            for t in segment_intersection_params(a, b, c, d):
                cuts.add(min(1.0, max(0.0, t)))
    params = sorted(cuts)
    intervals: list[tuple[float, float]] = []
    for t0, t1 in zip(params, params[1:]):
        tm = (t0 + t1) / 2.0
        mid = (a[0] + tm * (b[0] - a[0]), a[1] + tm * (b[1] - a[1]))
        if point_in_polygon(mid, polygon):
            if intervals and abs(intervals[-1][1] - t0) <= EPSILON:
                intervals[-1] = (intervals[-1][0], t1)
            else:
                intervals.append((t0, t1))
    if not intervals:
        # The segment may only touch the polygon at isolated points.
        touches = [
            t
            for t in params
            if point_in_polygon(
                (a[0] + t * (b[0] - a[0]), a[1] + t * (b[1] - a[1])), polygon
            )
        ]
        intervals = [(t, t) for t in touches]
    return intervals


def clip_segment_to_geometry(
    a: Coord, b: Coord, geom: Geometry
) -> list[tuple[float, float]]:
    """Union of clip intervals against every polygon in ``geom``; for point
    geometries, zero-width intervals where the segment passes through."""
    intervals: list[tuple[float, float]] = []
    for g in flatten(geom):
        if isinstance(g, Polygon):
            intervals.extend(clip_segment_to_polygon(a, b, g))
        elif isinstance(g, Point):
            t = _project_param(a, b, (g.x, g.y))
            if t is not None:
                intervals.append((t, t))
    intervals.sort()
    merged: list[tuple[float, float]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1] + EPSILON:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def _project_param(a: Coord, b: Coord, p: Coord) -> float | None:
    """Parameter of ``p`` along segment ``ab`` if ``p`` lies on it."""
    if point_segment_distance(p, a, b) > EPSILON:
        return None
    dx, dy = b[0] - a[0], b[1] - a[1]
    len2 = dx * dx + dy * dy
    if len2 <= EPSILON * EPSILON:
        return 0.0
    t = ((p[0] - a[0]) * dx + (p[1] - a[1]) * dy) / len2
    return min(1.0, max(0.0, t))


__all__ = [
    "EPSILON",
    "centroid",
    "clip_segment_to_geometry",
    "clip_segment_to_polygon",
    "contains",
    "distance",
    "dwithin",
    "intersects",
    "length",
    "point_in_polygon",
    "point_in_ring",
    "point_segment_distance",
    "segment_intersection_params",
    "segment_segment_distance",
    "segments_intersect",
]
