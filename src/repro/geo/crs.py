"""Coordinate reference systems and datum-free reprojection.

A small projection engine standing in for PROJ: every registered SRID maps
to a projection with forward (lon/lat -> x/y) and inverse transforms on the
WGS84 ellipsoid.  ``transform`` pipes a geometry through
``source.inverse -> target.forward``.

Registered systems (the ones the paper and the BerlinMOD-Hanoi generator
touch):

====== ===========================================================
SRID   System
====== ===========================================================
4326   WGS84 geographic (lon/lat degrees)
3857   Web Mercator (spherical)
3812   Belgian Lambert 2008 (Lambert conformal conic, 2SP)
32648  WGS84 / UTM zone 48N (transverse Mercator — covers Hanoi)
3405   VN-2000 / UTM zone 48N (treated as WGS84/UTM 48N here; the
       datum shift is metres-level and irrelevant to the benchmark)
====== ===========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from .geometry import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

# WGS84 ellipsoid
_A = 6378137.0
_F = 1.0 / 298.257223563
_E2 = _F * (2.0 - _F)
_E = math.sqrt(_E2)


@dataclass(frozen=True)
class Projection:
    """A pair of coordinate transforms to/from WGS84 lon/lat degrees."""

    srid: int
    name: str
    forward: Callable[[float, float], tuple[float, float]]
    inverse: Callable[[float, float], tuple[float, float]]


def _identity(lon: float, lat: float) -> tuple[float, float]:
    return (lon, lat)


def _web_mercator_forward(lon: float, lat: float) -> tuple[float, float]:
    lat = min(85.06, max(-85.06, lat))
    x = _A * math.radians(lon)
    y = _A * math.log(math.tan(math.pi / 4.0 + math.radians(lat) / 2.0))
    return (x, y)


def _web_mercator_inverse(x: float, y: float) -> tuple[float, float]:
    lon = math.degrees(x / _A)
    lat = math.degrees(2.0 * math.atan(math.exp(y / _A)) - math.pi / 2.0)
    return (lon, lat)


def _make_transverse_mercator(
    lon0_deg: float,
    k0: float = 0.9996,
    false_easting: float = 500000.0,
    false_northing: float = 0.0,
):
    """Ellipsoidal transverse Mercator (Snyder 1987, eqs. 8-9..8-17)."""
    lon0 = math.radians(lon0_deg)
    ep2 = _E2 / (1.0 - _E2)

    def _meridian_arc(lat: float) -> float:
        return _A * (
            (1 - _E2 / 4 - 3 * _E2**2 / 64 - 5 * _E2**3 / 256) * lat
            - (3 * _E2 / 8 + 3 * _E2**2 / 32 + 45 * _E2**3 / 1024)
            * math.sin(2 * lat)
            + (15 * _E2**2 / 256 + 45 * _E2**3 / 1024) * math.sin(4 * lat)
            - (35 * _E2**3 / 3072) * math.sin(6 * lat)
        )

    def forward(lon_deg: float, lat_deg: float) -> tuple[float, float]:
        lon = math.radians(lon_deg)
        lat = math.radians(lat_deg)
        sin_lat = math.sin(lat)
        cos_lat = math.cos(lat)
        tan_lat = math.tan(lat)
        n = _A / math.sqrt(1 - _E2 * sin_lat * sin_lat)
        t = tan_lat * tan_lat
        c = ep2 * cos_lat * cos_lat
        a_term = cos_lat * (lon - lon0)
        m = _meridian_arc(lat)
        x = k0 * n * (
            a_term
            + (1 - t + c) * a_term**3 / 6
            + (5 - 18 * t + t * t + 72 * c - 58 * ep2) * a_term**5 / 120
        )
        y = k0 * (
            m
            + n
            * tan_lat
            * (
                a_term**2 / 2
                + (5 - t + 9 * c + 4 * c * c) * a_term**4 / 24
                + (61 - 58 * t + t * t + 600 * c - 330 * ep2)
                * a_term**6
                / 720
            )
        )
        return (x + false_easting, y + false_northing)

    e1 = (1 - math.sqrt(1 - _E2)) / (1 + math.sqrt(1 - _E2))

    def inverse(x: float, y: float) -> tuple[float, float]:
        x -= false_easting
        y -= false_northing
        m = y / k0
        mu = m / (_A * (1 - _E2 / 4 - 3 * _E2**2 / 64 - 5 * _E2**3 / 256))
        lat1 = (
            mu
            + (3 * e1 / 2 - 27 * e1**3 / 32) * math.sin(2 * mu)
            + (21 * e1**2 / 16 - 55 * e1**4 / 32) * math.sin(4 * mu)
            + (151 * e1**3 / 96) * math.sin(6 * mu)
            + (1097 * e1**4 / 512) * math.sin(8 * mu)
        )
        sin1 = math.sin(lat1)
        cos1 = math.cos(lat1)
        tan1 = math.tan(lat1)
        c1 = ep2 * cos1 * cos1
        t1 = tan1 * tan1
        n1 = _A / math.sqrt(1 - _E2 * sin1 * sin1)
        r1 = _A * (1 - _E2) / (1 - _E2 * sin1 * sin1) ** 1.5
        d = x / (n1 * k0)
        lat = lat1 - (n1 * tan1 / r1) * (
            d * d / 2
            - (5 + 3 * t1 + 10 * c1 - 4 * c1 * c1 - 9 * ep2) * d**4 / 24
            + (61 + 90 * t1 + 298 * c1 + 45 * t1 * t1 - 252 * ep2 - 3 * c1 * c1)
            * d**6
            / 720
        )
        lon = lon0 + (
            d
            - (1 + 2 * t1 + c1) * d**3 / 6
            + (5 - 2 * c1 + 28 * t1 - 3 * c1 * c1 + 8 * ep2 + 24 * t1 * t1)
            * d**5
            / 120
        ) / cos1
        return (math.degrees(lon), math.degrees(lat))

    return forward, inverse


def _make_lambert_conformal_conic(
    lat1_deg: float,
    lat2_deg: float,
    lat0_deg: float,
    lon0_deg: float,
    false_easting: float,
    false_northing: float,
):
    """Lambert conformal conic, two standard parallels (Snyder eqs. 15-1..)."""
    lat1 = math.radians(lat1_deg)
    lat2 = math.radians(lat2_deg)
    lat0 = math.radians(lat0_deg)
    lon0 = math.radians(lon0_deg)

    def _m(lat: float) -> float:
        return math.cos(lat) / math.sqrt(1 - _E2 * math.sin(lat) ** 2)

    def _t(lat: float) -> float:
        sin_lat = math.sin(lat)
        return math.tan(math.pi / 4 - lat / 2) / (
            (1 - _E * sin_lat) / (1 + _E * sin_lat)
        ) ** (_E / 2)

    n = (math.log(_m(lat1)) - math.log(_m(lat2))) / (
        math.log(_t(lat1)) - math.log(_t(lat2))
    )
    f_big = _m(lat1) / (n * _t(lat1) ** n)
    rho0 = _A * f_big * _t(lat0) ** n

    def forward(lon_deg: float, lat_deg: float) -> tuple[float, float]:
        lon = math.radians(lon_deg)
        lat = math.radians(lat_deg)
        rho = _A * f_big * _t(lat) ** n
        theta = n * (lon - lon0)
        x = rho * math.sin(theta) + false_easting
        y = rho0 - rho * math.cos(theta) + false_northing
        return (x, y)

    def inverse(x: float, y: float) -> tuple[float, float]:
        x -= false_easting
        y = rho0 - (y - false_northing)
        rho = math.copysign(math.hypot(x, y), n)
        if n >= 0:
            theta = math.atan2(x, y)
        else:
            theta = math.atan2(-x, -y)
        t_val = (rho / (_A * f_big)) ** (1.0 / n)
        lat = math.pi / 2 - 2 * math.atan(t_val)
        for _ in range(8):
            sin_lat = math.sin(lat)
            lat = math.pi / 2 - 2 * math.atan(
                t_val * ((1 - _E * sin_lat) / (1 + _E * sin_lat)) ** (_E / 2)
            )
        lon = theta / n + lon0
        return (math.degrees(lon), math.degrees(lat))

    return forward, inverse


def _build_registry() -> dict[int, Projection]:
    registry: dict[int, Projection] = {}
    registry[4326] = Projection(4326, "WGS84", _identity, _identity)
    registry[3857] = Projection(
        3857, "WebMercator", _web_mercator_forward, _web_mercator_inverse
    )
    utm48_fwd, utm48_inv = _make_transverse_mercator(lon0_deg=105.0)
    registry[32648] = Projection(32648, "UTM48N", utm48_fwd, utm48_inv)
    registry[3405] = Projection(3405, "VN2000/UTM48N", utm48_fwd, utm48_inv)
    lcc_fwd, lcc_inv = _make_lambert_conformal_conic(
        lat1_deg=49.833333,
        lat2_deg=51.166667,
        lat0_deg=50.797815,
        lon0_deg=4.359216,
        false_easting=649328.0,
        false_northing=665262.0,
    )
    registry[3812] = Projection(3812, "BelgianLambert2008", lcc_fwd, lcc_inv)
    return registry


_REGISTRY = _build_registry()


def register_projection(proj: Projection) -> None:
    """Add or replace a projection in the global registry."""
    _REGISTRY[proj.srid] = proj


def known_srids() -> tuple[int, ...]:
    return tuple(sorted(_REGISTRY))


def transform_coord(
    x: float, y: float, source_srid: int, target_srid: int
) -> tuple[float, float]:
    """Reproject one coordinate pair between two registered SRIDs."""
    if source_srid == target_srid:
        return (x, y)
    try:
        source = _REGISTRY[source_srid]
        target = _REGISTRY[target_srid]
    except KeyError as exc:
        raise GeometryError(f"unknown SRID {exc.args[0]}") from None
    lon, lat = source.inverse(x, y)
    return target.forward(lon, lat)


def transform(geom: Geometry, target_srid: int) -> Geometry:
    """Reproject a geometry to ``target_srid``.

    The source SRID is taken from the geometry; transforming a geometry with
    SRID 0 is an error, matching PostGIS behaviour.
    """
    if geom.srid == 0:
        raise GeometryError("cannot transform geometry with unknown SRID")
    if geom.srid == target_srid:
        return geom

    def conv(coord: tuple[float, float]) -> tuple[float, float]:
        return transform_coord(coord[0], coord[1], geom.srid, target_srid)

    return _map_coords(geom, conv, target_srid)


def _map_coords(
    geom: Geometry,
    conv: Callable[[tuple[float, float]], tuple[float, float]],
    srid: int,
) -> Geometry:
    if isinstance(geom, Point):
        x, y = conv((geom.x, geom.y))
        return Point(x, y, srid)
    if isinstance(geom, LineString):
        return LineString([conv(p) for p in geom.points], srid)
    if isinstance(geom, Polygon):
        return Polygon(
            [conv(p) for p in geom.shell],
            [[conv(p) for p in hole] for hole in geom.holes],
            srid,
        )
    if isinstance(
        geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)
    ):
        return type(geom)(
            [_map_coords(g, conv, srid) for g in geom.geoms], srid
        )
    raise GeometryError(f"cannot transform {type(geom).__name__}")
