"""Geometry model: a small, self-contained GEOS/PostGIS substitute.

The classes here implement the subset of the Simple Feature Access model
(OGC 06-103r4) that the MEOS temporal algebra and the BerlinMOD benchmark
queries exercise: points, linestrings, polygons, their multi-variants, and
heterogeneous collections.  Geometries are immutable value objects; all
mutating operations return new geometries.

Coordinates are 2D (x, y).  Every geometry carries an SRID (0 = unknown);
operations that combine two geometries require their SRIDs to match.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence


class GeometryError(ValueError):
    """Raised for malformed geometries or incompatible operands."""


def _require_same_srid(a: "Geometry", b: "Geometry") -> None:
    if a.srid != b.srid and a.srid != 0 and b.srid != 0:
        raise GeometryError(
            f"operation on mixed SRIDs: {a.srid} vs {b.srid}"
        )


class Geometry:
    """Abstract base for all geometry types."""

    __slots__ = ("srid", "_bounds")

    #: Simple-feature type name, e.g. ``"Point"``; set by subclasses.
    geom_type: str = "Geometry"

    def __init__(self, srid: int = 0):
        self.srid = int(srid)
        self._bounds: tuple[float, float, float, float] | None = None

    # -- structural protocol ------------------------------------------------

    def coordinates(self) -> Iterator[tuple[float, float]]:
        """Yield every vertex of the geometry."""
        raise NotImplementedError

    def is_empty(self) -> bool:
        return next(self.coordinates(), None) is None

    def bounds(self) -> tuple[float, float, float, float]:
        """Return (xmin, ymin, xmax, ymax); raises on empty geometries.

        The result is cached — geometries are immutable value objects."""
        if self._bounds is not None:
            return self._bounds
        xmin = ymin = math.inf
        xmax = ymax = -math.inf
        for x, y in self.coordinates():
            xmin = min(xmin, x)
            ymin = min(ymin, y)
            xmax = max(xmax, x)
            ymax = max(ymax, y)
        if xmin is math.inf:
            raise GeometryError("empty geometry has no bounds")
        self._bounds = (xmin, ymin, xmax, ymax)
        return self._bounds

    def with_srid(self, srid: int) -> "Geometry":
        """Return a copy of this geometry tagged with ``srid``."""
        clone = self._clone()
        clone.srid = int(srid)
        return clone

    def _clone(self) -> "Geometry":
        raise NotImplementedError

    # -- equality / hashing --------------------------------------------------

    def _key(self):
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        return (
            self.geom_type == other.geom_type
            and self.srid == other.srid
            and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash((self.geom_type, self.srid, self._key()))

    def __repr__(self) -> str:
        from .wkt import format_wkt

        wkt = format_wkt(self, precision=6)
        prefix = f"SRID={self.srid};" if self.srid else ""
        return f"<{type(self).__name__} {prefix}{wkt}>"


class Point(Geometry):
    """A single 2D position."""

    __slots__ = ("x", "y")
    geom_type = "Point"

    def __init__(self, x: float, y: float, srid: int = 0):
        super().__init__(srid)
        self.x = float(x)
        self.y = float(y)

    def coordinates(self) -> Iterator[tuple[float, float]]:
        yield (self.x, self.y)

    def is_empty(self) -> bool:
        return False

    def _clone(self) -> "Point":
        return Point(self.x, self.y, self.srid)

    def _key(self):
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class LineString(Geometry):
    """A polyline of two or more vertices (one vertex is allowed when it
    results from degenerate clipping; zero vertices means empty)."""

    __slots__ = ("points",)
    geom_type = "LineString"

    def __init__(
        self, points: Sequence[tuple[float, float]], srid: int = 0
    ):
        super().__init__(srid)
        self.points: tuple[tuple[float, float], ...] = tuple(
            (float(x), float(y)) for x, y in points
        )

    def coordinates(self) -> Iterator[tuple[float, float]]:
        yield from self.points

    def _clone(self) -> "LineString":
        return LineString(self.points, self.srid)

    def _key(self):
        return self.points

    def length(self) -> float:
        total = 0.0
        for (x0, y0), (x1, y1) in zip(self.points, self.points[1:]):
            total += math.hypot(x1 - x0, y1 - y0)
        return total

    def segments(self) -> Iterator[tuple[tuple[float, float], tuple[float, float]]]:
        yield from zip(self.points, self.points[1:])


class Polygon(Geometry):
    """A polygon with an exterior shell and optional interior holes.

    Rings are stored closed (first vertex == last vertex); the constructor
    closes open rings.  Ring orientation is not normalized — point-in-polygon
    uses the even-odd rule, which is orientation independent.
    """

    __slots__ = ("shell", "holes")
    geom_type = "Polygon"

    def __init__(
        self,
        shell: Sequence[tuple[float, float]],
        holes: Iterable[Sequence[tuple[float, float]]] = (),
        srid: int = 0,
    ):
        super().__init__(srid)
        self.shell = self._close_ring(shell)
        self.holes = tuple(self._close_ring(h) for h in holes)

    @staticmethod
    def _close_ring(
        ring: Sequence[tuple[float, float]],
    ) -> tuple[tuple[float, float], ...]:
        pts = [(float(x), float(y)) for x, y in ring]
        if not pts:
            return ()
        if len(pts) < 3:
            raise GeometryError("polygon ring needs at least 3 vertices")
        if pts[0] != pts[-1]:
            pts.append(pts[0])
        return tuple(pts)

    def coordinates(self) -> Iterator[tuple[float, float]]:
        yield from self.shell
        for hole in self.holes:
            yield from hole

    def rings(self) -> Iterator[tuple[tuple[float, float], ...]]:
        yield self.shell
        yield from self.holes

    def _clone(self) -> "Polygon":
        return Polygon(self.shell, self.holes, self.srid)

    def _key(self):
        return (self.shell, self.holes)

    def area(self) -> float:
        """Unsigned area (shell area minus hole areas)."""
        total = abs(_ring_area(self.shell))
        for hole in self.holes:
            total -= abs(_ring_area(hole))
        return total

    def centroid(self) -> Point:
        cx, cy, area = _ring_centroid(self.shell)
        if area == 0.0:
            xs = [p[0] for p in self.shell]
            ys = [p[1] for p in self.shell]
            return Point(sum(xs) / len(xs), sum(ys) / len(ys), self.srid)
        return Point(cx, cy, self.srid)


def _ring_area(ring: Sequence[tuple[float, float]]) -> float:
    total = 0.0
    for (x0, y0), (x1, y1) in zip(ring, ring[1:]):
        total += x0 * y1 - x1 * y0
    return total / 2.0


def _ring_centroid(
    ring: Sequence[tuple[float, float]],
) -> tuple[float, float, float]:
    cx = cy = area = 0.0
    for (x0, y0), (x1, y1) in zip(ring, ring[1:]):
        cross = x0 * y1 - x1 * y0
        area += cross
        cx += (x0 + x1) * cross
        cy += (y0 + y1) * cross
    area /= 2.0
    if area == 0.0:
        return (0.0, 0.0, 0.0)
    return (cx / (6.0 * area), cy / (6.0 * area), area)


class _MultiGeometry(Geometry):
    """Shared behaviour of homogeneous and heterogeneous collections."""

    __slots__ = ("geoms",)
    element_type: type[Geometry] | None = None

    def __init__(self, geoms: Iterable[Geometry], srid: int = 0):
        super().__init__(srid)
        items = tuple(geoms)
        if self.element_type is not None:
            for g in items:
                if not isinstance(g, self.element_type):
                    raise GeometryError(
                        f"{type(self).__name__} may only contain "
                        f"{self.element_type.__name__}, got {type(g).__name__}"
                    )
        self.geoms = items
        if srid == 0 and items:
            self.srid = items[0].srid

    def coordinates(self) -> Iterator[tuple[float, float]]:
        for g in self.geoms:
            yield from g.coordinates()

    def _clone(self):
        return type(self)(tuple(g._clone() for g in self.geoms), self.srid)

    def _key(self):
        return tuple((g.geom_type, g._key()) for g in self.geoms)

    def __len__(self) -> int:
        return len(self.geoms)

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)


class MultiPoint(_MultiGeometry):
    __slots__ = ()
    geom_type = "MultiPoint"
    element_type = Point


class MultiLineString(_MultiGeometry):
    __slots__ = ()
    geom_type = "MultiLineString"
    element_type = LineString


class MultiPolygon(_MultiGeometry):
    __slots__ = ()
    geom_type = "MultiPolygon"
    element_type = Polygon


class GeometryCollection(_MultiGeometry):
    __slots__ = ()
    geom_type = "GeometryCollection"
    element_type = None


def collect(geoms: Sequence[Geometry]) -> Geometry:
    """Aggregate geometries into the tightest collection type, like
    PostGIS ``ST_Collect``.

    A single geometry is returned unchanged; homogeneous inputs produce the
    corresponding Multi* type; mixed inputs produce a GeometryCollection.
    """
    items = [g for g in geoms if g is not None]
    if not items:
        return GeometryCollection(())
    if len(items) == 1:
        return items[0]
    srid = items[0].srid
    for g in items[1:]:
        _require_same_srid(items[0], g)
    kinds = {g.geom_type for g in items}
    if kinds == {"Point"}:
        return MultiPoint(items, srid)
    if kinds == {"LineString"}:
        return MultiLineString(items, srid)
    if kinds == {"Polygon"}:
        return MultiPolygon(items, srid)
    return GeometryCollection(items, srid)


def flatten(geom: Geometry) -> Iterator[Geometry]:
    """Yield the primitive (non-collection) geometries inside ``geom``."""
    if isinstance(geom, _MultiGeometry):
        for g in geom.geoms:
            yield from flatten(g)
    else:
        yield geom
