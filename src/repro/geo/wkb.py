"""Well-Known Binary (WKB / EWKB) encoding and decoding.

Implements the OGC WKB format for 2D geometries, plus the PostGIS EWKB
extension that embeds an SRID (type flag ``0x20000000``).  This is the
byte format behind DuckDB-Spatial's ``WKB_BLOB`` type, which the paper's
geometry-interop layer converts through (§6.2, §7).
"""

from __future__ import annotations

import struct

from .geometry import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

_EWKB_SRID_FLAG = 0x20000000

_TYPE_CODES = {
    "Point": 1,
    "LineString": 2,
    "Polygon": 3,
    "MultiPoint": 4,
    "MultiLineString": 5,
    "MultiPolygon": 6,
    "GeometryCollection": 7,
}
_CODE_TYPES = {v: k for k, v in _TYPE_CODES.items()}


def encode_wkb(geom: Geometry, include_srid: bool = True) -> bytes:
    """Encode a geometry as little-endian (E)WKB bytes."""
    out = bytearray()
    _encode_into(out, geom, include_srid and bool(geom.srid))
    return bytes(out)


def _encode_into(out: bytearray, geom: Geometry, with_srid: bool) -> None:
    out.append(1)  # little-endian
    code = _TYPE_CODES.get(geom.geom_type)
    if code is None:
        raise GeometryError(f"cannot WKB-encode {geom.geom_type}")
    type_word = code | (_EWKB_SRID_FLAG if with_srid else 0)
    out += struct.pack("<I", type_word)
    if with_srid:
        out += struct.pack("<i", geom.srid)
    if isinstance(geom, Point):
        out += struct.pack("<dd", geom.x, geom.y)
    elif isinstance(geom, LineString):
        out += struct.pack("<I", len(geom.points))
        for x, y in geom.points:
            out += struct.pack("<dd", x, y)
    elif isinstance(geom, Polygon):
        rings = list(geom.rings())
        out += struct.pack("<I", len(rings))
        for ring in rings:
            out += struct.pack("<I", len(ring))
            for x, y in ring:
                out += struct.pack("<dd", x, y)
    elif isinstance(
        geom, (MultiPoint, MultiLineString, MultiPolygon, GeometryCollection)
    ):
        out += struct.pack("<I", len(geom.geoms))
        for child in geom.geoms:
            # Children of an EWKB collection never repeat the SRID.
            _encode_into(out, child, False)
    else:  # pragma: no cover - all concrete types handled above
        raise GeometryError(f"cannot WKB-encode {type(geom).__name__}")


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise GeometryError("truncated WKB")
        values = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return values


def decode_wkb(data: bytes, default_srid: int = 0) -> Geometry:
    """Decode (E)WKB bytes into a Geometry."""
    reader = _Reader(bytes(data))
    geom = _decode_one(reader, default_srid)
    return geom


def _decode_one(r: _Reader, srid: int) -> Geometry:
    (order,) = r.take("<B")
    endian = "<" if order == 1 else ">"
    (type_word,) = r.take(endian + "I")
    if type_word & _EWKB_SRID_FLAG:
        (srid,) = r.take(endian + "i")
        type_word &= ~_EWKB_SRID_FLAG
    # Mask ISO Z/M offsets (1000/2000/3000) down to the base type; the
    # kernel keeps only x/y, so Z/M payloads are rejected explicitly.
    base = type_word % 1000
    if type_word != base:
        raise GeometryError("Z/M WKB geometries are not supported")
    name = _CODE_TYPES.get(base)
    if name is None:
        raise GeometryError(f"unknown WKB geometry code {type_word}")
    if name == "Point":
        x, y = r.take(endian + "dd")
        return Point(x, y, srid)
    if name == "LineString":
        (n,) = r.take(endian + "I")
        pts = [r.take(endian + "dd") for _ in range(n)]
        return LineString(pts, srid)
    if name == "Polygon":
        (nrings,) = r.take(endian + "I")
        rings = []
        for _ in range(nrings):
            (npts,) = r.take(endian + "I")
            rings.append([r.take(endian + "dd") for _ in range(npts)])
        if not rings:
            return GeometryCollection((), srid)
        return Polygon(rings[0], rings[1:], srid)
    # Collection types
    (n,) = r.take(endian + "I")
    children = [_decode_one(r, srid) for _ in range(n)]
    cls = {
        "MultiPoint": MultiPoint,
        "MultiLineString": MultiLineString,
        "MultiPolygon": MultiPolygon,
        "GeometryCollection": GeometryCollection,
    }[name]
    return cls(children, srid)
