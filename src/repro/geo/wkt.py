"""Well-Known Text (WKT / EWKT) reading and writing.

Supports the 2D geometry types defined in :mod:`repro.geo.geometry` plus
the PostGIS ``SRID=nnnn;`` EWKT prefix, e.g.::

    SRID=4326;POINT(2.34 49.40)
    LINESTRING(0 0, 1 1, 2 0)
    POLYGON((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))
    MULTIPOINT((0 0), (1 1))   and the legacy  MULTIPOINT(0 0, 1 1)
    GEOMETRYCOLLECTION(POINT(0 0), LINESTRING(0 0, 1 1))
    POINT EMPTY
"""

from __future__ import annotations

from .geometry import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


class _Scanner:
    """Minimal cursor over a WKT string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise GeometryError(
                f"expected {char!r} at position {self.pos} in {self.text!r}"
            )
        self.pos += 1

    def accept(self, char: str) -> bool:
        if self.peek() == char:
            self.pos += 1
            return True
        return False

    def word(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalpha() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        return self.text[start : self.pos].upper()

    def number(self) -> float:
        self.skip_ws()
        start = self.pos
        allowed = "+-0123456789.eE"
        while self.pos < len(self.text) and self.text[self.pos] in allowed:
            self.pos += 1
        token = self.text[start : self.pos]
        try:
            return float(token)
        except ValueError:
            raise GeometryError(
                f"bad number {token!r} at position {start} in {self.text!r}"
            ) from None

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def parse_wkt(text: str, default_srid: int = 0) -> Geometry:
    """Parse a WKT or EWKT string into a Geometry."""
    text = text.strip()
    srid = default_srid
    if text.upper().startswith("SRID="):
        head, _, rest = text.partition(";")
        try:
            srid = int(head[5:])
        except ValueError:
            raise GeometryError(f"bad SRID prefix in {text!r}") from None
        text = rest.strip()
    scanner = _Scanner(text)
    geom = _parse_geometry(scanner, srid)
    if not scanner.at_end():
        raise GeometryError(f"trailing characters in WKT: {text!r}")
    return geom


def _parse_geometry(s: _Scanner, srid: int) -> Geometry:
    tag = s.word()
    if not tag:
        raise GeometryError(f"no geometry tag in {s.text!r}")
    # Tolerate a Z/M suffix word (coordinates stay 2D in this kernel).
    checkpoint = s.pos
    suffix = s.word()
    if suffix not in ("", "Z", "M", "ZM", "EMPTY"):
        s.pos = checkpoint
        suffix = ""
    if suffix == "EMPTY" or (suffix == "" and _peek_empty(s)):
        return _empty(tag, srid)
    parser = _PARSERS.get(tag)
    if parser is None:
        raise GeometryError(f"unsupported WKT type {tag!r}")
    return parser(s, srid)


def _peek_empty(s: _Scanner) -> bool:
    checkpoint = s.pos
    word = s.word()
    if word == "EMPTY":
        return True
    s.pos = checkpoint
    return False


def _empty(tag: str, srid: int) -> Geometry:
    empties = {
        "POINT": lambda: GeometryCollection((), srid),
        "LINESTRING": lambda: LineString((), srid),
        "POLYGON": lambda: GeometryCollection((), srid),
        "MULTIPOINT": lambda: MultiPoint((), srid),
        "MULTILINESTRING": lambda: MultiLineString((), srid),
        "MULTIPOLYGON": lambda: MultiPolygon((), srid),
        "GEOMETRYCOLLECTION": lambda: GeometryCollection((), srid),
    }
    if tag not in empties:
        raise GeometryError(f"unsupported WKT type {tag!r}")
    return empties[tag]()


def _parse_coord(s: _Scanner) -> tuple[float, float]:
    x = s.number()
    y = s.number()
    # Swallow an optional Z (and M) ordinate.
    while s.peek() not in (",", ")", ""):
        s.number()
    return (x, y)


def _parse_coord_list(s: _Scanner) -> list[tuple[float, float]]:
    s.expect("(")
    coords = [_parse_coord(s)]
    while s.accept(","):
        coords.append(_parse_coord(s))
    s.expect(")")
    return coords


def _parse_point(s: _Scanner, srid: int) -> Point:
    s.expect("(")
    x, y = _parse_coord(s)
    s.expect(")")
    return Point(x, y, srid)


def _parse_linestring(s: _Scanner, srid: int) -> LineString:
    return LineString(_parse_coord_list(s), srid)


def _parse_polygon(s: _Scanner, srid: int) -> Polygon:
    s.expect("(")
    shell = _parse_coord_list(s)
    holes = []
    while s.accept(","):
        holes.append(_parse_coord_list(s))
    s.expect(")")
    return Polygon(shell, holes, srid)


def _parse_multipoint(s: _Scanner, srid: int) -> MultiPoint:
    s.expect("(")
    points = []
    while True:
        if s.peek() == "(":
            s.expect("(")
            x, y = _parse_coord(s)
            s.expect(")")
        else:
            x, y = _parse_coord(s)
        points.append(Point(x, y, srid))
        if not s.accept(","):
            break
    s.expect(")")
    return MultiPoint(points, srid)


def _parse_multilinestring(s: _Scanner, srid: int) -> MultiLineString:
    s.expect("(")
    lines = [LineString(_parse_coord_list(s), srid)]
    while s.accept(","):
        lines.append(LineString(_parse_coord_list(s), srid))
    s.expect(")")
    return MultiLineString(lines, srid)


def _parse_multipolygon(s: _Scanner, srid: int) -> MultiPolygon:
    s.expect("(")
    polys = [_parse_polygon(s, srid)]
    while s.accept(","):
        polys.append(_parse_polygon(s, srid))
    s.expect(")")
    return MultiPolygon(polys, srid)


def _parse_collection(s: _Scanner, srid: int) -> GeometryCollection:
    s.expect("(")
    geoms = [_parse_geometry(s, srid)]
    while s.accept(","):
        geoms.append(_parse_geometry(s, srid))
    s.expect(")")
    return GeometryCollection(geoms, srid)


_PARSERS = {
    "POINT": _parse_point,
    "LINESTRING": _parse_linestring,
    "POLYGON": _parse_polygon,
    "MULTIPOINT": _parse_multipoint,
    "MULTILINESTRING": _parse_multilinestring,
    "MULTIPOLYGON": _parse_multipolygon,
    "GEOMETRYCOLLECTION": _parse_collection,
}


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def _fmt_num(value: float, precision: int | None) -> str:
    if precision is not None:
        value = round(value, precision)
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(value)


def _fmt_coords(coords, precision) -> str:
    return ", ".join(
        f"{_fmt_num(x, precision)} {_fmt_num(y, precision)}" for x, y in coords
    )


def format_wkt(geom: Geometry, precision: int | None = None) -> str:
    """Serialize a geometry to WKT (without SRID prefix)."""
    if isinstance(geom, Point):
        return f"POINT({_fmt_coords([(geom.x, geom.y)], precision)})"
    if isinstance(geom, LineString):
        if not geom.points:
            return "LINESTRING EMPTY"
        return f"LINESTRING({_fmt_coords(geom.points, precision)})"
    if isinstance(geom, Polygon):
        rings = ", ".join(
            f"({_fmt_coords(ring, precision)})" for ring in geom.rings()
        )
        return f"POLYGON({rings})"
    if isinstance(geom, MultiPoint):
        if not geom.geoms:
            return "MULTIPOINT EMPTY"
        inner = ", ".join(
            f"({_fmt_coords([(p.x, p.y)], precision)})" for p in geom.geoms
        )
        return f"MULTIPOINT({inner})"
    if isinstance(geom, MultiLineString):
        if not geom.geoms:
            return "MULTILINESTRING EMPTY"
        inner = ", ".join(
            f"({_fmt_coords(line.points, precision)})" for line in geom.geoms
        )
        return f"MULTILINESTRING({inner})"
    if isinstance(geom, MultiPolygon):
        if not geom.geoms:
            return "MULTIPOLYGON EMPTY"
        inner = ", ".join(
            "("
            + ", ".join(
                f"({_fmt_coords(ring, precision)})" for ring in poly.rings()
            )
            + ")"
            for poly in geom.geoms
        )
        return f"MULTIPOLYGON({inner})"
    if isinstance(geom, GeometryCollection):
        if not geom.geoms:
            return "GEOMETRYCOLLECTION EMPTY"
        inner = ", ".join(format_wkt(g, precision) for g in geom.geoms)
        return f"GEOMETRYCOLLECTION({inner})"
    raise GeometryError(f"cannot format {type(geom).__name__} as WKT")


def format_ewkt(geom: Geometry, precision: int | None = None) -> str:
    """Serialize a geometry to EWKT (with ``SRID=...;`` prefix if set)."""
    wkt = format_wkt(geom, precision)
    if geom.srid:
        return f"SRID={geom.srid};{wkt}"
    return wkt
