"""repro.index — spatial index structures (R-tree)."""

from .rtree import RTree, rect_contains, rect_overlaps, rect_union, rect_volume

__all__ = [
    "RTree",
    "rect_contains",
    "rect_overlaps",
    "rect_union",
    "rect_volume",
]
