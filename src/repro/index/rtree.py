"""An N-dimensional R-tree (Guttman insert + STR bulk load).

Stands in for the MEOS R-tree that MobilityDuck's ``TRTREE`` index wraps
(paper §4).  Two construction paths mirror §4.2:

* **incremental** — :meth:`RTree.insert` with quadratic node splitting,
  used when rows are appended to an already-indexed table;
* **bulk** — :meth:`RTree.bulk_load` using Sort-Tile-Recursive packing,
  used when an index is created over existing data.

Rectangles are flat tuples ``(min_0, …, min_{d-1}, max_0, …, max_{d-1})``.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from ..observability import current_stats

Rect = tuple[float, ...]


def rect_union(a: Rect, b: Rect) -> Rect:
    half = len(a) // 2
    return tuple(
        [min(a[i], b[i]) for i in range(half)]
        + [max(a[half + i], b[half + i]) for i in range(half)]
    )


def rect_overlaps(a: Rect, b: Rect) -> bool:
    half = len(a) // 2
    for i in range(half):
        if a[half + i] < b[i] or b[half + i] < a[i]:
            return False
    return True


def rect_contains(outer: Rect, inner: Rect) -> bool:
    half = len(outer) // 2
    for i in range(half):
        if inner[i] < outer[i] or inner[half + i] > outer[half + i]:
            return False
    return True


def rect_volume(a: Rect) -> float:
    half = len(a) // 2
    volume = 1.0
    for i in range(half):
        volume *= max(0.0, a[half + i] - a[i])
    return volume


def _enlargement(node_rect: Rect, entry_rect: Rect) -> float:
    return rect_volume(rect_union(node_rect, entry_rect)) - rect_volume(
        node_rect
    )


class _Node:
    __slots__ = ("leaf", "entries", "rect")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        #: leaf entries: (rect, row_id); inner entries: (rect, child node)
        self.entries: list[tuple[Rect, Any]] = []
        self.rect: Rect | None = None

    def recompute_rect(self) -> None:
        rect = self.entries[0][0]
        for entry_rect, _ in self.entries[1:]:
            rect = rect_union(rect, entry_rect)
        self.rect = rect


class RTree:
    """R-tree over N-dimensional rectangles mapping to opaque row ids."""

    def __init__(self, dimensions: int = 2, max_entries: int = 16):
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self.dimensions = dimensions
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 3)
        self._root = _Node(leaf=True)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- incremental construction (paper §4.2.1) ---------------------------------

    def insert(self, rect: Rect, row_id: Any) -> None:
        """Insert one rectangle (MEOS ``rtree_insert``)."""
        self._validate(rect)
        leaf, path = self._choose_leaf(rect)
        leaf.entries.append((rect, row_id))
        self._count += 1
        self._adjust(leaf, path)

    def _validate(self, rect: Rect) -> None:
        if len(rect) != 2 * self.dimensions:
            raise ValueError(
                f"expected {2 * self.dimensions} coordinates, got {len(rect)}"
            )

    def _choose_leaf(self, rect: Rect) -> tuple[_Node, list[_Node]]:
        node = self._root
        path: list[_Node] = []
        while not node.leaf:
            path.append(node)
            best = None
            best_key = None
            for entry_rect, child in node.entries:
                key = (
                    _enlargement(entry_rect, rect),
                    rect_volume(entry_rect),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            node = best
        return node, path

    def _adjust(self, node: _Node, path: list[_Node]) -> None:
        node.recompute_rect()
        split = self._split(node) if len(node.entries) > self.max_entries else None
        for parent in reversed(path):
            for i, (_, child) in enumerate(parent.entries):
                if child is node:
                    parent.entries[i] = (node.rect, node)
                    break
            if split is not None:
                parent.entries.append((split.rect, split))
            parent.recompute_rect()
            if len(parent.entries) > self.max_entries:
                node = parent
                split = self._split(parent)
            else:
                node = parent
                split = None
        if split is not None:
            new_root = _Node(leaf=False)
            new_root.entries = [
                (self._root.rect, self._root),
                (split.rect, split),
            ]
            new_root.recompute_rect()
            self._root = new_root

    def _split(self, node: _Node) -> _Node:
        """Guttman quadratic split; mutates ``node`` and returns its sibling."""
        entries = node.entries
        seed_a, seed_b = self._pick_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = group_a[0][0]
        rect_b = group_b[0][0]
        remaining = [
            e for i, e in enumerate(entries) if i not in (seed_a, seed_b)
        ]
        while remaining:
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                remaining = []
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                remaining = []
                break
            # Pick the entry with the strongest preference.
            best_idx = 0
            best_diff = -1.0
            for i, (rect, _) in enumerate(remaining):
                d_a = _enlargement(rect_a, rect)
                d_b = _enlargement(rect_b, rect)
                diff = abs(d_a - d_b)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = i
            rect, payload = remaining.pop(best_idx)
            d_a = _enlargement(rect_a, rect)
            d_b = _enlargement(rect_b, rect)
            if d_a < d_b or (d_a == d_b and len(group_a) <= len(group_b)):
                group_a.append((rect, payload))
                rect_a = rect_union(rect_a, rect)
            else:
                group_b.append((rect, payload))
                rect_b = rect_union(rect_b, rect)
        node.entries = group_a
        node.recompute_rect()
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group_b
        sibling.recompute_rect()
        return sibling

    @staticmethod
    def _pick_seeds(entries: list[tuple[Rect, Any]]) -> tuple[int, int]:
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                combined = rect_union(entries[i][0], entries[j][0])
                waste = (
                    rect_volume(combined)
                    - rect_volume(entries[i][0])
                    - rect_volume(entries[j][0])
                )
                if waste > worst:
                    worst = waste
                    seeds = (i, j)
        return seeds

    # -- bulk construction (paper §4.2.2, phase 3) -----------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: Iterable[tuple[Rect, Any]],
        dimensions: int = 2,
        max_entries: int = 16,
    ) -> "RTree":
        """Sort-Tile-Recursive packing of all items at once."""
        tree = cls(dimensions=dimensions, max_entries=max_entries)
        entries = list(items)
        tree._count = len(entries)
        if not entries:
            return tree
        for rect, _ in entries:
            tree._validate(rect)
        leaves = tree._str_pack(entries, leaf=True)
        level = leaves
        while len(level) > 1:
            level = tree._str_pack(
                [(node.rect, node) for node in level], leaf=False
            )
        tree._root = level[0]
        return tree

    def _str_pack(
        self, entries: list[tuple[Rect, Any]], leaf: bool
    ) -> list[_Node]:
        capacity = self.max_entries
        count = len(entries)
        node_count = math.ceil(count / capacity)
        # Sort by center of dim 0, slice, then sort slices by dim 1, etc.
        slices = [sorted(entries, key=lambda e: _center(e[0], 0))]
        for dim in range(1, self.dimensions):
            remaining_dims = self.dimensions - dim
            new_slices: list[list[tuple[Rect, Any]]] = []
            for chunk in slices:
                per_slice = math.ceil(
                    len(chunk)
                    / math.ceil(node_count ** (remaining_dims / self.dimensions))
                ) or len(chunk)
                chunk = sorted(chunk, key=lambda e: _center(e[0], dim))
                for i in range(0, len(chunk), max(per_slice, capacity)):
                    new_slices.append(chunk[i : i + max(per_slice, capacity)])
            slices = new_slices
        nodes: list[_Node] = []
        for chunk in slices:
            for i in range(0, len(chunk), capacity):
                node = _Node(leaf=leaf)
                node.entries = chunk[i : i + capacity]
                node.recompute_rect()
                nodes.append(node)
        return nodes

    # -- search ---------------------------------------------------------------------

    def search(self, rect: Rect) -> list[Any]:
        """Row ids of all entries whose rectangle overlaps ``rect``."""
        self._validate(rect)
        out: list[Any] = []
        if self._root.rect is None:
            self._record_search(0, 0)
            return out
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is not None and not rect_overlaps(node.rect, rect):
                continue
            visited += 1
            for entry_rect, payload in node.entries:
                if not rect_overlaps(entry_rect, rect):
                    continue
                if node.leaf:
                    out.append(payload)
                else:
                    stack.append(payload)
        self._record_search(visited, len(out))
        return out

    def search_batch(self, rects: Sequence[Rect]) -> list[list[Any]]:
        """Overlap search for many query rectangles in one traversal.

        Equivalent to ``[self.search(r) for r in rects]`` but each tree
        node is visited at most once per *batch* of probes still active
        at that node: the query rectangles ride down the tree together
        as NumPy min/max corner arrays and are pruned per entry with a
        single vectorized comparison, which is what makes batched index
        nested-loop probes cheap.
        """
        for rect in rects:
            self._validate(rect)
        out: list[list[Any]] = [[] for _ in rects]
        if not rects or self._root.rect is None:
            self._record_batch_search(len(rects), 0, 0)
            return out
        d = self.dimensions
        corners = np.asarray(rects, dtype=np.float64)
        qmin = corners[:, :d]
        qmax = corners[:, d:]
        visited = 0
        hits = 0
        # Each stack frame pairs a node with the probes whose rectangles
        # overlap every ancestor entry on the way down.
        stack: list[tuple[_Node, np.ndarray]] = [
            (self._root, np.arange(len(rects), dtype=np.int64))
        ]
        while stack:
            node, active = stack.pop()
            visited += 1
            active_min = qmin[active]
            active_max = qmax[active]
            for entry_rect, payload in node.entries:
                entry = np.asarray(entry_rect, dtype=np.float64)
                overlap = np.logical_and(
                    (active_min <= entry[d:]).all(axis=1),
                    (active_max >= entry[:d]).all(axis=1),
                )
                if not overlap.any():
                    continue
                matched = active[overlap]
                if node.leaf:
                    hits += len(matched)
                    for probe in matched:
                        out[probe].append(payload)
                else:
                    stack.append((payload, matched))
        self._record_batch_search(len(rects), visited, hits)
        return out

    @staticmethod
    def _record_batch_search(probes: int, nodes_visited: int,
                             leaf_hits: int) -> None:
        stats = current_stats()
        if stats is not None:
            stats.bump("rtree.batch_searches")
            stats.bump("rtree.batch_probes", probes)
            stats.bump("rtree.batch_nodes_visited", nodes_visited)
            stats.bump("rtree.batch_leaf_hits", leaf_hits)

    def search_contained(self, rect: Rect) -> list[Any]:
        """Row ids of entries fully contained in ``rect``."""
        self._validate(rect)
        out: list[Any] = []
        if self._root.rect is None:
            self._record_search(0, 0)
            return out
        visited = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.rect is not None and not rect_overlaps(node.rect, rect):
                continue
            visited += 1
            for entry_rect, payload in node.entries:
                if node.leaf:
                    if rect_contains(rect, entry_rect):
                        out.append(payload)
                elif rect_overlaps(entry_rect, rect):
                    stack.append(payload)
        self._record_search(visited, len(out))
        return out

    @staticmethod
    def _record_search(nodes_visited: int, leaf_hits: int) -> None:
        # Counted locally during traversal, flushed in one shot so the
        # hot loop stays free of contextvar lookups.
        stats = current_stats()
        if stats is not None:
            stats.bump("rtree.searches")
            stats.bump("rtree.nodes_visited", nodes_visited)
            stats.bump("rtree.leaf_hits", leaf_hits)

    def all_items(self) -> Iterator[tuple[Rect, Any]]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry_rect, payload in node.entries:
                if node.leaf:
                    yield (entry_rect, payload)
                else:
                    stack.append(payload)

    def height(self) -> int:
        height = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0][1]
            height += 1
        return height

    def check_invariants(self) -> None:
        """Validate structural invariants (used by property tests)."""
        def visit(node: _Node, depth: int, depths: list[int]) -> None:
            if node is not self._root and not (
                1 <= len(node.entries) <= self.max_entries
            ):
                raise AssertionError("node entry count out of bounds")
            if node.entries:
                expected = node.entries[0][0]
                for entry_rect, _ in node.entries[1:]:
                    expected = rect_union(expected, entry_rect)
                if node.rect != expected:
                    raise AssertionError("stale node rectangle")
            if node.leaf:
                depths.append(depth)
                return
            for entry_rect, child in node.entries:
                if entry_rect != child.rect:
                    raise AssertionError("parent entry rect != child rect")
                visit(child, depth + 1, depths)

        depths: list[int] = []
        visit(self._root, 0, depths)
        if depths and len(set(depths)) != 1:
            raise AssertionError("leaves at different depths")


def _center(rect: Rect, dim: int) -> float:
    half = len(rect) // 2
    return (rect[dim] + rect[half + dim]) / 2.0
