"""repro.meos — a pure-Python MEOS (Mobility Engine, Open Source) substitute.

Implements the temporal algebra MobilityDB/MobilityDuck are built on:
template types (``set``, ``span``, ``spanset``) over the base types of the
paper's Table 1, bounding boxes (``tbox``, ``stbox``), and temporal types
(``tbool``, ``tint``, ``tfloat``, ``ttext``, ``tgeompoint``…) with
discrete/step/linear interpolation, restriction operators, and lifted
spatiotemporal relationships.

Quick example::

    >>> from repro import meos
    >>> trip = meos.tgeompoint('[Point(0 0)@2025-01-01, Point(3 4)@2025-01-02]')
    >>> meos.length(trip)
    5.0
"""

from .basetypes import (
    BIGINT,
    BOOL,
    BaseType,
    DATE,
    FLOAT,
    GEOGRAPHY,
    GEOMETRY,
    INT,
    TEXT,
    TSTZ,
    base_type,
)
from .boxes import STBox, TBox, stbox, tbox
from .errors import MeosError, MeosTypeError
from .setcls import (
    Set,
    bigintset,
    dateset,
    floatset,
    geogset,
    geomset,
    intset,
    parse_set,
    textset,
    tstzset,
)
from .span import (
    Span,
    bigintspan,
    datespan,
    floatspan,
    intspan,
    parse_span,
    tstzspan,
)
from .spanset import (
    SpanSet,
    bigintspanset,
    datespanset,
    floatspanset,
    intspanset,
    parse_spanset,
    tstzspanset,
)
from .temporal import *  # noqa: F401,F403 - curated in temporal.__all__
from .temporal import (
    TBOOL,
    TFLOAT,
    TGEOGPOINT,
    TGEOMETRY,
    TGEOMPOINT,
    TINT,
    TTEXT,
    Temporal,
    parse_temporal,
)
from .mfjson import as_mfjson, as_mfjson_dict, from_mfjson
from .timetypes import (
    Interval,
    add_interval,
    format_date,
    format_timestamptz,
    interval_from_usecs,
    parse_date,
    parse_timestamptz,
)


def tbool(text: str) -> Temporal:
    """Parse a ``tbool`` literal."""
    return parse_temporal(text, TBOOL)


def tint(text: str) -> Temporal:
    """Parse a ``tint`` literal."""
    return parse_temporal(text, TINT)


def tfloat(text: str) -> Temporal:
    """Parse a ``tfloat`` literal."""
    return parse_temporal(text, TFLOAT)


def ttext(text: str) -> Temporal:
    """Parse a ``ttext`` literal."""
    return parse_temporal(text, TTEXT)


def tgeompoint(text: str) -> Temporal:
    """Parse a ``tgeompoint`` literal."""
    return parse_temporal(text, TGEOMPOINT)


def tgeometry(text: str) -> Temporal:
    """Parse a ``tgeometry`` literal."""
    return parse_temporal(text, TGEOMETRY)


def tgeogpoint(text: str) -> Temporal:
    """Parse a ``tgeogpoint`` literal."""
    return parse_temporal(text, TGEOGPOINT)
