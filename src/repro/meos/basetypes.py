"""Base-type descriptors for the MEOS template types.

MEOS builds its template types (``set``, ``span``, ``spanset``, temporal)
over a fixed list of base types (paper, Table 1).  A :class:`BaseType`
bundles everything the templates need to know about one of them: how to
parse and format values, how to order them, whether the domain is discrete
(for span canonicalization), and whether linear interpolation makes sense.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .. import geo
from .errors import MeosError
from .timetypes import (
    format_date,
    format_timestamptz,
    parse_date,
    parse_timestamptz,
)


@dataclass(frozen=True)
class BaseType:
    """Descriptor of a MEOS base type."""

    name: str
    parse: Callable[[str], Any]
    format: Callable[[Any], str]
    #: Discrete domains have a unit step; spans over them canonicalize to
    #: half-open ``[lo, hi)`` form.
    is_discrete: bool = False
    #: Unit step for discrete domains.
    step: int = 1
    #: Whether values support ordering (geometries do not).
    is_ordered: bool = True
    #: Whether the type supports continuous (linear) interpolation.
    is_continuous: bool = False
    #: Sort key for set canonicalization when is_ordered is False.
    sort_key: Callable[[Any], Any] | None = None

    def coerce(self, value: Any) -> Any:
        """Accept either an already-typed value or its textual form."""
        if isinstance(value, str):
            return self.parse(value)
        return value

    def __reduce__(self):
        # Pickle by name: descriptors are singletons holding callables.
        return (base_type, (self.name,))


def _parse_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("t", "true", "yes", "on", "1"):
        return True
    if lowered in ("f", "false", "no", "off", "0"):
        return False
    raise MeosError(f"invalid boolean literal: {text!r}")


def _parse_int(text: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise MeosError(f"invalid integer literal: {text!r}") from None


def _parse_float(text: str) -> float:
    try:
        return float(text.strip())
    except ValueError:
        raise MeosError(f"invalid float literal: {text!r}") from None


def _format_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(float(value))


def _parse_text(text: str) -> str:
    stripped = text.strip()
    if stripped.startswith('"') and stripped.endswith('"') and len(stripped) >= 2:
        return stripped[1:-1]
    return stripped


def _format_text(value: str) -> str:
    return f'"{value}"'


def _parse_geometry(text: str) -> geo.Geometry:
    return geo.parse_wkt(text)


def _format_geometry(value: geo.Geometry) -> str:
    return geo.format_wkt(value, precision=None)


def _geometry_sort_key(value: geo.Geometry) -> bytes:
    return geo.encode_wkb(value, include_srid=False)


BOOL = BaseType("bool", _parse_bool, lambda v: "t" if v else "f")
INT = BaseType("integer", _parse_int, str, is_discrete=True)
BIGINT = BaseType("bigint", _parse_int, str, is_discrete=True)
FLOAT = BaseType("float", _parse_float, _format_float, is_continuous=True)
TEXT = BaseType("text", _parse_text, _format_text)
DATE = BaseType("date", parse_date, format_date, is_discrete=True)
TSTZ = BaseType(
    "timestamptz", parse_timestamptz, format_timestamptz, is_continuous=True
)
GEOMETRY = BaseType(
    "geometry",
    _parse_geometry,
    _format_geometry,
    is_ordered=False,
    is_continuous=True,
    sort_key=_geometry_sort_key,
)
GEOGRAPHY = BaseType(
    "geography",
    _parse_geometry,
    _format_geometry,
    is_ordered=False,
    is_continuous=True,
    sort_key=_geometry_sort_key,
)

_BY_NAME = {
    t.name: t
    for t in (BOOL, INT, BIGINT, FLOAT, TEXT, DATE, TSTZ, GEOMETRY, GEOGRAPHY)
}
_BY_NAME["int"] = INT
_BY_NAME["float8"] = FLOAT
_BY_NAME["timestamp"] = TSTZ


def base_type(name: str) -> BaseType:
    """Look up a base type by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise MeosError(f"unknown base type {name!r}") from None
