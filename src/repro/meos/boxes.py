"""Bounding-box types: ``tbox`` (value x time) and ``stbox`` (space x time).

``stbox`` is the type the paper's R-tree index is built on (§4); ``tbox``
bounds the value and time extent of temporal numbers.  Both follow the
MobilityDB textual formats::

    TBOXINT XT([1, 4),[2025-01-01 ..., 2025-01-02 ...])
    TBOXFLOAT X([1, 2])
    STBOX X((1,2),(3,4))
    STBOX XT(((1,2),(3,4)),[2025-01-01 ..., 2025-01-02 ...])
    SRID=4326;STBOX T([2025-01-01 ..., 2025-01-02 ...])
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any

from .. import geo
from .basetypes import FLOAT, INT, TSTZ
from .errors import MeosError, MeosTypeError
from .span import Span
from .timetypes import Interval, add_interval


def _fmt_num(value: float) -> str:
    if value == int(value) and abs(value) < 1e16:
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class TBox:
    """Bounding box of a temporal number: value span and/or time span."""

    vspan: Span | None = None
    tspan: Span | None = None

    def __post_init__(self):
        if self.vspan is None and self.tspan is None:
            raise MeosError("tbox needs a value and/or time dimension")
        if self.tspan is not None and self.tspan.basetype is not TSTZ:
            raise MeosTypeError("tbox time dimension must be a tstzspan")

    @property
    def has_x(self) -> bool:
        return self.vspan is not None

    @property
    def has_t(self) -> bool:
        return self.tspan is not None

    # -- text I/O -----------------------------------------------------------------

    _RE = re.compile(
        r"^\s*TBOX(?P<sub>INT|FLOAT)?\s+(?P<dims>XT|X|T)\s*\((?P<body>.*)\)\s*$",
        re.IGNORECASE | re.DOTALL,
    )

    @classmethod
    def parse(cls, text: str) -> "TBox":
        match = cls._RE.match(text.strip())
        if not match:
            raise MeosError(f"invalid tbox literal: {text!r}")
        sub = (match["sub"] or "FLOAT").upper()
        dims = match["dims"].upper()
        body = match["body"].strip()
        basetype = INT if sub == "INT" else FLOAT
        vspan = tspan = None
        if dims == "XT":
            vpart, tpart = _split_two(body)
            vspan = Span.parse(vpart, basetype)
            tspan = Span.parse(tpart, TSTZ)
        elif dims == "X":
            vspan = Span.parse(body, basetype)
        else:
            tspan = Span.parse(body, TSTZ)
        return cls(vspan, tspan)

    def __str__(self) -> str:
        sub = "INT" if (self.vspan and self.vspan.basetype is INT) else "FLOAT"
        if self.vspan is not None and self.tspan is not None:
            return f"TBOX{sub} XT({self.vspan},{self.tspan})"
        if self.vspan is not None:
            return f"TBOX{sub} X({self.vspan})"
        return f"TBOX T({self.tspan})"

    def __repr__(self) -> str:
        return f"<TBox {self}>"

    # -- predicates ---------------------------------------------------------------

    def _aligned_dims(self, other: "TBox") -> tuple[bool, bool]:
        return (self.has_x and other.has_x, self.has_t and other.has_t)

    def overlaps(self, other: "TBox") -> bool:
        """The ``&&`` operator: overlap on every shared dimension."""
        has_x, has_t = self._aligned_dims(other)
        if not has_x and not has_t:
            raise MeosTypeError("tboxes share no dimension")
        if has_x and not self.vspan.overlaps(other.vspan):
            return False
        if has_t and not self.tspan.overlaps(other.tspan):
            return False
        return True

    def contains(self, other: "TBox") -> bool:
        """The ``@>`` operator."""
        has_x, has_t = self._aligned_dims(other)
        if not has_x and not has_t:
            raise MeosTypeError("tboxes share no dimension")
        if has_x and not self.vspan.contains_span(other.vspan):
            return False
        if has_t and not self.tspan.contains_span(other.tspan):
            return False
        return True

    # -- operations ----------------------------------------------------------------

    def union(self, other: "TBox") -> "TBox":
        vspan = tspan = None
        if self.has_x and other.has_x:
            vspan = _span_hull(self.vspan, other.vspan)
        elif self.has_x or other.has_x:
            raise MeosTypeError("union of tboxes with mixed dimensions")
        if self.has_t and other.has_t:
            tspan = _span_hull(self.tspan, other.tspan)
        elif self.has_t or other.has_t:
            raise MeosTypeError("union of tboxes with mixed dimensions")
        return TBox(vspan, tspan)

    def intersection(self, other: "TBox") -> "TBox | None":
        vspan = tspan = None
        if self.has_x and other.has_x:
            vspan = self.vspan.intersection(other.vspan)
            if vspan is None:
                return None
        if self.has_t and other.has_t:
            tspan = self.tspan.intersection(other.tspan)
            if tspan is None:
                return None
        if vspan is None and tspan is None:
            return None
        return TBox(vspan, tspan)

    def expand_value(self, amount: Any) -> "TBox":
        if not self.has_x:
            raise MeosTypeError("tbox has no value dimension to expand")
        return replace(self, vspan=self.vspan.expand(amount))

    def expand_time(self, interval: Interval) -> "TBox":
        if not self.has_t:
            raise MeosTypeError("tbox has no time dimension to expand")
        usecs = interval.total_usecs()
        tspan = Span(
            add_interval(self.tspan.lower, -interval),
            add_interval(self.tspan.upper, interval),
            self.tspan.lower_inc,
            self.tspan.upper_inc,
            TSTZ,
        )
        if usecs < 0 and tspan.lower > tspan.upper:
            raise MeosError("negative expansion emptied the tbox")
        return replace(self, tspan=tspan)


@dataclass(frozen=True)
class STBox:
    """Spatiotemporal bounding box: optional XY extent, optional time span."""

    xmin: float | None = None
    ymin: float | None = None
    xmax: float | None = None
    ymax: float | None = None
    tspan: Span | None = None
    srid: int = 0
    geodetic: bool = False

    def __post_init__(self):
        spatial = [self.xmin, self.ymin, self.xmax, self.ymax]
        defined = [v is not None for v in spatial]
        if any(defined) and not all(defined):
            raise MeosError("stbox spatial dimension is partially defined")
        if not any(defined) and self.tspan is None:
            raise MeosError("stbox needs a spatial and/or time dimension")
        if self.has_x and (self.xmin > self.xmax or self.ymin > self.ymax):
            raise MeosError("stbox min corner above max corner")
        if self.tspan is not None and self.tspan.basetype is not TSTZ:
            raise MeosTypeError("stbox time dimension must be a tstzspan")

    @property
    def has_x(self) -> bool:
        return self.xmin is not None

    @property
    def has_t(self) -> bool:
        return self.tspan is not None

    # -- text I/O -----------------------------------------------------------------

    _RE = re.compile(
        r"^\s*(?:SRID=(?P<srid>\d+)\s*;\s*)?"
        r"(?P<kind>STBOX|GEODSTBOX)\s+(?P<dims>XT|X|T)\s*\((?P<body>.*)\)\s*$",
        re.IGNORECASE | re.DOTALL,
    )

    @classmethod
    def parse(cls, text: str) -> "STBox":
        match = cls._RE.match(text.strip())
        if not match:
            raise MeosError(f"invalid stbox literal: {text!r}")
        srid = int(match["srid"]) if match["srid"] else 0
        geodetic = match["kind"].upper() == "GEODSTBOX"
        dims = match["dims"].upper()
        body = match["body"].strip()
        xmin = ymin = xmax = ymax = None
        tspan = None
        if dims == "XT":
            spatial, tpart = _split_two(body)
            xmin, ymin, xmax, ymax = _parse_corners(spatial)
            tspan = Span.parse(tpart, TSTZ)
        elif dims == "X":
            xmin, ymin, xmax, ymax = _parse_corners(f"({body})")
        else:
            tspan = Span.parse(body, TSTZ)
        return cls(xmin, ymin, xmax, ymax, tspan, srid, geodetic)

    def __str__(self) -> str:
        kind = "GEODSTBOX" if self.geodetic else "STBOX"
        prefix = f"SRID={self.srid};" if self.srid else ""
        if self.has_x and self.has_t:
            return (
                f"{prefix}{kind} XT((({_fmt_num(self.xmin)},{_fmt_num(self.ymin)}),"
                f"({_fmt_num(self.xmax)},{_fmt_num(self.ymax)})),{self.tspan})"
            )
        if self.has_x:
            return (
                f"{prefix}{kind} X((({_fmt_num(self.xmin)},{_fmt_num(self.ymin)}),"
                f"({_fmt_num(self.xmax)},{_fmt_num(self.ymax)})))"
            )
        return f"{prefix}{kind} T({self.tspan})"

    def __repr__(self) -> str:
        return f"<STBox {self}>"

    # -- constructors from other types ----------------------------------------------

    @classmethod
    def from_geometry(cls, geom: geo.Geometry,
                      tspan: Span | None = None) -> "STBox":
        xmin, ymin, xmax, ymax = geom.bounds()
        return cls(xmin, ymin, xmax, ymax, tspan, geom.srid)

    # -- accessors ------------------------------------------------------------------

    def to_tstzspan(self) -> Span:
        if not self.has_t:
            raise MeosTypeError("stbox has no time dimension")
        return self.tspan

    def to_geometry(self) -> geo.Geometry:
        """Spatial extent as a Polygon (or a Point for degenerate boxes)."""
        if not self.has_x:
            raise MeosTypeError("stbox has no spatial dimension")
        if self.xmin == self.xmax and self.ymin == self.ymax:
            return geo.Point(self.xmin, self.ymin, self.srid)
        return geo.Polygon(
            [
                (self.xmin, self.ymin),
                (self.xmax, self.ymin),
                (self.xmax, self.ymax),
                (self.xmin, self.ymax),
            ],
            srid=self.srid,
        )

    def area(self) -> float:
        if not self.has_x:
            raise MeosTypeError("stbox has no spatial dimension")
        return (self.xmax - self.xmin) * (self.ymax - self.ymin)

    # -- predicates -----------------------------------------------------------------

    def _check_srid(self, other: "STBox") -> None:
        if self.srid and other.srid and self.srid != other.srid:
            raise MeosError(
                f"stbox SRID mismatch: {self.srid} vs {other.srid}"
            )

    def _aligned_dims(self, other: "STBox") -> tuple[bool, bool]:
        return (self.has_x and other.has_x, self.has_t and other.has_t)

    def overlaps(self, other: "STBox") -> bool:
        """The ``&&`` operator: overlap on every shared dimension."""
        self._check_srid(other)
        has_x, has_t = self._aligned_dims(other)
        if not has_x and not has_t:
            raise MeosTypeError("stboxes share no dimension")
        if has_x and (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        ):
            return False
        if has_t and not self.tspan.overlaps(other.tspan):
            return False
        return True

    def contains(self, other: "STBox") -> bool:
        """The ``@>`` operator."""
        self._check_srid(other)
        has_x, has_t = self._aligned_dims(other)
        if not has_x and not has_t:
            raise MeosTypeError("stboxes share no dimension")
        if has_x and not (
            self.xmin <= other.xmin
            and self.xmax >= other.xmax
            and self.ymin <= other.ymin
            and self.ymax >= other.ymax
        ):
            return False
        if has_t and not self.tspan.contains_span(other.tspan):
            return False
        return True

    # -- operations -----------------------------------------------------------------

    def union(self, other: "STBox") -> "STBox":
        self._check_srid(other)
        has_x, has_t = self._aligned_dims(other)
        if (self.has_x != other.has_x) or (self.has_t != other.has_t):
            raise MeosTypeError("union of stboxes with mixed dimensions")
        xmin = ymin = xmax = ymax = None
        tspan = None
        if has_x:
            xmin = min(self.xmin, other.xmin)
            ymin = min(self.ymin, other.ymin)
            xmax = max(self.xmax, other.xmax)
            ymax = max(self.ymax, other.ymax)
        if has_t:
            tspan = _span_hull(self.tspan, other.tspan)
        return STBox(xmin, ymin, xmax, ymax, tspan,
                     self.srid or other.srid, self.geodetic)

    def intersection(self, other: "STBox") -> "STBox | None":
        self._check_srid(other)
        if not self.overlaps(other):
            return None
        has_x, has_t = self._aligned_dims(other)
        xmin = ymin = xmax = ymax = None
        tspan = None
        if has_x:
            xmin = max(self.xmin, other.xmin)
            ymin = max(self.ymin, other.ymin)
            xmax = min(self.xmax, other.xmax)
            ymax = min(self.ymax, other.ymax)
        if has_t:
            tspan = self.tspan.intersection(other.tspan)
            if tspan is None:
                return None
        return STBox(xmin, ymin, xmax, ymax, tspan,
                     self.srid or other.srid, self.geodetic)

    def expand_space(self, amount: float) -> "STBox":
        """Widen the spatial extent by ``amount`` on every side (paper §3.5)."""
        if not self.has_x:
            raise MeosTypeError("stbox has no spatial dimension to expand")
        return replace(
            self,
            xmin=self.xmin - amount,
            ymin=self.ymin - amount,
            xmax=self.xmax + amount,
            ymax=self.ymax + amount,
        )

    def expand_time(self, interval: Interval) -> "STBox":
        """Widen the temporal extent by ``interval`` on both ends."""
        if not self.has_t:
            raise MeosTypeError("stbox has no time dimension to expand")
        tspan = Span(
            add_interval(self.tspan.lower, -interval),
            add_interval(self.tspan.upper, interval),
            self.tspan.lower_inc,
            self.tspan.upper_inc,
            TSTZ,
        )
        return replace(self, tspan=tspan)

    def set_srid(self, srid: int) -> "STBox":
        return replace(self, srid=srid)

    def transform(self, target_srid: int) -> "STBox":
        """Reproject the spatial extent to another SRID."""
        if not self.has_x:
            return replace(self, srid=target_srid)
        if self.srid == 0:
            raise MeosError("cannot transform stbox with unknown SRID")
        if self.srid == target_srid:
            return self
        corners = [
            geo.transform_coord(x, y, self.srid, target_srid)
            for x, y in (
                (self.xmin, self.ymin),
                (self.xmin, self.ymax),
                (self.xmax, self.ymin),
                (self.xmax, self.ymax),
            )
        ]
        xs = [c[0] for c in corners]
        ys = [c[1] for c in corners]
        return replace(
            self,
            xmin=min(xs), ymin=min(ys), xmax=max(xs), ymax=max(ys),
            srid=target_srid,
        )


def _span_hull(a: Span, b: Span) -> Span:
    if a.lower < b.lower:
        lower, lower_inc = a.lower, a.lower_inc
    elif a.lower > b.lower:
        lower, lower_inc = b.lower, b.lower_inc
    else:
        lower, lower_inc = a.lower, a.lower_inc or b.lower_inc
    if a.upper > b.upper:
        upper, upper_inc = a.upper, a.upper_inc
    elif a.upper < b.upper:
        upper, upper_inc = b.upper, b.upper_inc
    else:
        upper, upper_inc = a.upper, a.upper_inc or b.upper_inc
    return Span(lower, upper, lower_inc, upper_inc, a.basetype)


def _split_two(body: str) -> tuple[str, str]:
    """Split ``"<paren-group>,<rest>"`` at the top-level comma."""
    depth = 0
    for i, ch in enumerate(body):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            return body[:i].strip(), body[i + 1 :].strip()
    raise MeosError(f"expected two comma-separated parts in {body!r}")


_CORNERS_RE = re.compile(
    r"^\(\s*\(\s*(?P<x1>[-+0-9.eE]+)\s*,\s*(?P<y1>[-+0-9.eE]+)\s*\)\s*,"
    r"\s*\(\s*(?P<x2>[-+0-9.eE]+)\s*,\s*(?P<y2>[-+0-9.eE]+)\s*\)\s*\)$"
)


def _parse_corners(text: str) -> tuple[float, float, float, float]:
    match = _CORNERS_RE.match(text.strip())
    if not match:
        raise MeosError(f"invalid stbox corners: {text!r}")
    x1 = float(match["x1"])
    y1 = float(match["y1"])
    x2 = float(match["x2"])
    y2 = float(match["y2"])
    return (min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))


def tbox(text: str) -> TBox:
    return TBox.parse(text)


def stbox(text: str) -> STBox:
    return STBox.parse(text)
