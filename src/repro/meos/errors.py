"""Error types for the MEOS temporal algebra."""


class MeosError(ValueError):
    """Raised on malformed temporal values or invalid operations."""


class MeosTypeError(MeosError):
    """Raised when operands have incompatible temporal/base types."""
