"""MF-JSON (OGC Moving Features JSON) serialization of temporal values.

MEOS implements the OGC Moving Features Encoding Extension — JSON (one of
the standards the paper builds on, §2.1/§2.2 [20]); MobilityDB exposes it
as ``asMFJSON`` / ``<type>FromMFJSON``.  This module reproduces that pair
for all temporal types:

* temporal points serialize as ``MovingPoint`` with ``coordinates``;
* temporal numbers/booleans/text as ``MovingFloat`` / ``MovingInteger`` /
  ``MovingBoolean`` / ``MovingText`` with ``values``;
* general temporal geometries as ``MovingGeometry`` with WKT ``values``.

Sequence sets carry a ``sequences`` array; instants and single sequences
are flat, matching MobilityDB's layout.
"""

from __future__ import annotations

import json
from typing import Any

from .. import geo
from .errors import MeosError
from .temporal.base import Temporal, TInstant, TSequence, TSequenceSet
from .temporal.interp import Interp
from .temporal.ttypes import (
    SPATIAL_TYPES,
    TemporalType,
    temporal_type,
)
from .timetypes import parse_timestamptz, timestamptz_to_datetime

_TYPE_TAGS = {
    "tbool": "MovingBoolean",
    "tint": "MovingInteger",
    "tfloat": "MovingFloat",
    "ttext": "MovingText",
    "tgeompoint": "MovingPoint",
    "tgeogpoint": "MovingPoint",
    "tgeometry": "MovingGeometry",
}
_TAG_TYPES = {
    "MovingBoolean": "tbool",
    "MovingInteger": "tint",
    "MovingFloat": "tfloat",
    "MovingText": "ttext",
    "MovingPoint": "tgeompoint",
    "MovingGeometry": "tgeometry",
}
_INTERP_TAGS = {
    Interp.DISCRETE: "Discrete",
    Interp.STEP: "Step",
    Interp.LINEAR: "Linear",
}


def _format_datetime(usecs: int) -> str:
    moment = timestamptz_to_datetime(usecs)
    text = moment.strftime("%Y-%m-%dT%H:%M:%S")
    if moment.microsecond:
        text += f".{moment.microsecond:06d}".rstrip("0")
    return text + "+00:00"


def _value_out(ttype: TemporalType, value: Any) -> Any:
    if ttype.name in ("tgeompoint", "tgeogpoint"):
        return [value.x, value.y]
    if ttype.name == "tgeometry":
        return geo.format_wkt(value)
    return value


def _value_in(ttype: TemporalType, value: Any) -> Any:
    if ttype.name in ("tgeompoint", "tgeogpoint"):
        return geo.Point(value[0], value[1])
    if ttype.name == "tgeometry":
        return geo.parse_wkt(value)
    return value


def _values_key(ttype: TemporalType) -> str:
    return "coordinates" if ttype.name in ("tgeompoint", "tgeogpoint") \
        else "values"


def _sequence_body(ttype: TemporalType, seq: TSequence) -> dict[str, Any]:
    instants = seq.instants()
    return {
        _values_key(ttype): [
            _value_out(ttype, inst.value) for inst in instants
        ],
        "datetimes": [_format_datetime(inst.t) for inst in instants],
        "lower_inc": seq.lower_inc,
        "upper_inc": seq.upper_inc,
    }


def as_mfjson(value: Temporal, with_bbox: bool = False) -> str:
    """Serialize a temporal value as an MF-JSON string."""
    document = as_mfjson_dict(value, with_bbox)
    return json.dumps(document)


def as_mfjson_dict(value: Temporal, with_bbox: bool = False) -> dict:
    ttype = value.ttype
    tag = _TYPE_TAGS.get(ttype.name)
    if tag is None:
        raise MeosError(f"no MF-JSON mapping for {ttype.name}")
    document: dict[str, Any] = {"type": tag}
    if ttype in SPATIAL_TYPES and value.srid():
        document["crs"] = {
            "type": "Name",
            "properties": {"name": f"EPSG:{value.srid()}"},
        }
    if with_bbox:
        span = value.tstzspan()
        document["period"] = {
            "begin": _format_datetime(span.lower),
            "end": _format_datetime(span.upper),
        }
        if ttype in SPATIAL_TYPES:
            box = value.stbox()
            document["bbox"] = [box.xmin, box.ymin, box.xmax, box.ymax]
    if isinstance(value, TSequenceSet):
        document["sequences"] = [
            _sequence_body(ttype, seq) for seq in value.sequences()
        ]
    elif isinstance(value, TSequence):
        document.update(_sequence_body(ttype, value))
    else:
        assert isinstance(value, TInstant)
        document[_values_key(ttype)] = [_value_out(ttype, value.value)]
        document["datetimes"] = [_format_datetime(value.t)]
    document["interpolation"] = _INTERP_TAGS[value.interp]
    return document


def from_mfjson(text: "str | dict") -> Temporal:
    """Parse an MF-JSON string (or parsed dict) into a temporal value."""
    if isinstance(text, str):
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise MeosError(f"invalid MF-JSON: {exc}") from None
    else:
        document = text
    tag = document.get("type")
    type_name = _TAG_TYPES.get(tag)
    if type_name is None:
        raise MeosError(f"unknown MF-JSON type {tag!r}")
    ttype = temporal_type(type_name)
    interp_tag = document.get("interpolation", "Linear")
    try:
        interp = {v: k for k, v in _INTERP_TAGS.items()}[interp_tag]
    except KeyError:
        raise MeosError(
            f"unknown MF-JSON interpolation {interp_tag!r}"
        ) from None
    srid = 0
    crs = document.get("crs")
    if crs:
        name = crs.get("properties", {}).get("name", "")
        if name.upper().startswith("EPSG:"):
            srid = int(name[5:])

    def instants_of(body: dict) -> list[TInstant]:
        values = body.get(_values_key(ttype))
        datetimes = body.get("datetimes")
        if not values or not datetimes or len(values) != len(datetimes):
            raise MeosError("malformed MF-JSON values/datetimes")
        out = []
        for raw, stamp in zip(values, datetimes):
            value = _value_in(ttype, raw)
            if srid and hasattr(value, "with_srid"):
                value = value.with_srid(srid)
            out.append(TInstant(ttype, value, parse_timestamptz(stamp)))
        return out

    if "sequences" in document:
        sequences = [
            TSequence(
                ttype,
                instants_of(body),
                bool(body.get("lower_inc", True)),
                bool(body.get("upper_inc", True)),
                interp,
            )
            for body in document["sequences"]
        ]
        return TSequenceSet(ttype, sequences)
    instants = instants_of(document)
    if len(instants) == 1 and "lower_inc" not in document:
        return instants[0]
    return TSequence(
        ttype,
        instants,
        bool(document.get("lower_inc", True)),
        bool(document.get("upper_inc", True)),
        interp,
    )
