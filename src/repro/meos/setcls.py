"""The ``set`` template type: an ordered collection of distinct values.

Concrete instances are ``intset``, ``bigintset``, ``floatset``, ``textset``,
``dateset``, ``tstzset``, ``geomset`` and ``geogset`` (paper, Table 1).
Values are stored sorted and deduplicated; geometry sets sort by WKB bytes
since geometries have no natural order (matching MobilityDB's behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from .. import geo
from .basetypes import (
    BIGINT,
    BaseType,
    DATE,
    FLOAT,
    GEOGRAPHY,
    GEOMETRY,
    INT,
    TEXT,
    TSTZ,
)
from .errors import MeosError, MeosTypeError
from .span import Span
from .timetypes import Interval, add_interval


@dataclass(frozen=True)
class Set:
    """A sorted, deduplicated set of base-type values."""

    values: tuple[Any, ...]
    basetype: BaseType

    @classmethod
    def from_values(cls, values: Iterable[Any], basetype: BaseType) -> "Set":
        items = [basetype.coerce(v) for v in values]
        if not items:
            raise MeosError("a set must contain at least one value")
        key = basetype.sort_key or (lambda v: v)
        seen: dict[Any, Any] = {}
        for item in items:
            seen.setdefault(key(item), item)
        ordered = [seen[k] for k in sorted(seen)]
        return cls(tuple(ordered), basetype)

    @classmethod
    def parse(cls, text: str, basetype: BaseType) -> "Set":
        stripped = text.strip()
        srid = 0
        if stripped.upper().startswith("SRID="):
            head, _, rest = stripped.partition(";")
            try:
                srid = int(head[5:])
            except ValueError:
                raise MeosError(f"bad SRID prefix in {text!r}") from None
            stripped = rest.strip()
        if not (stripped.startswith("{") and stripped.endswith("}")):
            raise MeosError(f"invalid set literal: {text!r}")
        body = stripped[1:-1]
        raw_items = _split_top_level(body)
        if not raw_items:
            raise MeosError("a set must contain at least one value")
        values = [basetype.parse(item) for item in raw_items]
        if srid and basetype in (GEOMETRY, GEOGRAPHY):
            values = [
                v.with_srid(srid) if getattr(v, "srid", 0) == 0 else v
                for v in values
            ]
        return cls.from_values(values, basetype)

    # -- output -----------------------------------------------------------------

    def __str__(self) -> str:
        fmt = self.basetype.format
        if self.basetype in (GEOMETRY, GEOGRAPHY):
            body = ", ".join(f'"{fmt(v)}"' for v in self.values)
            srid = self.srid()
            prefix = f"SRID={srid};" if srid else ""
            return f"{prefix}{{{body}}}"
        return "{" + ", ".join(fmt(v) for v in self.values) + "}"

    def __repr__(self) -> str:
        return f"<Set {self.basetype.name} {self}>"

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    # -- accessors ----------------------------------------------------------------

    def start_value(self) -> Any:
        return self.values[0]

    def end_value(self) -> Any:
        return self.values[-1]

    def value_at(self, index: int) -> Any:
        """1-based access, like MobilityDB's ``valueN``."""
        if not 1 <= index <= len(self.values):
            raise MeosError(f"set index {index} out of range")
        return self.values[index - 1]

    def srid(self) -> int:
        if self.basetype not in (GEOMETRY, GEOGRAPHY):
            raise MeosTypeError("srid() requires a geo set")
        return self.values[0].srid if self.values else 0

    def to_span(self) -> Span:
        """Bounding span of an ordered set."""
        if not self.basetype.is_ordered:
            raise MeosTypeError(f"{self.basetype.name}set has no span")
        return Span.make(
            self.values[0], self.values[-1], self.basetype, True, True
        )

    def mem_size(self) -> int:
        """Approximate storage size in bytes (MobilityDB ``memSize``)."""
        base = 16
        per_value = {
            "bool": 1,
            "integer": 4,
            "bigint": 8,
            "float": 8,
            "date": 4,
            "timestamptz": 8,
        }
        size = per_value.get(self.basetype.name)
        if size is not None:
            return base + size * len(self.values)
        if self.basetype.name == "text":
            return base + sum(len(v.encode()) + 4 for v in self.values)
        return base + sum(
            len(geo.encode_wkb(v)) for v in self.values
        )

    # -- predicates ---------------------------------------------------------------

    def _check(self, other: "Set") -> None:
        if other.basetype.name != self.basetype.name:
            raise MeosTypeError(
                f"set type mismatch: {self.basetype.name} vs "
                f"{other.basetype.name}"
            )

    def _key(self, value: Any) -> Any:
        key = self.basetype.sort_key
        return key(value) if key else value

    def contains_value(self, value: Any) -> bool:
        value = self.basetype.coerce(value)
        target = self._key(value)
        return any(self._key(v) == target for v in self.values)

    def contains_set(self, other: "Set") -> bool:
        self._check(other)
        mine = {self._key(v) for v in self.values}
        return all(self._key(v) in mine for v in other.values)

    def overlaps(self, other: "Set") -> bool:
        self._check(other)
        mine = {self._key(v) for v in self.values}
        return any(self._key(v) in mine for v in other.values)

    # -- set operations -------------------------------------------------------------

    def union(self, other: "Set") -> "Set":
        self._check(other)
        return Set.from_values(self.values + other.values, self.basetype)

    def intersection(self, other: "Set") -> "Set | None":
        self._check(other)
        keys = {self._key(v) for v in other.values}
        kept = [v for v in self.values if self._key(v) in keys]
        if not kept:
            return None
        return Set(tuple(kept), self.basetype)

    def minus(self, other: "Set") -> "Set | None":
        self._check(other)
        keys = {self._key(v) for v in other.values}
        kept = [v for v in self.values if self._key(v) not in keys]
        if not kept:
            return None
        return Set(tuple(kept), self.basetype)

    # -- transformations --------------------------------------------------------------

    def shift_scale(self, shift: Any = None, width: Any = None) -> "Set":
        """Shift all values and/or rescale their extent to ``width``.

        For ``tstzset`` the arguments are :class:`Interval` objects (the
        paper's ``shiftScale(tstzset, interval, interval)``); for numeric
        sets they are plain numbers.
        """
        values = list(self.values)
        if self.basetype is TSTZ:
            if shift is not None:
                if not isinstance(shift, Interval):
                    raise MeosTypeError("tstzset shift must be an interval")
                values = [add_interval(v, shift) for v in values]
            if width is not None:
                if not isinstance(width, Interval):
                    raise MeosTypeError("tstzset width must be an interval")
                values = _rescale(values, width.total_usecs())
        else:
            if shift is not None:
                values = [v + shift for v in values]
            if width is not None:
                values = _rescale(values, width)
        if self.basetype.is_discrete or self.basetype is TSTZ:
            values = [int(round(v)) for v in values]
        return Set.from_values(values, self.basetype)

    def transform(self, target_srid: int) -> "Set":
        if self.basetype not in (GEOMETRY, GEOGRAPHY):
            raise MeosTypeError("transform() requires a geo set")
        return Set(
            tuple(geo.transform(v, target_srid) for v in self.values),
            self.basetype,
        )

    def map_values(
        self, func: Callable[[Any], Any], target: BaseType
    ) -> "Set":
        """Convert values to another base type (e.g. intset -> floatset)."""
        return Set.from_values([func(v) for v in self.values], target)


def _rescale(values: list[Any], width: Any) -> list[Any]:
    if width < 0:
        raise MeosError(f"invalid set width {width!r}")
    lo, hi = values[0], values[-1]
    extent = hi - lo
    if extent == 0:
        return list(values)
    return [lo + (v - lo) * width / extent for v in values]


def _split_top_level(text: str) -> list[str]:
    items: list[str] = []
    depth = 0
    in_quote = False
    start = 0
    for i, ch in enumerate(text):
        if ch == '"':
            in_quote = not in_quote
        elif in_quote:
            continue
        elif ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            items.append(text[start:i])
            start = i + 1
    tail = text[start:]
    if tail.strip():
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


# -- concrete constructors --------------------------------------------------------


def intset(text: str) -> Set:
    return Set.parse(text, INT)


def bigintset(text: str) -> Set:
    return Set.parse(text, BIGINT)


def floatset(text: str) -> Set:
    return Set.parse(text, FLOAT)


def textset(text: str) -> Set:
    return Set.parse(text, TEXT)


def dateset(text: str) -> Set:
    return Set.parse(text, DATE)


def tstzset(text: str) -> Set:
    return Set.parse(text, TSTZ)


def geomset(text: str) -> Set:
    return Set.parse(text, GEOMETRY)


def geogset(text: str) -> Set:
    return Set.parse(text, GEOGRAPHY)


SET_TYPES = {
    "intset": INT,
    "bigintset": BIGINT,
    "floatset": FLOAT,
    "textset": TEXT,
    "dateset": DATE,
    "tstzset": TSTZ,
    "geomset": GEOMETRY,
    "geogset": GEOGRAPHY,
}


def parse_set(text: str, type_name: str) -> Set:
    try:
        basetype = SET_TYPES[type_name.lower()]
    except KeyError:
        raise MeosError(f"unknown set type {type_name!r}") from None
    return Set.parse(text, basetype)
