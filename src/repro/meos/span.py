"""The ``span`` template type: a contiguous range of an ordered base type.

Concrete instances are ``intspan``, ``bigintspan``, ``floatspan``,
``datespan``, and ``tstzspan`` (paper, Table 1).  Spans over discrete base
types are canonicalized to half-open ``[lo, hi)`` form, mirroring
MobilityDB: ``intspan '[1, 3]'`` prints as ``[1, 4)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .basetypes import BaseType, DATE, FLOAT, INT, BIGINT, TSTZ
from .errors import MeosError, MeosTypeError
from .timetypes import Interval, interval_from_usecs


@dataclass(frozen=True)
class Span:
    """A range ``lower .. upper`` with open/closed bounds."""

    lower: Any
    upper: Any
    lower_inc: bool
    upper_inc: bool
    basetype: BaseType

    def __post_init__(self):
        if self.lower > self.upper:
            raise MeosError(
                f"span lower bound {self.lower!r} above upper {self.upper!r}"
            )
        if self.lower == self.upper and not (self.lower_inc and self.upper_inc):
            raise MeosError("empty span")
        if self.basetype.is_discrete:
            lower, upper = self.lower, self.upper
            lower_inc, upper_inc = self.lower_inc, self.upper_inc
            if not lower_inc:
                lower += self.basetype.step
                lower_inc = True
            if upper_inc:
                upper += self.basetype.step
                upper_inc = False
            if lower >= upper:
                raise MeosError("empty span after canonicalization")
            object.__setattr__(self, "lower", lower)
            object.__setattr__(self, "upper", upper)
            object.__setattr__(self, "lower_inc", lower_inc)
            object.__setattr__(self, "upper_inc", upper_inc)

    # -- construction ---------------------------------------------------------

    @classmethod
    def make(
        cls,
        lower: Any,
        upper: Any,
        basetype: BaseType,
        lower_inc: bool = True,
        upper_inc: bool | None = None,
    ) -> "Span":
        """Build a span; default upper bound inclusivity follows MobilityDB
        (inclusive for discrete/timestamp equality spans, exclusive else)."""
        if upper_inc is None:
            upper_inc = lower == upper
        return cls(lower, upper, lower_inc, upper_inc, basetype)

    @classmethod
    def parse(cls, text: str, basetype: BaseType) -> "Span":
        stripped = text.strip()
        if not stripped or stripped[0] not in "[(":
            raise MeosError(f"invalid span literal: {text!r}")
        lower_inc = stripped[0] == "["
        if stripped[-1] not in "])":
            raise MeosError(f"invalid span literal: {text!r}")
        upper_inc = stripped[-1] == "]"
        body = stripped[1:-1]
        comma = _top_level_comma(body)
        if comma < 0:
            raise MeosError(f"span literal needs two bounds: {text!r}")
        lower = basetype.parse(body[:comma])
        upper = basetype.parse(body[comma + 1 :])
        return cls(lower, upper, lower_inc, upper_inc, basetype)

    # -- output ---------------------------------------------------------------

    def __str__(self) -> str:
        left = "[" if self.lower_inc else "("
        right = "]" if self.upper_inc else ")"
        fmt = self.basetype.format
        return f"{left}{fmt(self.lower)}, {fmt(self.upper)}{right}"

    def __repr__(self) -> str:
        return f"<Span {self.basetype.name} {self}>"

    # -- accessors ------------------------------------------------------------

    def width(self) -> Any:
        """Length of the span (``upper - lower``)."""
        return self.upper - self.lower

    def duration(self) -> Interval:
        """For tstzspans: width as an interval."""
        if self.basetype is not TSTZ:
            raise MeosTypeError("duration() requires a tstzspan")
        return interval_from_usecs(self.upper - self.lower)

    # -- predicates -----------------------------------------------------------

    def _check(self, other: "Span") -> None:
        if other.basetype.name != self.basetype.name:
            raise MeosTypeError(
                f"span type mismatch: {self.basetype.name} vs "
                f"{other.basetype.name}"
            )

    def contains_value(self, value: Any) -> bool:
        if value < self.lower or (value == self.lower and not self.lower_inc):
            return False
        if value > self.upper or (value == self.upper and not self.upper_inc):
            return False
        return True

    def contains_span(self, other: "Span") -> bool:
        self._check(other)
        lower_ok = self.lower < other.lower or (
            self.lower == other.lower and (self.lower_inc or not other.lower_inc)
        )
        upper_ok = self.upper > other.upper or (
            self.upper == other.upper and (self.upper_inc or not other.upper_inc)
        )
        return lower_ok and upper_ok

    def overlaps(self, other: "Span") -> bool:
        self._check(other)
        if self.upper < other.lower or other.upper < self.lower:
            return False
        if self.upper == other.lower:
            return self.upper_inc and other.lower_inc
        if other.upper == self.lower:
            return other.upper_inc and self.lower_inc
        return True

    def is_left(self, other: "Span") -> bool:
        """Strictly before (``<<``)."""
        self._check(other)
        return self.upper < other.lower or (
            self.upper == other.lower
            and not (self.upper_inc and other.lower_inc)
        )

    def is_right(self, other: "Span") -> bool:
        """Strictly after (``>>``)."""
        return other.is_left(self)

    def is_adjacent(self, other: "Span") -> bool:
        self._check(other)
        return (
            self.upper == other.lower
            and self.upper_inc != other.lower_inc
        ) or (
            other.upper == self.lower
            and other.upper_inc != self.lower_inc
        )

    # -- set operations ---------------------------------------------------------

    def intersection(self, other: "Span") -> "Span | None":
        self._check(other)
        if not self.overlaps(other):
            return None
        if self.lower > other.lower:
            lower, lower_inc = self.lower, self.lower_inc
        elif self.lower < other.lower:
            lower, lower_inc = other.lower, other.lower_inc
        else:
            lower, lower_inc = self.lower, self.lower_inc and other.lower_inc
        if self.upper < other.upper:
            upper, upper_inc = self.upper, self.upper_inc
        elif self.upper > other.upper:
            upper, upper_inc = other.upper, other.upper_inc
        else:
            upper, upper_inc = self.upper, self.upper_inc and other.upper_inc
        try:
            return Span(lower, upper, lower_inc, upper_inc, self.basetype)
        except MeosError:
            return None

    def union(self, other: "Span") -> "Span":
        """Union of overlapping or adjacent spans; raises otherwise."""
        self._check(other)
        if not (self.overlaps(other) or self.is_adjacent(other)):
            raise MeosError("union of disjoint spans is not a span")
        if self.lower < other.lower:
            lower, lower_inc = self.lower, self.lower_inc
        elif self.lower > other.lower:
            lower, lower_inc = other.lower, other.lower_inc
        else:
            lower, lower_inc = self.lower, self.lower_inc or other.lower_inc
        if self.upper > other.upper:
            upper, upper_inc = self.upper, self.upper_inc
        elif self.upper < other.upper:
            upper, upper_inc = other.upper, other.upper_inc
        else:
            upper, upper_inc = self.upper, self.upper_inc or other.upper_inc
        return Span(lower, upper, lower_inc, upper_inc, self.basetype)

    def minus(self, other: "Span") -> list["Span"]:
        """Difference ``self - other`` as 0, 1 or 2 spans."""
        self._check(other)
        if not self.overlaps(other):
            return [self]
        pieces: list[Span] = []
        if self.lower < other.lower or (
            self.lower == other.lower
            and self.lower_inc
            and not other.lower_inc
        ):
            pieces.append(
                Span(
                    self.lower,
                    other.lower,
                    self.lower_inc,
                    not other.lower_inc,
                    self.basetype,
                )
            )
        if self.upper > other.upper or (
            self.upper == other.upper
            and self.upper_inc
            and not other.upper_inc
        ):
            pieces.append(
                Span(
                    other.upper,
                    self.upper,
                    not other.upper_inc,
                    self.upper_inc,
                    self.basetype,
                )
            )
        return pieces

    # -- transformations ----------------------------------------------------------

    def shift_scale(self, shift: Any = None, width: Any = None) -> "Span":
        """Shift the span and/or rescale it to a new width."""
        lower, upper = self.lower, self.upper
        if shift is not None:
            lower = lower + shift
            upper = upper + shift
        if width is not None:
            if width < 0 or (width == 0 and not (self.lower_inc and self.upper_inc)):
                raise MeosError(f"invalid span width {width!r}")
            upper = lower + width
        return Span(lower, upper, self.lower_inc, self.upper_inc, self.basetype)

    def expand(self, amount: Any) -> "Span":
        """Widen both ends by ``amount``."""
        return Span(
            self.lower - amount,
            self.upper + amount,
            self.lower_inc,
            self.upper_inc,
            self.basetype,
        )

    def distance_to_value(self, value: Any) -> Any:
        if self.contains_value(value):
            return 0
        if value < self.lower:
            return self.lower - value
        return value - self.upper

    def distance(self, other: "Span") -> Any:
        self._check(other)
        if self.overlaps(other):
            return 0
        if self.upper <= other.lower:
            return other.lower - self.upper
        return self.lower - other.upper


def _top_level_comma(text: str) -> int:
    """Index of the comma separating span bounds (tolerates commas inside
    parentheses, quotes — relevant for geometry bounds)."""
    depth = 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            return i
    return -1


# -- concrete constructors ----------------------------------------------------


def intspan(text: str) -> Span:
    return Span.parse(text, INT)


def bigintspan(text: str) -> Span:
    return Span.parse(text, BIGINT)


def floatspan(text: str) -> Span:
    return Span.parse(text, FLOAT)


def datespan(text: str) -> Span:
    return Span.parse(text, DATE)


def tstzspan(text: str) -> Span:
    return Span.parse(text, TSTZ)


SPAN_TYPES = {
    "intspan": INT,
    "bigintspan": BIGINT,
    "floatspan": FLOAT,
    "datespan": DATE,
    "tstzspan": TSTZ,
}


def parse_span(text: str, type_name: str) -> Span:
    try:
        basetype = SPAN_TYPES[type_name.lower()]
    except KeyError:
        raise MeosError(f"unknown span type {type_name!r}") from None
    return Span.parse(text, basetype)
