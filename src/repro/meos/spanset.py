"""The ``spanset`` template type: a normalized list of disjoint spans.

Concrete instances are ``intspanset``, ``bigintspanset``, ``floatspanset``,
``datespanset`` and ``tstzspanset`` (paper, Table 1).  The constructor
normalizes input: spans are sorted and overlapping/adjacent spans merged,
so equality is structural.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from .basetypes import BIGINT, BaseType, DATE, FLOAT, INT, TSTZ
from .errors import MeosError, MeosTypeError
from .setcls import _split_top_level
from .span import Span
from .timetypes import Interval, interval_from_usecs


@dataclass(frozen=True)
class SpanSet:
    """An ordered set of disjoint, non-adjacent spans."""

    spans: tuple[Span, ...]
    basetype: BaseType

    @classmethod
    def from_spans(cls, spans: Iterable[Span]) -> "SpanSet":
        items = list(spans)
        if not items:
            raise MeosError("a spanset must contain at least one span")
        basetype = items[0].basetype
        for span in items[1:]:
            if span.basetype.name != basetype.name:
                raise MeosTypeError("mixed span types in spanset")
        items.sort(key=lambda s: (s.lower, not s.lower_inc))
        merged = [items[0]]
        for span in items[1:]:
            last = merged[-1]
            if last.overlaps(span) or last.is_adjacent(span):
                merged[-1] = last.union(span)
            else:
                merged.append(span)
        return cls(tuple(merged), basetype)

    @classmethod
    def parse(cls, text: str, basetype: BaseType) -> "SpanSet":
        stripped = text.strip()
        if not (stripped.startswith("{") and stripped.endswith("}")):
            raise MeosError(f"invalid spanset literal: {text!r}")
        raw_items = _split_top_level(stripped[1:-1])
        if not raw_items:
            raise MeosError("a spanset must contain at least one span")
        return cls.from_spans(Span.parse(item, basetype) for item in raw_items)

    # -- output -----------------------------------------------------------------

    def __str__(self) -> str:
        return "{" + ", ".join(str(s) for s in self.spans) + "}"

    def __repr__(self) -> str:
        return f"<SpanSet {self.basetype.name} {self}>"

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    # -- accessors ----------------------------------------------------------------

    def to_span(self) -> Span:
        """Bounding span."""
        first, last = self.spans[0], self.spans[-1]
        return Span(
            first.lower, last.upper, first.lower_inc, last.upper_inc,
            self.basetype,
        )

    def width(self) -> Any:
        """Sum of the widths of the member spans."""
        return sum(s.width() for s in self.spans)

    def duration(self, boundspan: bool = False) -> Interval:
        """Total duration; with ``boundspan`` the bounding span's duration."""
        if self.basetype is not TSTZ:
            raise MeosTypeError("duration() requires a tstzspanset")
        if boundspan:
            return self.to_span().duration()
        return interval_from_usecs(sum(s.upper - s.lower for s in self.spans))

    def num_spans(self) -> int:
        return len(self.spans)

    def start_span(self) -> Span:
        return self.spans[0]

    def end_span(self) -> Span:
        return self.spans[-1]

    # -- predicates ---------------------------------------------------------------

    def _check(self, other: "SpanSet") -> None:
        if other.basetype.name != self.basetype.name:
            raise MeosTypeError(
                f"spanset type mismatch: {self.basetype.name} vs "
                f"{other.basetype.name}"
            )

    def contains_value(self, value: Any) -> bool:
        return any(s.contains_value(value) for s in self.spans)

    def contains_span(self, span: Span) -> bool:
        return any(s.contains_span(span) for s in self.spans)

    def contains_spanset(self, other: "SpanSet") -> bool:
        self._check(other)
        return all(self.contains_span(s) for s in other.spans)

    def overlaps_span(self, span: Span) -> bool:
        return any(s.overlaps(span) for s in self.spans)

    def overlaps(self, other: "SpanSet") -> bool:
        self._check(other)
        return any(self.overlaps_span(s) for s in other.spans)

    # -- set operations -------------------------------------------------------------

    def union(self, other: "SpanSet") -> "SpanSet":
        self._check(other)
        return SpanSet.from_spans(self.spans + other.spans)

    def intersection_span(self, span: Span) -> "SpanSet | None":
        pieces = [
            hit for s in self.spans if (hit := s.intersection(span)) is not None
        ]
        if not pieces:
            return None
        return SpanSet.from_spans(pieces)

    def intersection(self, other: "SpanSet") -> "SpanSet | None":
        self._check(other)
        pieces: list[Span] = []
        for a in self.spans:
            for b in other.spans:
                hit = a.intersection(b)
                if hit is not None:
                    pieces.append(hit)
        if not pieces:
            return None
        return SpanSet.from_spans(pieces)

    def minus_span(self, span: Span) -> "SpanSet | None":
        pieces: list[Span] = []
        for s in self.spans:
            pieces.extend(s.minus(span))
        if not pieces:
            return None
        return SpanSet.from_spans(pieces)

    def minus(self, other: "SpanSet") -> "SpanSet | None":
        self._check(other)
        result: "SpanSet | None" = self
        for span in other.spans:
            if result is None:
                return None
            result = result.minus_span(span)
        return result

    # -- transformations --------------------------------------------------------------

    def shift_scale(self, shift: Any = None, width: Any = None) -> "SpanSet":
        """Shift and/or rescale the whole spanset extent."""
        spans = list(self.spans)
        if self.basetype is TSTZ and isinstance(shift, Interval):
            shift = shift.total_usecs()
        if self.basetype is TSTZ and isinstance(width, Interval):
            width = width.total_usecs()
        if shift is not None:
            spans = [s.shift_scale(shift=shift) for s in spans]
        if width is not None:
            lo = spans[0].lower
            hi = spans[-1].upper
            extent = hi - lo
            if extent == 0:
                raise MeosError("cannot rescale a degenerate spanset")

            def remap(v: Any) -> Any:
                scaled = lo + (v - lo) * width / extent
                if self.basetype.is_discrete or self.basetype is TSTZ:
                    return int(round(scaled))
                return scaled

            spans = [
                Span(remap(s.lower), remap(s.upper), s.lower_inc, s.upper_inc,
                     self.basetype)
                for s in spans
            ]
        return SpanSet.from_spans(spans)


# -- concrete constructors --------------------------------------------------------


def intspanset(text: str) -> SpanSet:
    return SpanSet.parse(text, INT)


def bigintspanset(text: str) -> SpanSet:
    return SpanSet.parse(text, BIGINT)


def floatspanset(text: str) -> SpanSet:
    return SpanSet.parse(text, FLOAT)


def datespanset(text: str) -> SpanSet:
    return SpanSet.parse(text, DATE)


def tstzspanset(text: str) -> SpanSet:
    return SpanSet.parse(text, TSTZ)


SPANSET_TYPES = {
    "intspanset": INT,
    "bigintspanset": BIGINT,
    "floatspanset": FLOAT,
    "datespanset": DATE,
    "tstzspanset": TSTZ,
}


def parse_spanset(text: str, type_name: str) -> SpanSet:
    try:
        basetype = SPANSET_TYPES[type_name.lower()]
    except KeyError:
        raise MeosError(f"unknown spanset type {type_name!r}") from None
    return SpanSet.parse(text, basetype)
