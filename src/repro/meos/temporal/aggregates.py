"""Temporal aggregate functions (``extent``, ``tcount``, merges).

These are the aggregation operators MobilityDB exposes at the SQL level;
the SQL engines in :mod:`repro.quack` / :mod:`repro.pgsim` call into them
for ``GROUP BY`` aggregation over temporal columns.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..boxes import STBox, TBox
from ..errors import MeosError
from ..span import Span
from ..basetypes import TSTZ
from .base import Temporal, TInstant, TSequence, merge
from .interp import Interp
from .ttypes import TINT


def extent_stbox(values: Iterable[Temporal]) -> STBox | None:
    """Spatiotemporal extent of a collection of temporal points."""
    result: STBox | None = None
    for value in values:
        if value is None:
            continue
        box = value.stbox()
        result = box if result is None else result.union(box)
    return result


def extent_tbox(values: Iterable[Temporal]) -> TBox | None:
    """Value/time extent of a collection of temporal numbers."""
    result: TBox | None = None
    for value in values:
        if value is None:
            continue
        box = value.bbox()
        if not isinstance(box, TBox):
            raise MeosError("extent_tbox requires temporal numbers")
        result = box if result is None else result.union(box)
    return result


def extent_tstzspan(values: Iterable[Temporal]) -> Span | None:
    """Bounding time span of a collection of temporal values."""
    result: Span | None = None
    for value in values:
        if value is None:
            continue
        span = value.tstzspan()
        if result is None:
            result = span
        else:
            lower, lower_inc = (
                (result.lower, result.lower_inc)
                if result.lower <= span.lower
                else (span.lower, span.lower_inc)
            )
            upper, upper_inc = (
                (result.upper, result.upper_inc)
                if result.upper >= span.upper
                else (span.upper, span.upper_inc)
            )
            result = Span(lower, upper, lower_inc, upper_inc, TSTZ)
    return result


def tcount(values: Sequence[Temporal]) -> Temporal | None:
    """Temporal count: how many of the inputs are defined at each instant.

    Implemented over the union of all breakpoints with step interpolation.
    """
    items = [v for v in values if v is not None]
    if not items:
        return None
    breakpoints: set[int] = set()
    for value in items:
        for span in value.time():
            breakpoints.add(span.lower)
            breakpoints.add(span.upper)
    times = sorted(breakpoints)
    instants: list[TInstant] = []
    for i, t in enumerate(times):
        count = sum(
            1 for v in items if v.time().contains_value(t)
        )
        instants.append(TInstant(TINT, count, t))
        if i + 1 < len(times):
            mid = (t + times[i + 1]) // 2
            if mid != t:
                count_mid = sum(
                    1 for v in items if v.time().contains_value(mid)
                )
                if count_mid != count:
                    instants.append(TInstant(TINT, count_mid, mid))
    deduped = [instants[0]]
    for inst in instants[1:]:
        if inst.t > deduped[-1].t:
            deduped.append(inst)
    if len(deduped) == 1:
        return deduped[0]
    return TSequence(TINT, deduped, True, True, Interp.STEP)


def merge_all(values: Sequence[Temporal]) -> Temporal | None:
    """Merge many temporal values of one type into a single value."""
    items = [v for v in values if v is not None]
    if not items:
        return None
    return merge(items)
