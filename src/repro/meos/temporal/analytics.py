"""Higher-level temporal analytics: time bucketing and stop detection.

Reproduces two widely used MEOS functions:

* ``timeSplit`` — fragment a temporal value into fixed time buckets
  (MEOS ``temporal_time_split``), the building block for per-hour /
  per-day aggregation of trajectories;
* ``stops`` — detect the periods where a temporal point stays within a
  given distance for at least a given duration (MEOS ``temporal_stops``),
  the classic stop/move segmentation of movement data.
"""

from __future__ import annotations


from ..basetypes import TSTZ
from ..errors import MeosError, MeosTypeError
from ..span import Span
from ..timetypes import Interval
from .base import Temporal, TSequence, _pack_sequences
from .ttypes import SPATIAL_TYPES


def time_split(
    value: Temporal,
    bucket_width: Interval,
    origin: int = 0,
) -> list[tuple[int, Temporal]]:
    """Split a temporal value into fixed-width time buckets.

    Returns ``(bucket_start_usecs, fragment)`` pairs for every bucket the
    value is defined in, in time order.  ``origin`` anchors the bucket
    grid (default: the Unix epoch), like MEOS's ``torigin`` argument.
    """
    width = bucket_width.total_usecs()
    if width <= 0:
        raise MeosError("bucket width must be positive")
    start = value.start_timestamp()
    end = value.end_timestamp()
    first_bucket = origin + ((start - origin) // width) * width
    out: list[tuple[int, Temporal]] = []
    bucket = first_bucket
    while bucket <= end:
        upper = bucket + width
        span = Span(bucket, upper, True, False, TSTZ)
        fragment = value.at_time(span)
        if fragment is not None:
            out.append((bucket, fragment))
        bucket = upper
    return out


def stops(
    value: Temporal,
    max_distance: float,
    min_duration: Interval,
) -> Temporal | None:
    """Stationary periods of a temporal point (MEOS ``stops``).

    A stop is a maximal window during which every position stays within
    ``max_distance`` of the window's first position, lasting at least
    ``min_duration``.  Returns the restriction of the input to its stops
    (a sequence set), or None when the point never stops.
    """
    if value.ttype not in SPATIAL_TYPES:
        raise MeosTypeError(f"{value.ttype.name} is not a temporal point")
    min_usecs = min_duration.total_usecs()
    pieces: list[TSequence] = []
    for seq in value.sequences():
        instants = seq.instants()
        if len(instants) < 2:
            continue
        i = 0
        while i < len(instants) - 1:
            anchor = instants[i].value
            j = i
            while j + 1 < len(instants) and (
                instants[j + 1].value.distance_to(anchor) <= max_distance
            ):
                j += 1
            if j > i and instants[j].t - instants[i].t >= min_usecs:
                pieces.append(
                    TSequence(
                        value.ttype,
                        instants[i : j + 1],
                        True,
                        True,
                        seq.interp,
                        normalize=False,
                    )
                )
                i = j
            else:
                i += 1
    if not pieces:
        return None
    return _pack_sequences(value.ttype, pieces, value.interp)


def num_stops(value: Temporal, max_distance: float,
              min_duration: Interval) -> int:
    """Number of detected stops."""
    found = stops(value, max_distance, min_duration)
    if found is None:
        return 0
    return len(found.sequences())
