"""Temporal values: instants, sequences, and sequence sets.

This module implements the MEOS temporal subtype lattice:

* :class:`TInstant` — a value at one timestamp (``1@2025-01-01``),
* :class:`TSequence` — values over a time span with discrete, step, or
  linear interpolation (``[1@t1, 2@t2)`` / ``{1@t1, 2@t2}``),
* :class:`TSequenceSet` — a set of sequences with temporal gaps
  (``{[…], […]}``) — the paper's motivation for MEOS modelling
  "temporal gaps" such as GPS signal loss.

All classes are generic over a :class:`~.ttypes.TemporalType`; the concrete
types of the paper (tbool, tint, tfloat, ttext, tgeompoint) are obtained by
passing the corresponding descriptor.  Values are immutable.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterable, Sequence as Seq

from ... import geo
from ..basetypes import TSTZ
from ..boxes import STBox, TBox
from ..errors import MeosError, MeosTypeError
from ..setcls import Set
from ..span import Span
from ..spanset import SpanSet
from ..timetypes import (
    Interval,
    add_interval,
    format_timestamptz,
    interval_from_usecs,
)
from .interp import Interp
from .ttypes import SPATIAL_TYPES, TFLOAT, TINT, TemporalType


class Temporal:
    """Abstract base of all temporal values."""

    __slots__ = ("ttype", "_stbox_memo")

    subtype: str = "Temporal"

    def __init__(self, ttype: TemporalType):
        self.ttype = ttype

    # -- structure ------------------------------------------------------------

    def instants(self) -> list["TInstant"]:
        raise NotImplementedError

    def sequences(self) -> list["TSequence"]:
        raise NotImplementedError

    @property
    def interp(self) -> Interp:
        raise NotImplementedError

    def num_instants(self) -> int:
        return len(self.instants())

    def instant_n(self, index: int) -> "TInstant":
        """1-based instant access (MobilityDB ``instantN``)."""
        items = self.instants()
        if not 1 <= index <= len(items):
            raise MeosError(f"instant index {index} out of range")
        return items[index - 1]

    # -- value accessors --------------------------------------------------------

    def values(self) -> list[Any]:
        return [inst.value for inst in self.instants()]

    def start_value(self) -> Any:
        return self.instants()[0].value

    def end_value(self) -> Any:
        return self.instants()[-1].value

    def min_value(self) -> Any:
        if not self.ttype.basetype.is_ordered:
            raise MeosTypeError(f"{self.ttype.name} values are unordered")
        return min(self.values())

    def max_value(self) -> Any:
        if not self.ttype.basetype.is_ordered:
            raise MeosTypeError(f"{self.ttype.name} values are unordered")
        return max(self.values())

    def value_at_timestamp(self, t: int) -> Any | None:
        """Value at ``t`` or None when the temporal is not defined there."""
        raise NotImplementedError

    # -- time accessors -----------------------------------------------------------

    def timestamps(self) -> list[int]:
        return [inst.t for inst in self.instants()]

    def start_timestamp(self) -> int:
        return self.instants()[0].t

    def end_timestamp(self) -> int:
        return self.instants()[-1].t

    def time(self) -> SpanSet:
        """The set of time spans over which the value is defined."""
        raise NotImplementedError

    def tstzspan(self) -> Span:
        """Bounding time span."""
        raise NotImplementedError

    def duration(self, boundspan: bool = False) -> Interval:
        """Duration over which the value is defined; with ``boundspan``,
        the duration of the bounding span (paper §3.5)."""
        if boundspan:
            span = self.tstzspan()
            return interval_from_usecs(span.upper - span.lower)
        total = 0
        for seq in self.sequences():
            if seq.interp is not Interp.DISCRETE:
                total += seq.end_timestamp() - seq.start_timestamp()
        return interval_from_usecs(total)

    # -- bounding boxes --------------------------------------------------------------

    def bbox(self) -> Any:
        """TBox for temporal numbers, STBox for temporal points, tstzspan
        otherwise."""
        if self.ttype in SPATIAL_TYPES:
            return self.stbox()
        if self.ttype in (TINT, TFLOAT):
            values = self.values()
            vspan = Span.make(
                min(values), max(values), self.ttype.basetype, True, True
            )
            return TBox(vspan, self.tstzspan())
        return self.tstzspan()

    def stbox(self) -> STBox:
        # Memoized: temporal values are immutable once constructed, and
        # box-operator kernels call stbox() once per predicate operand.
        try:
            return self._stbox_memo
        except AttributeError:
            pass
        if self.ttype not in SPATIAL_TYPES:
            raise MeosTypeError(f"{self.ttype.name} has no stbox")
        xs: list[float] = []
        ys: list[float] = []
        for inst in self.instants():
            for x, y in inst.value.coordinates():
                xs.append(x)
                ys.append(y)
        box = STBox(
            min(xs), min(ys), max(xs), max(ys), self.tstzspan(), self.srid()
        )
        self._stbox_memo = box
        return box

    def srid(self) -> int:
        if self.ttype not in SPATIAL_TYPES:
            raise MeosTypeError(f"{self.ttype.name} has no SRID")
        return self.instants()[0].value.srid

    # -- ever / always -------------------------------------------------------------

    def ever(self, pred: Callable[[Any], bool]) -> bool:
        raise NotImplementedError

    def always(self, pred: Callable[[Any], bool]) -> bool:
        raise NotImplementedError

    def ever_eq(self, value: Any) -> bool:
        value = self.ttype.basetype.coerce(value)
        restricted = self.at_value(value)
        return restricted is not None

    def always_eq(self, value: Any) -> bool:
        value = self.ttype.basetype.coerce(value)
        return all(self.ttype.value_eq(v, value) for v in self.values())

    # -- restriction (implemented by subclasses) --------------------------------------

    def at_time(self, when: "int | Span | SpanSet | Set") -> "Temporal | None":
        raise NotImplementedError

    def minus_time(self, when: "int | Span | SpanSet | Set") -> "Temporal | None":
        spans = _complement(self._when_to_spanset(when), self.tstzspan())
        if spans is None:
            return None
        return self.at_time(spans)

    def at_value(self, value: Any) -> "Temporal | None":
        raise NotImplementedError

    def at_values(self, values: Set) -> "Temporal | None":
        pieces = [
            piece
            for v in values
            if (piece := self.at_value(v)) is not None
        ]
        if not pieces:
            return None
        return merge(pieces)

    def at_min(self) -> "Temporal | None":
        """Restrict to the instants with the minimum value (MEOS atMin)."""
        return self.at_value(self.min_value())

    def at_max(self) -> "Temporal | None":
        """Restrict to the instants with the maximum value (MEOS atMax)."""
        return self.at_value(self.max_value())

    def minus_value(self, value: Any) -> "Temporal | None":
        hit = self.at_value(value)
        if hit is None:
            return self
        return self.minus_time(hit.time())

    def _when_to_spanset(self, when: "int | Span | SpanSet | Set") -> SpanSet:
        if isinstance(when, SpanSet):
            return when
        if isinstance(when, Span):
            return SpanSet.from_spans([when])
        if isinstance(when, Set):
            return SpanSet.from_spans(
                Span.make(t, t, TSTZ, True, True) for t in when
            )
        return SpanSet.from_spans([Span.make(when, when, TSTZ, True, True)])

    # -- transformations -----------------------------------------------------------------

    def shift_time(self, interval: Interval) -> "Temporal":
        delta = interval
        return self._map_time(lambda t: add_interval(t, delta))

    def scale_time(self, width: Interval) -> "Temporal":
        lo = self.start_timestamp()
        hi = self.end_timestamp()
        extent = hi - lo
        target = width.total_usecs()
        if target <= 0:
            raise MeosError("scale width must be positive")
        if extent == 0:
            return self
        return self._map_time(
            lambda t: lo + int(round((t - lo) * target / extent))
        )

    def shift_scale_time(self, shift: Interval, width: Interval) -> "Temporal":
        return self.shift_time(shift).scale_time(width)

    def _map_time(self, func: Callable[[int], int]) -> "Temporal":
        raise NotImplementedError

    def map_values(
        self, func: Callable[[Any], Any], ttype: TemporalType | None = None
    ) -> "Temporal":
        """Apply ``func`` to every instant value (lifted unary function)."""
        raise NotImplementedError

    # -- output ---------------------------------------------------------------------------

    def _format_body(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        prefix = ""
        if self.ttype in SPATIAL_TYPES:
            srid = self.srid()
            if srid:
                prefix += f"SRID={srid};"
        if (
            self.ttype.continuous
            and self.interp is Interp.STEP
        ):
            prefix += "Interp=Step;"
        return prefix + self._format_body()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.ttype.name} {self}>"

    def as_text(self) -> str:
        """MobilityDB ``asText`` (no SRID prefix)."""
        body = self._format_body()
        if self.ttype.continuous and self.interp is Interp.STEP:
            return "Interp=Step;" + body
        return body

    def as_ewkt(self) -> str:
        """MobilityDB ``asEWKT`` (with SRID prefix for spatial types)."""
        return str(self)

    # -- equality ---------------------------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Temporal):
            return NotImplemented
        return (
            self.ttype.name == other.ttype.name
            and self.subtype == other.subtype
            and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash((self.ttype.name, self.subtype, self._key()))

    def _key(self):
        raise NotImplementedError


class TInstant(Temporal):
    """A single value at a single timestamp."""

    __slots__ = ("value", "t")
    subtype = "Instant"

    def __init__(self, ttype: TemporalType, value: Any, t: int):
        super().__init__(ttype)
        self.value = ttype.basetype.coerce(value)
        self.t = int(t)

    @property
    def interp(self) -> Interp:
        return Interp.DISCRETE

    def instants(self) -> list["TInstant"]:
        return [self]

    def sequences(self) -> list["TSequence"]:
        return [
            TSequence(self.ttype, [self], True, True,
                      Interp.LINEAR if self.ttype.continuous else Interp.STEP)
        ]

    def value_at_timestamp(self, t: int) -> Any | None:
        return self.value if t == self.t else None

    def time(self) -> SpanSet:
        return SpanSet.from_spans([Span.make(self.t, self.t, TSTZ, True, True)])

    def tstzspan(self) -> Span:
        return Span.make(self.t, self.t, TSTZ, True, True)

    def ever(self, pred: Callable[[Any], bool]) -> bool:
        return pred(self.value)

    def always(self, pred: Callable[[Any], bool]) -> bool:
        return pred(self.value)

    def at_time(self, when) -> "TInstant | None":
        spanset = self._when_to_spanset(when)
        if spanset.contains_value(self.t):
            return self
        return None

    def at_value(self, value: Any) -> "TInstant | None":
        value = self.ttype.basetype.coerce(value)
        if self.ttype.value_eq(self.value, value):
            return self
        return None

    def _map_time(self, func: Callable[[int], int]) -> "TInstant":
        return TInstant(self.ttype, self.value, func(self.t))

    def map_values(self, func, ttype=None) -> "TInstant":
        return TInstant(ttype or self.ttype, func(self.value), self.t)

    def _format_body(self) -> str:
        return f"{self.ttype.format_value(self.value)}@{format_timestamptz(self.t)}"

    def _key(self):
        return (_value_key(self.ttype, self.value), self.t)


def _value_key(ttype: TemporalType, value: Any):
    key = ttype.basetype.sort_key
    return key(value) if key else value


class TSequence(Temporal):
    """Values over a time span (or a discrete list of instants).

    Continuous sequences (step/linear) carry lower/upper bound inclusivity;
    discrete sequences are always ``[..]`` over their instants.  The
    constructor normalizes continuous sequences by dropping redundant
    instants (equal values under step, collinear points under linear),
    matching MEOS so that structural equality is canonical.
    """

    __slots__ = ("_instants", "lower_inc", "upper_inc", "_interp")
    subtype = "Sequence"

    def __init__(
        self,
        ttype: TemporalType,
        instants: Iterable[TInstant],
        lower_inc: bool = True,
        upper_inc: bool = True,
        interp: Interp | None = None,
        normalize: bool = True,
    ):
        super().__init__(ttype)
        items = list(instants)
        if not items:
            raise MeosError("a sequence needs at least one instant")
        for inst in items:
            if inst.ttype.name != ttype.name:
                raise MeosTypeError("mixed temporal types in sequence")
        for a, b in zip(items, items[1:]):
            if a.t >= b.t:
                raise MeosError("sequence instants must be strictly increasing")
        if interp is None:
            interp = Interp.LINEAR if ttype.continuous else Interp.STEP
        if interp is Interp.LINEAR and not ttype.continuous:
            raise MeosTypeError(
                f"{ttype.name} does not support linear interpolation"
            )
        if interp is Interp.DISCRETE:
            lower_inc = upper_inc = True
        if len(items) == 1:
            lower_inc = upper_inc = True
        if interp is not Interp.DISCRETE and len(items) > 1 and normalize:
            items = _normalize(ttype, items, interp, upper_inc)
        self._instants = tuple(items)
        self.lower_inc = bool(lower_inc)
        self.upper_inc = bool(upper_inc)
        self._interp = interp

    @property
    def interp(self) -> Interp:
        return self._interp

    def instants(self) -> list[TInstant]:
        return list(self._instants)

    def sequences(self) -> list["TSequence"]:
        if self._interp is Interp.DISCRETE:
            return [
                TSequence(self.ttype, [inst], True, True,
                          Interp.STEP if not self.ttype.continuous
                          else Interp.LINEAR)
                for inst in self._instants
            ]
        return [self]

    # -- evaluation ----------------------------------------------------------------

    def _segment_value(self, i: int, t: int) -> Any:
        """Value at time ``t`` within segment ``i`` (between instants i, i+1)."""
        a = self._instants[i]
        b = self._instants[i + 1]
        if t == a.t:
            return a.value
        if t == b.t:
            return b.value
        if self._interp is Interp.LINEAR:
            frac = (t - a.t) / (b.t - a.t)
            return self.ttype.interpolate(a.value, b.value, frac)
        return a.value

    def value_at_timestamp(self, t: int) -> Any | None:
        times = [inst.t for inst in self._instants]
        if self._interp is Interp.DISCRETE:
            idx = bisect.bisect_left(times, t)
            if idx < len(times) and times[idx] == t:
                return self._instants[idx].value
            return None
        if t < times[0] or t > times[-1]:
            return None
        if t == times[0]:
            return self._instants[0].value if self.lower_inc else None
        if t == times[-1]:
            return self._instants[-1].value if self.upper_inc else None
        idx = bisect.bisect_right(times, t) - 1
        return self._segment_value(idx, t)

    def time(self) -> SpanSet:
        if self._interp is Interp.DISCRETE:
            return SpanSet.from_spans(
                Span.make(inst.t, inst.t, TSTZ, True, True)
                for inst in self._instants
            )
        return SpanSet.from_spans([self.tstzspan()])

    def tstzspan(self) -> Span:
        first = self._instants[0].t
        last = self._instants[-1].t
        if self._interp is Interp.DISCRETE:
            return Span.make(first, last, TSTZ, True, True)
        return Span(first, last, self.lower_inc, self.upper_inc, TSTZ)

    def ever(self, pred: Callable[[Any], bool]) -> bool:
        return any(pred(inst.value) for inst in self._instants)

    def always(self, pred: Callable[[Any], bool]) -> bool:
        return all(pred(inst.value) for inst in self._instants)

    # -- restriction ----------------------------------------------------------------

    def at_time(self, when) -> "Temporal | None":
        if isinstance(when, Set) and self._interp is not Interp.DISCRETE:
            return self._at_timestamp_set(when)
        spanset = self._when_to_spanset(when)
        if self._interp is Interp.DISCRETE:
            kept = [
                inst for inst in self._instants
                if spanset.contains_value(inst.t)
            ]
            if not kept:
                return None
            if len(kept) == 1:
                return kept[0]
            return TSequence(self.ttype, kept, True, True, Interp.DISCRETE)
        pieces: list[TSequence] = []
        own = self.tstzspan()
        for span in spanset:
            hit = own.intersection(span)
            if hit is None:
                continue
            piece = self._slice(hit)
            if piece is not None:
                pieces.append(piece)
        return _pack_sequences(self.ttype, pieces, self._interp)

    def _at_timestamp_set(self, when: Set) -> "Temporal | None":
        """Restriction to a tstzset yields a discrete result (MobilityDB)."""
        instants = [
            TInstant(self.ttype, value, t)
            for t in when
            if (value := self.value_at_timestamp(t)) is not None
        ]
        if not instants:
            return None
        if len(instants) == 1:
            return instants[0]
        return TSequence(self.ttype, instants, True, True, Interp.DISCRETE)

    def _slice(self, span: Span) -> "TSequence | None":
        """Restrict a continuous sequence to ``span`` (must be within)."""
        lo, hi = span.lower, span.upper
        new_instants: list[TInstant] = []
        v_lo = self.value_at_timestamp(lo)
        if v_lo is None and lo == self.start_timestamp():
            v_lo = self._instants[0].value
        if v_lo is None and lo == self.end_timestamp():
            v_lo = self._instants[-1].value
        if v_lo is not None:
            new_instants.append(TInstant(self.ttype, v_lo, lo))
        for inst in self._instants:
            if lo < inst.t < hi:
                new_instants.append(inst)
        if hi > lo:
            v_hi = self.value_at_timestamp(hi)
            if v_hi is None and hi == self.end_timestamp():
                v_hi = self._instants[-1].value
            if v_hi is not None:
                new_instants.append(TInstant(self.ttype, v_hi, hi))
        if not new_instants:
            return None
        return TSequence(
            self.ttype,
            new_instants,
            span.lower_inc,
            span.upper_inc if len(new_instants) > 1 else True,
            self._interp,
        )

    def at_value(self, value: Any) -> "Temporal | None":
        value = self.ttype.basetype.coerce(value)
        eq = self.ttype.value_eq
        if self._interp is Interp.DISCRETE:
            kept = [i for i in self._instants if eq(i.value, value)]
            if not kept:
                return None
            if len(kept) == 1:
                return kept[0]
            return TSequence(self.ttype, kept, True, True, Interp.DISCRETE)
        pieces: list[TSequence] = []
        instants = self._instants
        if len(instants) == 1:
            if eq(instants[0].value, value):
                return instants[0]
            return None
        for i in range(len(instants) - 1):
            a, b = instants[i], instants[i + 1]
            seg_lower_inc = self.lower_inc if i == 0 else True
            seg_upper_inc = self.upper_inc if i == len(instants) - 2 else False
            if self._interp is Interp.STEP:
                if eq(a.value, value):
                    pieces.append(
                        TSequence(self.ttype, [a, TInstant(self.ttype, a.value, b.t)],
                                  seg_lower_inc, False, Interp.STEP)
                    )
                if i == len(instants) - 2 and seg_upper_inc and eq(b.value, value):
                    pieces.append(
                        TSequence(self.ttype, [b], True, True, Interp.STEP)
                    )
                continue
            # linear
            if eq(a.value, b.value):
                if eq(a.value, value):
                    pieces.append(
                        TSequence(self.ttype, [a, b], seg_lower_inc,
                                  seg_upper_inc, Interp.LINEAR)
                    )
                continue
            frac = self.ttype.locate(a.value, b.value, value)
            if frac is None:
                continue
            t_hit = a.t + round(frac * (b.t - a.t))
            if t_hit == a.t and not seg_lower_inc:
                continue
            if t_hit == b.t and not seg_upper_inc and i == len(instants) - 2:
                continue
            if t_hit == b.t and i != len(instants) - 2:
                continue  # the next segment's lower end will produce it
            pieces.append(
                TSequence(self.ttype, [TInstant(self.ttype, value, t_hit)],
                          True, True, Interp.LINEAR)
            )
        return _pack_sequences(self.ttype, pieces, self._interp)

    # -- transformations ---------------------------------------------------------------

    def _map_time(self, func: Callable[[int], int]) -> "TSequence":
        return TSequence(
            self.ttype,
            [TInstant(self.ttype, i.value, func(i.t)) for i in self._instants],
            self.lower_inc,
            self.upper_inc,
            self._interp,
            normalize=False,
        )

    def map_values(self, func, ttype=None) -> "TSequence":
        target = ttype or self.ttype
        interp = self._interp
        if interp is Interp.LINEAR and not target.continuous:
            interp = Interp.STEP
        return TSequence(
            self.ttype if ttype is None else target,
            [TInstant(target, func(i.value), i.t) for i in self._instants],
            self.lower_inc,
            self.upper_inc,
            interp,
        )

    def set_interp(self, interp: Interp) -> "TSequence":
        return TSequence(
            self.ttype, self._instants, self.lower_inc, self.upper_inc, interp
        )

    # -- output ---------------------------------------------------------------------------

    def _format_body(self) -> str:
        inner = ", ".join(inst._format_body() for inst in self._instants)
        if self._interp is Interp.DISCRETE:
            return "{" + inner + "}"
        left = "[" if self.lower_inc else "("
        right = "]" if self.upper_inc else ")"
        return f"{left}{inner}{right}"

    def _key(self):
        return (
            tuple(i._key() for i in self._instants),
            self.lower_inc,
            self.upper_inc,
            self._interp,
        )


class TSequenceSet(Temporal):
    """A set of non-overlapping continuous sequences (temporal gaps allowed)."""

    __slots__ = ("_sequences",)
    subtype = "SequenceSet"

    def __init__(
        self, ttype: TemporalType, sequences: Iterable[TSequence]
    ):
        super().__init__(ttype)
        items = sorted(sequences, key=lambda s: s.start_timestamp())
        if not items:
            raise MeosError("a sequence set needs at least one sequence")
        interp = items[0].interp
        for seq in items:
            if seq.ttype.name != ttype.name:
                raise MeosTypeError("mixed temporal types in sequence set")
            if seq.interp is Interp.DISCRETE:
                raise MeosError("sequence sets cannot contain discrete sequences")
            if seq.interp is not interp:
                raise MeosError("mixed interpolation in sequence set")
        for a, b in zip(items, items[1:]):
            if a.end_timestamp() > b.start_timestamp() or (
                a.end_timestamp() == b.start_timestamp()
                and a.upper_inc
                and b.lower_inc
            ):
                raise MeosError("overlapping sequences in sequence set")
        self._sequences = tuple(items)

    @property
    def interp(self) -> Interp:
        return self._sequences[0].interp

    def instants(self) -> list[TInstant]:
        out: list[TInstant] = []
        for seq in self._sequences:
            out.extend(seq.instants())
        return out

    def sequences(self) -> list[TSequence]:
        return list(self._sequences)

    def num_sequences(self) -> int:
        return len(self._sequences)

    def sequence_n(self, index: int) -> TSequence:
        if not 1 <= index <= len(self._sequences):
            raise MeosError(f"sequence index {index} out of range")
        return self._sequences[index - 1]

    def value_at_timestamp(self, t: int) -> Any | None:
        for seq in self._sequences:
            value = seq.value_at_timestamp(t)
            if value is not None:
                return value
        return None

    def time(self) -> SpanSet:
        return SpanSet.from_spans(s.tstzspan() for s in self._sequences)

    def tstzspan(self) -> Span:
        first = self._sequences[0].tstzspan()
        last = self._sequences[-1].tstzspan()
        return Span(
            first.lower, last.upper, first.lower_inc, last.upper_inc, TSTZ
        )

    def ever(self, pred: Callable[[Any], bool]) -> bool:
        return any(seq.ever(pred) for seq in self._sequences)

    def always(self, pred: Callable[[Any], bool]) -> bool:
        return all(seq.always(pred) for seq in self._sequences)

    def at_time(self, when) -> "Temporal | None":
        if isinstance(when, Set):
            instants: list[TInstant] = []
            for seq in self._sequences:
                hit = seq.at_time(when)
                if hit is not None:
                    instants.extend(hit.instants())
            if not instants:
                return None
            if len(instants) == 1:
                return instants[0]
            return TSequence(self.ttype, instants, True, True,
                             Interp.DISCRETE)
        pieces: list[TSequence] = []
        for seq in self._sequences:
            hit = seq.at_time(when)
            if hit is None:
                continue
            pieces.extend(hit.sequences())
        return self._repack(pieces)

    def at_value(self, value: Any) -> "Temporal | None":
        pieces: list[TSequence] = []
        for seq in self._sequences:
            hit = seq.at_value(value)
            if hit is None:
                continue
            pieces.extend(hit.sequences())
        return self._repack(pieces)

    def _repack(self, pieces: list[TSequence]) -> "Temporal | None":
        """Pack restriction results, keeping the SequenceSet subtype
        (MobilityDB restriction of a sequence set yields a sequence set)."""
        result = _pack_sequences(self.ttype, pieces, self.interp)
        if isinstance(result, TInstant):
            result = result.sequences()[0]
        if isinstance(result, TSequence):
            return TSequenceSet(self.ttype, [result])
        return result

    def _map_time(self, func: Callable[[int], int]) -> "TSequenceSet":
        return TSequenceSet(
            self.ttype, [seq._map_time(func) for seq in self._sequences]
        )

    def map_values(self, func, ttype=None) -> "TSequenceSet":
        return TSequenceSet(
            ttype or self.ttype,
            [seq.map_values(func, ttype) for seq in self._sequences],
        )

    def _format_body(self) -> str:
        return "{" + ", ".join(s._format_body() for s in self._sequences) + "}"

    def _key(self):
        return tuple(s._key() for s in self._sequences)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _normalize(
    ttype: TemporalType,
    instants: list[TInstant],
    interp: Interp,
    upper_inc: bool,
) -> list[TInstant]:
    """Drop redundant middle instants (MEOS sequence normalization)."""
    if len(instants) <= 2:
        return instants
    eq = ttype.value_eq
    kept = [instants[0]]
    for i in range(1, len(instants) - 1):
        prev = kept[-1]
        cur = instants[i]
        nxt = instants[i + 1]
        if interp is Interp.STEP:
            if eq(prev.value, cur.value):
                continue
        else:
            if eq(prev.value, cur.value) and eq(cur.value, nxt.value):
                continue
            frac = (cur.t - prev.t) / (nxt.t - prev.t)
            try:
                expected = ttype.interpolate(prev.value, nxt.value, frac)
            except MeosError:
                expected = None
            if expected is not None and _close(ttype, expected, cur.value):
                continue
        kept.append(cur)
    kept.append(instants[-1])
    return kept


def _close(ttype: TemporalType, a: Any, b: Any) -> bool:
    if isinstance(a, geo.Point) and isinstance(b, geo.Point):
        return abs(a.x - b.x) <= 1e-9 and abs(a.y - b.y) <= 1e-9
    if isinstance(a, float) or isinstance(b, float):
        return abs(a - b) <= 1e-12 * max(1.0, abs(a), abs(b))
    return a == b


def _pack_sequences(
    ttype: TemporalType, pieces: list[TSequence], interp: Interp
) -> "Temporal | None":
    """Collapse restriction results into the tightest subtype.

    Adjacent pieces whose boundary instant carries the same value are glued
    into one sequence; the result is a TInstant, TSequence, or TSequenceSet
    depending on what remains.
    """
    pieces = [p for p in pieces if p is not None]
    if not pieces:
        return None
    seq_interp = interp
    if seq_interp is Interp.DISCRETE:
        seq_interp = Interp.LINEAR if ttype.continuous else Interp.STEP
    pieces.sort(key=lambda s: (s.start_timestamp(), not s.lower_inc))
    merged: list[TSequence] = [pieces[0]]
    for piece in pieces[1:]:
        last = merged[-1]
        touching = last.end_timestamp() == piece.start_timestamp()
        if touching and (last.upper_inc or piece.lower_inc) and _close(
            ttype, last.end_value(), piece.start_value()
        ):
            head = last.instants()
            tail = piece.instants()
            if tail and tail[0].t == head[-1].t:
                tail = tail[1:]
            if not tail:
                merged[-1] = TSequence(
                    ttype, head, last.lower_inc,
                    last.upper_inc or piece.upper_inc, seq_interp,
                )
            else:
                merged[-1] = TSequence(
                    ttype, head + tail, last.lower_inc, piece.upper_inc,
                    seq_interp,
                )
            continue
        if touching and last.upper_inc and piece.lower_inc:
            # Conflicting values at the shared bound: keep the right piece
            # open so the sequence-set invariant holds.
            if piece.num_instants() == 1:
                continue
            piece = TSequence(
                ttype, piece.instants(), False, piece.upper_inc, seq_interp,
            )
        merged.append(piece)
    if len(merged) == 1:
        only = merged[0]
        if only.num_instants() == 1:
            return only.instants()[0]
        return only
    return TSequenceSet(ttype, merged)


def _complement(spanset: SpanSet, universe: Span) -> SpanSet | None:
    """Spans of ``universe`` not covered by ``spanset``."""
    whole = SpanSet.from_spans([universe])
    return whole.minus(spanset)


def merge(pieces: Seq[Temporal]) -> Temporal:
    """Merge temporal values of the same type into one (MEOS ``merge``)."""
    items = [p for p in pieces if p is not None]
    if not items:
        raise MeosError("nothing to merge")
    ttype = items[0].ttype
    all_instant = all(isinstance(p, TInstant) for p in items)
    discrete = all(
        isinstance(p, TInstant)
        or (isinstance(p, TSequence) and p.interp is Interp.DISCRETE)
        for p in items
    )
    if discrete:
        by_time: dict[int, TInstant] = {}
        for p in items:
            for inst in p.instants():
                existing = by_time.get(inst.t)
                if existing is not None and not ttype.value_eq(
                    existing.value, inst.value
                ):
                    raise MeosError("conflicting values at the same instant")
                by_time[inst.t] = inst
        instants = [by_time[t] for t in sorted(by_time)]
        if len(instants) == 1:
            return instants[0]
        return TSequence(ttype, instants, True, True, Interp.DISCRETE)
    sequences: list[TSequence] = []
    for p in items:
        sequences.extend(p.sequences())
    interp = sequences[0].interp
    return _pack_sequences(ttype, sequences, interp) or sequences[0]
