"""Constructors building temporal values from base values and time frames.

These mirror the MEOS ``*_from_base_*`` constructors and the SQL-level
constructors of the paper, e.g.::

    tgeometry('Point(1 1)', tstzspan '[2025-01-01, 2025-01-02]', 'step')
"""

from __future__ import annotations

from typing import Any, Iterable

from ..errors import MeosError
from ..setcls import Set
from ..span import Span
from ..spanset import SpanSet
from .base import Temporal, TInstant, TSequence, TSequenceSet
from .interp import Interp
from .ttypes import TemporalType


def from_base_timestamp(
    ttype: TemporalType, value: Any, t: int
) -> TInstant:
    return TInstant(ttype, value, t)


def from_base_tstzspan(
    ttype: TemporalType,
    value: Any,
    span: Span,
    interp: Interp | str | None = None,
) -> TSequence:
    """A constant temporal value over a time span."""
    if isinstance(interp, str):
        interp = Interp.parse(interp)
    if interp is None:
        interp = Interp.LINEAR if ttype.continuous else Interp.STEP
    value = ttype.basetype.coerce(value)
    if span.lower == span.upper:
        return TSequence(
            ttype, [TInstant(ttype, value, span.lower)], True, True, interp
        )
    return TSequence(
        ttype,
        [TInstant(ttype, value, span.lower), TInstant(ttype, value, span.upper)],
        span.lower_inc,
        span.upper_inc,
        interp,
    )


def from_base_tstzset(ttype: TemporalType, value: Any, times: Set) -> Temporal:
    """A constant temporal value at a discrete set of instants."""
    value = ttype.basetype.coerce(value)
    instants = [TInstant(ttype, value, t) for t in times]
    if len(instants) == 1:
        return instants[0]
    return TSequence(ttype, instants, True, True, Interp.DISCRETE)


def from_base_tstzspanset(
    ttype: TemporalType,
    value: Any,
    spanset: SpanSet,
    interp: Interp | str | None = None,
) -> Temporal:
    """A constant temporal value over a set of time spans."""
    sequences = [
        from_base_tstzspan(ttype, value, span, interp) for span in spanset
    ]
    if len(sequences) == 1:
        return sequences[0]
    return TSequenceSet(ttype, sequences)


def from_base_time(
    ttype: TemporalType,
    value: Any,
    time: "int | Span | SpanSet | Set",
    interp: Interp | str | None = None,
) -> Temporal:
    """Dispatching constructor over any time frame."""
    if isinstance(time, Span):
        return from_base_tstzspan(ttype, value, time, interp)
    if isinstance(time, SpanSet):
        return from_base_tstzspanset(ttype, value, time, interp)
    if isinstance(time, Set):
        return from_base_tstzset(ttype, value, time)
    return from_base_timestamp(ttype, value, time)


def sequence_from_instants(
    instants: Iterable[TInstant],
    lower_inc: bool = True,
    upper_inc: bool = True,
    interp: Interp | str | None = None,
) -> Temporal:
    """Assemble instants into a sequence (the §6.2 tgeompointSeq step)."""
    items = sorted(instants, key=lambda i: i.t)
    if not items:
        raise MeosError("no instants to assemble")
    deduped: list[TInstant] = [items[0]]
    for inst in items[1:]:
        if inst.t == deduped[-1].t:
            continue
        deduped.append(inst)
    ttype = deduped[0].ttype
    if isinstance(interp, str):
        interp = Interp.parse(interp)
    if interp is None:
        interp = Interp.LINEAR if ttype.continuous else Interp.STEP
    if len(deduped) == 1:
        return deduped[0]
    return TSequence(ttype, deduped, lower_inc, upper_inc, interp)
