"""Interpolation modes for temporal values (MEOS ``interpType``)."""

from __future__ import annotations

import enum


class Interp(enum.Enum):
    """How a temporal value evolves between observations.

    DISCRETE — isolated instants, undefined in between (``{v@t, …}``).
    STEP     — value holds until the next instant (``Interp=Step;[…]``).
    LINEAR   — value interpolates linearly between instants (``[…]``).
    """

    DISCRETE = "discrete"
    STEP = "step"
    LINEAR = "linear"

    @classmethod
    def parse(cls, text: str) -> "Interp":
        lowered = text.strip().lower()
        for member in cls:
            if member.value == lowered:
                return member
        raise ValueError(f"unknown interpolation {text!r}")
