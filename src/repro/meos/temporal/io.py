"""Parsing of temporal literals (the MobilityDB textual format).

Grammar sketch::

    temporal   := prefix* (instant | discrete | sequence | seqset)
    prefix     := 'SRID=nnnn;' | 'Interp=Step;'
    instant    := value '@' timestamptz
    discrete   := '{' instant (',' instant)* '}'
    sequence   := ('[' | '(') instant (',' instant)* (']' | ')')
    seqset     := '{' sequence (',' sequence)* '}'

Values may themselves contain commas, parentheses, or ``@`` inside quotes
(ttext) — the splitter is quote- and paren-aware.
"""

from __future__ import annotations

from ..errors import MeosError
from ..timetypes import parse_timestamptz
from .base import Temporal, TInstant, TSequence, TSequenceSet
from .interp import Interp
from .ttypes import SPATIAL_TYPES, TemporalType


def parse_temporal(text: str, ttype: TemporalType) -> Temporal:
    """Parse a temporal literal of the given temporal type."""
    body = text.strip()
    srid = 0
    interp_override: Interp | None = None
    while True:
        upper = body.upper()
        if upper.startswith("SRID="):
            head, _, rest = body.partition(";")
            try:
                srid = int(head[5:])
            except ValueError:
                raise MeosError(f"bad SRID prefix in {text!r}") from None
            body = rest.strip()
        elif upper.startswith("INTERP="):
            head, _, rest = body.partition(";")
            interp_override = Interp.parse(head[7:])
            body = rest.strip()
        else:
            break
    if not body:
        raise MeosError(f"empty temporal literal: {text!r}")

    def make_instant(item: str) -> TInstant:
        value_text, ts_text = _split_at(item)
        value = ttype.parse_value(value_text)
        if srid and ttype in SPATIAL_TYPES and getattr(value, "srid", 0) == 0:
            value = value.with_srid(srid)
        return TInstant(ttype, value, parse_timestamptz(ts_text))

    if body.startswith("{"):
        if not body.endswith("}"):
            raise MeosError(f"unbalanced braces in {text!r}")
        items = _split_items(body[1:-1])
        if not items:
            raise MeosError(f"empty temporal literal: {text!r}")
        if items[0].lstrip()[:1] in ("[", "("):
            sequences = [
                _parse_sequence(item, ttype, make_instant, interp_override)
                for item in items
            ]
            return TSequenceSet(ttype, sequences)
        instants = [make_instant(item) for item in items]
        if len(instants) == 1:
            return instants[0]
        return TSequence(ttype, instants, True, True, Interp.DISCRETE)
    if body.startswith("[") or body.startswith("("):
        return _parse_sequence(body, ttype, make_instant, interp_override)
    return make_instant(body)


def _parse_sequence(item, ttype, make_instant, interp_override) -> TSequence:
    item = item.strip()
    if item[0] not in "[(" or item[-1] not in "])":
        raise MeosError(f"invalid sequence literal: {item!r}")
    lower_inc = item[0] == "["
    upper_inc = item[-1] == "]"
    instants = [make_instant(part) for part in _split_items(item[1:-1])]
    if not instants:
        raise MeosError(f"empty sequence literal: {item!r}")
    if interp_override is not None:
        interp = interp_override
    else:
        interp = Interp.LINEAR if ttype.continuous else Interp.STEP
    return TSequence(ttype, instants, lower_inc, upper_inc, interp)


def _split_items(text: str) -> list[str]:
    """Split at top-level commas, respecting quotes and parentheses."""
    items: list[str] = []
    depth = 0
    in_quote = False
    start = 0
    for i, ch in enumerate(text):
        if ch == '"':
            in_quote = not in_quote
        elif in_quote:
            continue
        elif ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            items.append(text[start:i])
            start = i + 1
    tail = text[start:]
    if tail.strip():
        items.append(tail)
    return [item.strip() for item in items if item.strip()]


def _split_at(item: str) -> tuple[str, str]:
    """Split ``value@timestamp`` at the last unquoted '@'."""
    in_quote = False
    at_pos = -1
    for i, ch in enumerate(item):
        if ch == '"':
            in_quote = not in_quote
        elif ch == "@" and not in_quote:
            at_pos = i
    if at_pos < 0:
        raise MeosError(f"missing '@' in temporal instant: {item!r}")
    return item[:at_pos].strip(), item[at_pos + 1 :].strip()
