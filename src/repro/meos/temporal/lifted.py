"""Lifted (temporally generalized) operators.

The machinery here synchronizes two temporal values onto a common sequence
of time segments and evaluates predicates segment by segment — the MEOS
technique behind operators such as ``tDwithin`` (paper §6.3, Query 10) and
``whenTrue``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..basetypes import TSTZ
from ..errors import MeosTypeError
from ..span import Span
from ..spanset import SpanSet
from .base import Temporal, TInstant, TSequence, _pack_sequences
from .interp import Interp
from .ttypes import TBOOL


@dataclass(frozen=True)
class SyncSegment:
    """One aligned time segment of two synchronized temporal values.

    Values ``a0/a1`` (and ``b0/b1``) are the left operand's values at the
    segment start and end; for step interpolation ``a1 == a0``.
    """

    t0: int
    t1: int
    lower_inc: bool
    upper_inc: bool
    a0: Any
    a1: Any
    b0: Any
    b1: Any


def _interp_value(seq: TSequence, t: int) -> Any:
    """Value of a continuous sequence at ``t`` ignoring bound inclusivity."""
    instants = seq.instants()
    if t <= instants[0].t:
        return instants[0].value
    if t >= instants[-1].t:
        return instants[-1].value
    for i in range(len(instants) - 1):
        if instants[i].t <= t <= instants[i + 1].t:
            return seq._segment_value(i, t)
    return instants[-1].value


def _segment_endpoint_values(
    seq: TSequence, t0: int, t1: int
) -> tuple[Any, Any]:
    v0 = _interp_value(seq, t0)
    if seq.interp is Interp.STEP:
        return v0, v0
    return v0, _interp_value(seq, t1)


def synchronize(a: Temporal, b: Temporal) -> Iterator[SyncSegment]:
    """Yield aligned segments over the common definition time of a and b.

    Discrete operands restrict the result to shared instants (zero-width
    segments).  Continuous operands are split at the union of their
    breakpoints.
    """
    a_discrete = a.interp is Interp.DISCRETE
    b_discrete = b.interp is Interp.DISCRETE
    if a_discrete or b_discrete:
        times_a = {inst.t: inst.value for inst in a.instants()}
        times_b = {inst.t: inst.value for inst in b.instants()}
        if a_discrete and b_discrete:
            shared = sorted(set(times_a) & set(times_b))
            for t in shared:
                yield SyncSegment(t, t, True, True,
                                  times_a[t], times_a[t],
                                  times_b[t], times_b[t])
            return
        discrete, continuous, flip = (
            (a, b, False) if a_discrete else (b, a, True)
        )
        for inst in discrete.instants():
            other_value = continuous.value_at_timestamp(inst.t)
            if other_value is None:
                continue
            if flip:
                yield SyncSegment(inst.t, inst.t, True, True,
                                  other_value, other_value,
                                  inst.value, inst.value)
            else:
                yield SyncSegment(inst.t, inst.t, True, True,
                                  inst.value, inst.value,
                                  other_value, other_value)
        return
    for seq_a in a.sequences():
        span_a = seq_a.tstzspan()
        for seq_b in b.sequences():
            span_b = seq_b.tstzspan()
            common = span_a.intersection(span_b)
            if common is None:
                continue
            if common.lower == common.upper:
                va = _interp_value(seq_a, common.lower)
                vb = _interp_value(seq_b, common.lower)
                yield SyncSegment(common.lower, common.lower, True, True,
                                  va, va, vb, vb)
                continue
            breaks = sorted(
                {common.lower, common.upper}
                | {
                    t for t in seq_a.timestamps()
                    if common.lower < t < common.upper
                }
                | {
                    t for t in seq_b.timestamps()
                    if common.lower < t < common.upper
                }
            )
            for i, (t0, t1) in enumerate(zip(breaks, breaks[1:])):
                lower_inc = common.lower_inc if i == 0 else True
                upper_inc = common.upper_inc if i == len(breaks) - 2 else False
                a0, a1 = _segment_endpoint_values(seq_a, t0, t1)
                b0, b1 = _segment_endpoint_values(seq_b, t0, t1)
                yield SyncSegment(t0, t1, lower_inc, upper_inc, a0, a1, b0, b1)


# ---------------------------------------------------------------------------
# Building temporal booleans from (span, bool) pieces
# ---------------------------------------------------------------------------


def tbool_from_pieces(pieces: list[tuple[Span, bool]]) -> Temporal | None:
    """Assemble a step TBool from boolean-valued time intervals."""
    if not pieces:
        return None
    pieces.sort(key=lambda p: (p[0].lower, not p[0].lower_inc))
    merged: list[tuple[Span, bool]] = []
    for span, val in pieces:
        if merged:
            last_span, last_val = merged[-1]
            touching = last_span.upper == span.lower and (
                last_span.upper_inc or span.lower_inc
            )
            if val == last_val and (touching or last_span.overlaps(span)):
                merged[-1] = (last_span.union(span), val)
                continue
            conflict = last_span.overlaps(span) or (
                touching and last_span.upper_inc and span.lower_inc
            )
            if conflict:
                if span.lower == span.upper:
                    continue  # degenerate conflicting instant: first wins
                span = Span(span.lower, span.upper, False, span.upper_inc,
                            TSTZ)
        merged.append((span, val))
    sequences = [_bool_sequence(s, v) for s, v in merged]
    return _pack_sequences(TBOOL, sequences, Interp.STEP)


def _bool_sequence(span: Span, value: bool) -> TSequence:
    if span.lower == span.upper:
        return TSequence(
            TBOOL, [TInstant(TBOOL, value, span.lower)], True, True,
            Interp.STEP,
        )
    return TSequence(
        TBOOL,
        [TInstant(TBOOL, value, span.lower), TInstant(TBOOL, value, span.upper)],
        span.lower_inc,
        span.upper_inc,
        Interp.STEP,
    )


def when_true(tbool: Temporal | None) -> SpanSet | None:
    """Time when a temporal boolean is true, as a tstzspanset (paper §6.3)."""
    if tbool is None:
        return None
    if tbool.ttype is not TBOOL:
        raise MeosTypeError("whenTrue requires a tbool")
    spans: list[Span] = []
    if isinstance(tbool, TInstant):
        if tbool.value:
            spans.append(Span.make(tbool.t, tbool.t, TSTZ, True, True))
    else:
        for seq in tbool.sequences():
            instants = seq.instants()
            if seq.interp is Interp.DISCRETE:
                spans.extend(
                    Span.make(i.t, i.t, TSTZ, True, True)
                    for i in instants
                    if i.value
                )
                continue
            for i, inst in enumerate(instants):
                if not inst.value:
                    continue
                start = inst.t
                end = instants[i + 1].t if i + 1 < len(instants) else inst.t
                lower_inc = seq.lower_inc if i == 0 else True
                if i + 1 < len(instants):
                    nxt = instants[i + 1]
                    upper_inc = (
                        nxt.value
                        or (i + 1 == len(instants) - 1 and seq.upper_inc
                            and nxt.value)
                    )
                    if start == end:
                        continue
                    spans.append(Span(start, end, lower_inc, bool(upper_inc),
                                      TSTZ))
                else:
                    if seq.upper_inc or len(instants) == 1:
                        spans.append(Span.make(start, start, TSTZ, True, True))
    if not spans:
        return None
    return SpanSet.from_spans(spans)


# ---------------------------------------------------------------------------
# Lifted boolean algebra on temporal booleans (MobilityDB & | ~)
# ---------------------------------------------------------------------------


def _tbool_pieces(value: Temporal) -> list[tuple[Span, bool]]:
    """Decompose a temporal boolean into (span, value) pieces."""
    pieces: list[tuple[Span, bool]] = []
    for seq in value.sequences():
        instants = seq.instants()
        if seq.interp is Interp.DISCRETE or len(instants) == 1:
            for inst in instants:
                pieces.append(
                    (Span.make(inst.t, inst.t, TSTZ, True, True),
                     bool(inst.value))
                )
            continue
        for i, inst in enumerate(instants[:-1]):
            nxt = instants[i + 1]
            lower_inc = seq.lower_inc if i == 0 else True
            is_last = i == len(instants) - 2
            upper_inc = seq.upper_inc and is_last and (
                bool(nxt.value) == bool(inst.value)
            )
            pieces.append(
                (Span(inst.t, nxt.t, lower_inc, upper_inc, TSTZ),
                 bool(inst.value))
            )
            if is_last and seq.upper_inc and (
                bool(nxt.value) != bool(inst.value)
            ):
                pieces.append(
                    (Span.make(nxt.t, nxt.t, TSTZ, True, True),
                     bool(nxt.value))
                )
    return pieces


def temporal_not(value: Temporal) -> Temporal | None:
    """Lifted NOT (MobilityDB ``~``)."""
    if value.ttype is not TBOOL:
        raise MeosTypeError("temporal NOT requires a tbool")
    if isinstance(value, TInstant):
        return TInstant(TBOOL, not value.value, value.t)
    if value.interp is Interp.DISCRETE:
        instants = [
            TInstant(TBOOL, not inst.value, inst.t)
            for inst in value.instants()
        ]
        return TSequence(TBOOL, instants, True, True, Interp.DISCRETE)
    return tbool_from_pieces(
        [(span, not v) for span, v in _tbool_pieces(value)]
    )


def _temporal_bool_binary(a: Temporal, b: Temporal, op) -> Temporal | None:
    if a.ttype is not TBOOL or b.ttype is not TBOOL:
        raise MeosTypeError("temporal AND/OR require tbool operands")
    pieces: list[tuple[Span, bool]] = []
    instant_results: list[TInstant] = []
    for seg in synchronize(a, b):
        value = op(bool(seg.a0), bool(seg.b0))
        if seg.t0 == seg.t1:
            instant_results.append(TInstant(TBOOL, value, seg.t0))
            continue
        pieces.append(
            (Span(seg.t0, seg.t1, seg.lower_inc, seg.upper_inc, TSTZ),
             value)
        )
    if instant_results and not pieces:
        if len(instant_results) == 1:
            return instant_results[0]
        return TSequence(TBOOL, instant_results, True, True,
                         Interp.DISCRETE)
    return tbool_from_pieces(pieces)


def temporal_and(a: Temporal, b: Temporal) -> Temporal | None:
    """Lifted AND over the common definition time (MobilityDB ``&``)."""
    return _temporal_bool_binary(a, b, lambda x, y: x and y)


def temporal_or(a: Temporal, b: Temporal) -> Temporal | None:
    """Lifted OR over the common definition time (MobilityDB ``|``)."""
    return _temporal_bool_binary(a, b, lambda x, y: x or y)


# ---------------------------------------------------------------------------
# Lifted comparison of temporal numbers (step results)
# ---------------------------------------------------------------------------


def temporal_compare(
    a: Temporal, value: Any, op: Callable[[Any, Any], bool]
) -> Temporal | None:
    """Lift a comparison against a constant to a temporal boolean.

    Linear segments are split at the crossing point with ``value`` so the
    truth value is constant on every output piece.
    """
    value = a.ttype.basetype.coerce(value)
    pieces: list[tuple[Span, bool]] = []
    if isinstance(a, TInstant) or a.interp is Interp.DISCRETE:
        result_instants = [
            TInstant(TBOOL, op(inst.value, value), inst.t)
            for inst in a.instants()
        ]
        if len(result_instants) == 1:
            return result_instants[0]
        return TSequence(TBOOL, result_instants, True, True, Interp.DISCRETE)
    for seq in a.sequences():
        instants = seq.instants()
        if len(instants) == 1:
            span = seq.tstzspan()
            pieces.append((span, op(instants[0].value, value)))
            continue
        for i in range(len(instants) - 1):
            p, q = instants[i], instants[i + 1]
            lower_inc = seq.lower_inc if i == 0 else True
            upper_inc = seq.upper_inc if i == len(instants) - 2 else False
            if seq.interp is Interp.STEP or p.value == q.value:
                pieces.append(
                    (Span(p.t, q.t, lower_inc, False, TSTZ), op(p.value, value))
                )
                if i == len(instants) - 2 and upper_inc:
                    end_val = (
                        q.value if seq.interp is Interp.LINEAR else q.value
                    )
                    pieces.append(
                        (Span.make(q.t, q.t, TSTZ, True, True),
                         op(end_val, value))
                    )
                continue
            frac = a.ttype.locate(p.value, q.value, value)
            if frac is None or not 0.0 < frac < 1.0:
                mid = a.ttype.interpolate(p.value, q.value, 0.5)
                pieces.append(
                    (Span(p.t, q.t, lower_inc, upper_inc, TSTZ),
                     op(mid, value))
                )
                continue
            t_cross = p.t + round(frac * (q.t - p.t))
            left_mid = a.ttype.interpolate(p.value, q.value, frac / 2)
            right_mid = a.ttype.interpolate(
                p.value, q.value, (1 + frac) / 2
            )
            if t_cross > p.t:
                pieces.append(
                    (Span(p.t, t_cross, lower_inc, False, TSTZ),
                     op(left_mid, value))
                )
            pieces.append(
                (Span.make(t_cross, t_cross, TSTZ, True, True),
                 op(value, value))
            )
            if t_cross < q.t:
                pieces.append(
                    (Span(t_cross, q.t, False, upper_inc, TSTZ),
                     op(right_mid, value))
                )
    return tbool_from_pieces(pieces)


# ---------------------------------------------------------------------------
# Quadratic distance machinery (shared by tDwithin & distance)
# ---------------------------------------------------------------------------


def segment_distance_quadratic(seg: SyncSegment) -> tuple[float, float, float]:
    """Coefficients (A, B, C) of squared distance between the operands of a
    sync segment as a function of the normalized time s in [0, 1]:
    ``d²(s) = A s² + B s + C``."""
    dx0 = seg.a0.x - seg.b0.x
    dy0 = seg.a0.y - seg.b0.y
    dx1 = seg.a1.x - seg.b1.x
    dy1 = seg.a1.y - seg.b1.y
    vx = dx1 - dx0
    vy = dy1 - dy0
    a_coef = vx * vx + vy * vy
    b_coef = 2.0 * (dx0 * vx + dy0 * vy)
    c_coef = dx0 * dx0 + dy0 * dy0
    return (a_coef, b_coef, c_coef)


def quadratic_below(
    a_coef: float, b_coef: float, c_coef: float, threshold_sq: float
) -> list[tuple[float, float]]:
    """Solve ``A s² + B s + C <= threshold²`` on s in [0, 1]."""
    c_adj = c_coef - threshold_sq
    if a_coef <= 1e-18:
        if abs(b_coef) <= 1e-18:
            return [(0.0, 1.0)] if c_adj <= 0 else []
        root = -c_adj / b_coef
        if b_coef > 0:
            lo, hi = 0.0, min(1.0, root)
        else:
            lo, hi = max(0.0, root), 1.0
        return [(lo, hi)] if lo <= hi else []
    disc = b_coef * b_coef - 4.0 * a_coef * c_adj
    if disc < 0:
        return []
    sqrt_disc = math.sqrt(disc)
    s1 = (-b_coef - sqrt_disc) / (2.0 * a_coef)
    s2 = (-b_coef + sqrt_disc) / (2.0 * a_coef)
    lo, hi = max(0.0, s1), min(1.0, s2)
    return [(lo, hi)] if lo <= hi else []
