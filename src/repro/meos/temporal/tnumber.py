"""Lifted arithmetic and statistics on temporal numbers (MEOS tnumber ops).

Implements the temporal-number part of the MEOS algebra: arithmetic
between temporal numbers and constants or other temporal numbers
(synchronized segment-wise, with turning points inserted where a product
or quotient is non-linear), the definite integral, and the time-weighted
average (``twAvg``) / extrema.
"""

from __future__ import annotations

import operator
from typing import Any, Callable

from ..errors import MeosError, MeosTypeError
from ..timetypes import USECS_PER_SEC
from .base import Temporal, TInstant, TSequence, _pack_sequences
from .interp import Interp
from .lifted import synchronize
from .ttypes import TFLOAT, TINT

_NUMERIC = (TINT.name, TFLOAT.name)


def _require_number(value: Temporal) -> None:
    if value.ttype.name not in _NUMERIC:
        raise MeosTypeError(
            f"{value.ttype.name} is not a temporal number"
        )


# ---------------------------------------------------------------------------
# Temporal (+|-|*|/) constant
# ---------------------------------------------------------------------------


def arith_const(value: Temporal, constant: float,
                op: Callable[[float, float], float],
                reverse: bool = False) -> Temporal:
    """Apply ``value <op> constant`` instant-wise.

    Linear interpolation survives +,-,* by a constant (affine maps);
    division by a constant likewise.  ``reverse`` computes
    ``constant <op> value`` (needed for ``c - t`` and ``c / t``).
    """
    _require_number(value)
    if not reverse and op is operator.truediv and constant == 0:
        raise MeosError("temporal division by zero")

    def apply(v):
        return op(constant, v) if reverse else op(v, constant)

    target = TFLOAT if (
        op is operator.truediv or isinstance(constant, float)
        or value.ttype is TFLOAT
    ) else TINT
    if reverse and op is operator.truediv:
        # c / t is not linear in t: fall back to step-preserving per-instant
        # mapping for step/discrete, and refuse for linear (MEOS inserts
        # turning points; the reciprocal has none, so values are exact only
        # at instants).
        if value.interp is Interp.LINEAR:
            raise MeosError(
                "constant / linear temporal is not piecewise linear"
            )
    return value.map_values(apply, target)


def tnumber_round(value: Temporal, digits: int = 0) -> Temporal:
    """Round every value (MEOS ``round``)."""
    _require_number(value)
    return value.map_values(lambda v: round(v, int(digits)), value.ttype)


def tnumber_abs(value: Temporal) -> Temporal:
    """Absolute value; inserts zero crossings for linear input."""
    _require_number(value)
    if value.interp is not Interp.LINEAR:
        return value.map_values(abs, value.ttype)
    sequences = []
    for seq in value.sequences():
        instants = seq.instants()
        out = [TInstant(TFLOAT, abs(float(instants[0].value)),
                        instants[0].t)]
        for a, b in zip(instants, instants[1:]):
            va, vb = float(a.value), float(b.value)
            if va * vb < 0:
                # Zero crossing between a and b.
                frac = va / (va - vb)
                t_cross = a.t + round(frac * (b.t - a.t))
                if t_cross > out[-1].t:
                    out.append(TInstant(TFLOAT, 0.0, t_cross))
            if b.t > out[-1].t:
                out.append(TInstant(TFLOAT, abs(vb), b.t))
        sequences.append(
            TSequence(TFLOAT, out, seq.lower_inc, seq.upper_inc,
                      Interp.LINEAR)
        )
    return _pack_sequences(TFLOAT, sequences, Interp.LINEAR)


# ---------------------------------------------------------------------------
# Temporal (+|-|*|/) temporal
# ---------------------------------------------------------------------------


def arith_temporal(a: Temporal, b: Temporal,
                   op: Callable[[float, float], float]) -> Temporal | None:
    """Synchronized arithmetic between two temporal numbers.

    ``+``/``-`` of two linear values stays linear.  ``*`` and ``/`` are
    quadratic/rational per segment; like MEOS, the midpoint is inserted as
    a turning point so linear interpolation tracks the true curve.
    """
    _require_number(a)
    _require_number(b)
    linear_ops = (operator.add, operator.sub)
    sequences: list[TSequence] = []
    instant_results: list[TInstant] = []
    for seg in synchronize(a, b):
        if op is operator.truediv and (
            _crosses_zero(seg.b0, seg.b1)
        ):
            raise MeosError("temporal division by zero")
        if seg.t0 == seg.t1:
            instant_results.append(
                TInstant(TFLOAT, op(float(seg.a0), float(seg.b0)), seg.t0)
            )
            continue
        start = op(float(seg.a0), float(seg.b0))
        end = op(float(seg.a1), float(seg.b1))
        instants = [TInstant(TFLOAT, start, seg.t0)]
        if op not in linear_ops:
            mid_t = (seg.t0 + seg.t1) // 2
            if seg.t0 < mid_t < seg.t1:
                mid = op(
                    (float(seg.a0) + float(seg.a1)) / 2.0,
                    (float(seg.b0) + float(seg.b1)) / 2.0,
                )
                instants.append(TInstant(TFLOAT, mid, mid_t))
        instants.append(TInstant(TFLOAT, end, seg.t1))
        sequences.append(
            TSequence(TFLOAT, instants, seg.lower_inc, seg.upper_inc,
                      Interp.LINEAR, normalize=False)
        )
    if instant_results and not sequences:
        if len(instant_results) == 1:
            return instant_results[0]
        return TSequence(TFLOAT, instant_results, True, True,
                         Interp.DISCRETE)
    if not sequences:
        return None
    return _pack_sequences(TFLOAT, sequences, Interp.LINEAR)


def _crosses_zero(v0: Any, v1: Any) -> bool:
    v0, v1 = float(v0), float(v1)
    return v0 == 0 or v1 == 0 or (v0 < 0) != (v1 < 0)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


def integral(value: Temporal) -> float:
    """Definite integral over time (value x seconds), MEOS ``integral``."""
    _require_number(value)
    total = 0.0
    for seq in value.sequences():
        instants = seq.instants()
        if seq.interp is Interp.DISCRETE or len(instants) < 2:
            continue
        for a, b in zip(instants, instants[1:]):
            seconds = (b.t - a.t) / USECS_PER_SEC
            if seq.interp is Interp.LINEAR:
                total += (float(a.value) + float(b.value)) / 2.0 * seconds
            else:  # step holds the left value
                total += float(a.value) * seconds
    return total


def tw_avg(value: Temporal) -> float:
    """Time-weighted average (MEOS ``twAvg``).

    Instants and discrete values fall back to the plain mean."""
    _require_number(value)
    duration_us = sum(
        seq.end_timestamp() - seq.start_timestamp()
        for seq in value.sequences()
        if seq.interp is not Interp.DISCRETE
    )
    if duration_us == 0:
        values = value.values()
        return float(sum(values)) / len(values)
    return integral(value) / (duration_us / USECS_PER_SEC)


def min_instant(value: Temporal) -> TInstant:
    """The (first) instant where the minimum value is reached."""
    _require_number(value)
    return min(value.instants(), key=lambda i: (i.value, i.t))


def max_instant(value: Temporal) -> TInstant:
    """The (first) instant where the maximum value is reached."""
    _require_number(value)
    return max(value.instants(), key=lambda i: (i.value, -i.t))
