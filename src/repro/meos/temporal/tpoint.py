"""Spatial operations on temporal points (``tgeompoint``).

Implements the trajectory accessors and spatiotemporal relationships the
paper's use cases and benchmark queries exercise: ``trajectory``,
``length``, ``speed``, ``atGeometry``, ``atStbox``, ``eIntersects``,
``tDwithin`` / ``eDwithin`` / ``aDwithin``, ``distance`` (temporal), and
SRID transformation.
"""

from __future__ import annotations

import math

from ... import geo
from ..basetypes import TSTZ
from ..boxes import STBox
from ..errors import MeosError, MeosTypeError
from ..span import Span
from ..spanset import SpanSet
from ..timetypes import USECS_PER_SEC
from .base import Temporal, TInstant, TSequence, _pack_sequences
from .interp import Interp
from .lifted import (
    quadratic_below,
    segment_distance_quadratic,
    synchronize,
    tbool_from_pieces,
)
from .ttypes import SPATIAL_TYPES, TBOOL, TFLOAT


def _require_spatial(value: Temporal) -> None:
    if value.ttype not in SPATIAL_TYPES:
        raise MeosTypeError(f"{value.ttype.name} is not a spatial type")


# ---------------------------------------------------------------------------
# Trajectory and measures
# ---------------------------------------------------------------------------


def trajectory(tpoint: Temporal) -> geo.Geometry:
    """The geometry traversed by a temporal point (MEOS ``trajectory``)."""
    _require_spatial(tpoint)
    srid = tpoint.srid()
    if isinstance(tpoint, TInstant):
        return tpoint.value
    if tpoint.interp is Interp.DISCRETE:
        distinct: list[geo.Point] = []
        seen: set[tuple[float, float]] = set()
        for inst in tpoint.instants():
            key = (inst.value.x, inst.value.y)
            if key not in seen:
                seen.add(key)
                distinct.append(inst.value)
        if len(distinct) == 1:
            return distinct[0]
        return geo.MultiPoint(distinct, srid)
    parts: list[geo.Geometry] = []
    for seq in tpoint.sequences():
        coords: list[tuple[float, float]] = []
        for inst in seq.instants():
            pt = (inst.value.x, inst.value.y)
            if not coords or coords[-1] != pt:
                coords.append(pt)
        if len(coords) == 1:
            parts.append(geo.Point(coords[0][0], coords[0][1], srid))
        else:
            parts.append(geo.LineString(coords, srid))
    if len(parts) == 1:
        return parts[0]
    return geo.collect(parts)


def length(tpoint: Temporal) -> float:
    """Distance traversed (0 for step/discrete interpolation)."""
    _require_spatial(tpoint)
    if tpoint.interp is not Interp.LINEAR:
        return 0.0
    total = 0.0
    for seq in tpoint.sequences():
        instants = seq.instants()
        for a, b in zip(instants, instants[1:]):
            total += a.value.distance_to(b.value)
    return total


def cumulative_length(tpoint: Temporal) -> Temporal:
    """Cumulative traversed distance as a tfloat (MEOS ``cumulativeLength``)."""
    _require_spatial(tpoint)
    sequences: list[TSequence] = []
    running = 0.0
    for seq in tpoint.sequences():
        instants = seq.instants()
        values = [running]
        for a, b in zip(instants, instants[1:]):
            if seq.interp is Interp.LINEAR:
                running += a.value.distance_to(b.value)
            values.append(running)
        sequences.append(
            TSequence(
                TFLOAT,
                [
                    TInstant(TFLOAT, v, inst.t)
                    for v, inst in zip(values, instants)
                ],
                seq.lower_inc,
                seq.upper_inc,
                Interp.LINEAR,
            )
        )
    return _pack_sequences(TFLOAT, sequences, Interp.LINEAR)


def speed(tpoint: Temporal) -> Temporal | None:
    """Speed in units/second as a step tfloat (MEOS ``speed``)."""
    _require_spatial(tpoint)
    if tpoint.interp is not Interp.LINEAR:
        raise MeosError("speed() requires linear interpolation")
    sequences: list[TSequence] = []
    for seq in tpoint.sequences():
        instants = seq.instants()
        if len(instants) < 2:
            continue
        speed_instants: list[TInstant] = []
        for a, b in zip(instants, instants[1:]):
            seconds = (b.t - a.t) / USECS_PER_SEC
            value = a.value.distance_to(b.value) / seconds
            speed_instants.append(TInstant(TFLOAT, value, a.t))
        speed_instants.append(
            TInstant(TFLOAT, speed_instants[-1].value, instants[-1].t)
        )
        sequences.append(
            TSequence(TFLOAT, speed_instants, seq.lower_inc, seq.upper_inc,
                      Interp.STEP)
        )
    if not sequences:
        return None
    return _pack_sequences(TFLOAT, sequences, Interp.STEP)


def azimuth(tpoint: Temporal) -> Temporal | None:
    """Heading of movement per segment, radians clockwise from north,
    as a step tfloat (MEOS ``azimuth``)."""
    _require_spatial(tpoint)
    if tpoint.interp is not Interp.LINEAR:
        raise MeosError("azimuth() requires linear interpolation")
    sequences: list[TSequence] = []
    for seq in tpoint.sequences():
        instants = seq.instants()
        if len(instants) < 2:
            continue
        values: list[TInstant] = []
        for a, b in zip(instants, instants[1:]):
            heading = math.atan2(b.value.x - a.value.x,
                                 b.value.y - a.value.y) % (2 * math.pi)
            values.append(TInstant(TFLOAT, heading, a.t))
        values.append(TInstant(TFLOAT, values[-1].value, instants[-1].t))
        sequences.append(
            TSequence(TFLOAT, values, seq.lower_inc, seq.upper_inc,
                      Interp.STEP)
        )
    if not sequences:
        return None
    return _pack_sequences(TFLOAT, sequences, Interp.STEP)


def direction(tpoint: Temporal) -> float:
    """Azimuth from the first to the last position (MEOS ``direction``)."""
    _require_spatial(tpoint)
    start = tpoint.start_value()
    end = tpoint.end_value()
    return math.atan2(end.x - start.x, end.y - start.y) % (2 * math.pi)


def convex_hull(tpoint: Temporal) -> geo.Geometry:
    """Convex hull of the traversed geometry (MEOS ``convexHull``)."""
    _require_spatial(tpoint)
    return geo.convex_hull(trajectory(tpoint))


def twcentroid(tpoint: Temporal) -> geo.Point:
    """Time-weighted centroid of a temporal point."""
    _require_spatial(tpoint)
    instants = tpoint.instants()
    if len(instants) == 1:
        return instants[0].value
    weight_sum = 0.0
    cx = cy = 0.0
    for seq in tpoint.sequences():
        seq_instants = seq.instants()
        if len(seq_instants) == 1:
            continue
        for a, b in zip(seq_instants, seq_instants[1:]):
            w = b.t - a.t
            cx += (a.value.x + b.value.x) / 2 * w
            cy += (a.value.y + b.value.y) / 2 * w
            weight_sum += w
    if weight_sum == 0.0:
        xs = [i.value.x for i in instants]
        ys = [i.value.y for i in instants]
        return geo.Point(sum(xs) / len(xs), sum(ys) / len(ys), tpoint.srid())
    return geo.Point(cx / weight_sum, cy / weight_sum, tpoint.srid())


# ---------------------------------------------------------------------------
# Restriction to geometries and boxes
# ---------------------------------------------------------------------------


def at_geometry(tpoint: Temporal, geom: geo.Geometry) -> Temporal | None:
    """Restrict a temporal point to the (time it spends inside a) geometry."""
    _require_spatial(tpoint)
    if geom.is_empty():
        return None
    if isinstance(tpoint, TInstant):
        if geo.intersects(geom, tpoint.value):
            return tpoint
        return None
    if tpoint.interp is Interp.DISCRETE:
        kept = [
            inst for inst in tpoint.instants()
            if geo.intersects(geom, inst.value)
        ]
        if not kept:
            return None
        if len(kept) == 1:
            return kept[0]
        return TSequence(tpoint.ttype, kept, True, True, Interp.DISCRETE)
    pieces: list[TSequence] = []
    for seq in tpoint.sequences():
        pieces.extend(_sequence_at_geometry(seq, geom))
    return _pack_sequences(tpoint.ttype, pieces, tpoint.interp)


def _sequence_at_geometry(
    seq: TSequence, geom: geo.Geometry
) -> list[TSequence]:
    instants = seq.instants()
    ttype = seq.ttype
    if len(instants) == 1:
        if geo.intersects(geom, instants[0].value):
            return [TSequence(ttype, instants, True, True, seq.interp)]
        return []
    spans: list[Span] = []
    for i in range(len(instants) - 1):
        a, b = instants[i], instants[i + 1]
        if seq.interp is Interp.STEP:
            if geo.intersects(geom, a.value):
                spans.append(Span(a.t, b.t, True, False, TSTZ))
            if i == len(instants) - 2 and seq.upper_inc and geo.intersects(
                geom, b.value
            ):
                spans.append(Span.make(b.t, b.t, TSTZ, True, True))
            continue
        a_pt = (a.value.x, a.value.y)
        b_pt = (b.value.x, b.value.y)
        for lo, hi in geo.clip_segment_to_geometry(a_pt, b_pt, geom):
            t_lo = a.t + round(lo * (b.t - a.t))
            t_hi = a.t + round(hi * (b.t - a.t))
            if t_lo == t_hi:
                spans.append(Span.make(t_lo, t_lo, TSTZ, True, True))
            else:
                spans.append(Span(t_lo, t_hi, True, True, TSTZ))
    if not spans:
        return []
    spanset = SpanSet.from_spans(spans)
    restricted = seq.at_time(spanset)
    if restricted is None:
        return []
    if isinstance(restricted, TInstant):
        return restricted.sequences()
    return restricted.sequences()


def at_stbox(tpoint: Temporal, box: STBox) -> Temporal | None:
    """Restrict a temporal point to a spatiotemporal box."""
    _require_spatial(tpoint)
    result: Temporal | None = tpoint
    if box.has_t:
        result = result.at_time(box.tspan)
        if result is None:
            return None
    if box.has_x:
        result = at_geometry(result, box.to_geometry())
    return result


def minus_geometry(tpoint: Temporal, geom: geo.Geometry) -> Temporal | None:
    hit = at_geometry(tpoint, geom)
    if hit is None:
        return tpoint
    return tpoint.minus_time(hit.time())


# ---------------------------------------------------------------------------
# Spatiotemporal relationships
# ---------------------------------------------------------------------------


def e_intersects(tpoint: Temporal, geom: geo.Geometry) -> bool:
    """Ever-intersects between a temporal point and a geometry."""
    _require_spatial(tpoint)
    return geo.intersects(trajectory(tpoint), geom)


def a_intersects(tpoint: Temporal, geom: geo.Geometry) -> bool:
    """Always-intersects between a temporal point and a geometry."""
    hit = at_geometry(tpoint, geom)
    if hit is None:
        return False
    return hit.time().contains_spanset(tpoint.time())


def t_intersects(tpoint: Temporal, geom: geo.Geometry) -> Temporal | None:
    """Temporal boolean of intersection with a static geometry."""
    _require_spatial(tpoint)
    hit = at_geometry(tpoint, geom)
    own_time = tpoint.time()
    pieces: list[tuple[Span, bool]] = []
    if hit is not None:
        for span in hit.time():
            pieces.append((span, True))
        rest = own_time.minus(hit.time())
    else:
        rest = own_time
    if rest is not None:
        for span in rest:
            pieces.append((span, False))
    return tbool_from_pieces(pieces)


def t_dwithin(a: Temporal, b: Temporal, dist: float) -> Temporal | None:
    """Temporal ``tDwithin``: when are two temporal points within ``dist``.

    For each synchronized segment the squared distance is a quadratic in
    time; the within-threshold window is obtained by solving it (paper
    §6.3, Query 10).
    """
    _require_spatial(a)
    _require_spatial(b)
    threshold_sq = float(dist) * float(dist)
    pieces: list[tuple[Span, bool]] = []
    instant_results: list[TInstant] = []
    any_segment = False
    for seg in synchronize(a, b):
        any_segment = True
        if seg.t0 == seg.t1:
            within = _points_within(seg.a0, seg.b0, dist)
            instant_results.append(TInstant(TBOOL, within, seg.t0))
            continue
        a_coef, b_coef, c_coef = segment_distance_quadratic(seg)
        windows = quadratic_below(a_coef, b_coef, c_coef, threshold_sq)
        span_total = Span(seg.t0, seg.t1, seg.lower_inc, seg.upper_inc, TSTZ)
        if not windows:
            pieces.append((span_total, False))
            continue
        duration_us = seg.t1 - seg.t0
        covered: list[Span] = []
        for lo, hi in windows:
            t_lo = seg.t0 + round(lo * duration_us)
            t_hi = seg.t0 + round(hi * duration_us)
            lower_inc = seg.lower_inc if t_lo == seg.t0 else True
            upper_inc = seg.upper_inc if t_hi == seg.t1 else True
            if t_lo == t_hi:
                if lower_inc and upper_inc:
                    window_span = Span.make(t_lo, t_lo, TSTZ, True, True)
                else:
                    continue
            else:
                window_span = Span(t_lo, t_hi, lower_inc, upper_inc, TSTZ)
            pieces.append((window_span, True))
            covered.append(window_span)
        remainder = SpanSet.from_spans([span_total]).minus(
            SpanSet.from_spans(covered)
        )
        if remainder is not None:
            for span in remainder:
                pieces.append((span, False))
    if instant_results and not pieces:
        if len(instant_results) == 1:
            return instant_results[0]
        return TSequence(TBOOL, instant_results, True, True, Interp.DISCRETE)
    if not any_segment:
        return None
    return tbool_from_pieces(pieces)


def _points_within(p: geo.Point, q: geo.Point, dist: float) -> bool:
    return p.distance_to(q) <= dist + 1e-9


def e_dwithin(a: Temporal, b: Temporal, dist: float) -> bool:
    """Ever within distance (``eDwithin``, use case 6 of §6.2)."""
    _require_spatial(a)
    _require_spatial(b)
    threshold_sq = float(dist) * float(dist)
    for seg in synchronize(a, b):
        a_coef, b_coef, c_coef = segment_distance_quadratic(seg)
        if seg.t0 == seg.t1:
            if c_coef <= threshold_sq + 1e-12:
                return True
            continue
        if quadratic_below(a_coef, b_coef, c_coef, threshold_sq):
            return True
    return False


def a_dwithin(a: Temporal, b: Temporal, dist: float) -> bool:
    """Always within distance over the common definition time."""
    _require_spatial(a)
    _require_spatial(b)
    threshold_sq = float(dist) * float(dist)
    found = False
    for seg in synchronize(a, b):
        found = True
        a_coef, b_coef, c_coef = segment_distance_quadratic(seg)
        # The quadratic opens upward: its maximum on [0,1] is at an endpoint.
        at_start = c_coef
        at_end = a_coef + b_coef + c_coef
        if max(at_start, at_end) > threshold_sq + 1e-12:
            return False
    return found


def temporal_distance(a: Temporal, b: Temporal) -> Temporal | None:
    """Distance between two temporal points as a tfloat.

    The true distance on a segment is the square root of a quadratic; like
    MEOS we insert the interior minimum as an extra instant and use linear
    interpolation in between.
    """
    _require_spatial(a)
    _require_spatial(b)
    sequences: list[TSequence] = []
    instant_results: list[TInstant] = []
    for seg in synchronize(a, b):
        if seg.t0 == seg.t1:
            instant_results.append(
                TInstant(TFLOAT, seg.a0.distance_to(seg.b0), seg.t0)
            )
            continue
        a_coef, b_coef, c_coef = segment_distance_quadratic(seg)
        times = [0.0, 1.0]
        if a_coef > 1e-18:
            s_min = -b_coef / (2.0 * a_coef)
            if 0.0 < s_min < 1.0:
                times = [0.0, s_min, 1.0]
        duration_us = seg.t1 - seg.t0
        instants = []
        for s in times:
            value = math.sqrt(max(0.0, a_coef * s * s + b_coef * s + c_coef))
            instants.append(
                TInstant(TFLOAT, value, seg.t0 + round(s * duration_us))
            )
        dedup = [instants[0]]
        for inst in instants[1:]:
            if inst.t > dedup[-1].t:
                dedup.append(inst)
        if len(dedup) == 1:
            sequences.append(
                TSequence(TFLOAT, dedup, True, True, Interp.LINEAR)
            )
        else:
            sequences.append(
                TSequence(TFLOAT, dedup, seg.lower_inc, seg.upper_inc,
                          Interp.LINEAR)
            )
    if instant_results and not sequences:
        if len(instant_results) == 1:
            return instant_results[0]
        return TSequence(TFLOAT, instant_results, True, True, Interp.DISCRETE)
    if not sequences:
        return None
    return _pack_sequences(TFLOAT, sequences, Interp.LINEAR)


def nearest_approach_distance(a: Temporal, b: Temporal) -> float | None:
    """Minimum distance ever between two temporal points."""
    best: float | None = None
    for seg in synchronize(a, b):
        a_coef, b_coef, c_coef = segment_distance_quadratic(seg)
        candidates = [c_coef, a_coef + b_coef + c_coef]
        if seg.t0 != seg.t1 and a_coef > 1e-18:
            s_min = -b_coef / (2.0 * a_coef)
            if 0.0 < s_min < 1.0:
                candidates.append(
                    a_coef * s_min * s_min + b_coef * s_min + c_coef
                )
        low = math.sqrt(max(0.0, min(candidates)))
        if best is None or low < best:
            best = low
    return best


# ---------------------------------------------------------------------------
# Trajectory simplification (MEOS minDistSimplify / DouglasPeuckerSimplify)
# ---------------------------------------------------------------------------


def min_dist_simplify(tpoint: Temporal, distance: float) -> Temporal:
    """Drop instants closer than ``distance`` to the last kept instant."""
    _require_spatial(tpoint)
    if isinstance(tpoint, TInstant):
        return tpoint
    sequences: list[TSequence] = []
    for seq in tpoint.sequences():
        instants = seq.instants()
        kept = [instants[0]]
        for inst in instants[1:-1]:
            if inst.value.distance_to(kept[-1].value) >= distance:
                kept.append(inst)
        if len(instants) > 1:
            kept.append(instants[-1])
        sequences.append(
            TSequence(tpoint.ttype, kept, seq.lower_inc, seq.upper_inc,
                      seq.interp, normalize=False)
        )
    return _pack_sequences(tpoint.ttype, sequences, tpoint.interp)


def douglas_peucker_simplify(
    tpoint: Temporal, tolerance: float
) -> Temporal:
    """Classic Douglas–Peucker on each sequence's vertex chain.

    Keeps every instant whose point deviates more than ``tolerance`` from
    the simplified chain; timestamps ride along with their points.
    """
    _require_spatial(tpoint)
    if isinstance(tpoint, TInstant):
        return tpoint
    sequences: list[TSequence] = []
    for seq in tpoint.sequences():
        instants = seq.instants()
        if len(instants) <= 2:
            sequences.append(seq)
            continue
        keep = [False] * len(instants)
        keep[0] = keep[-1] = True
        _dp_recurse(instants, 0, len(instants) - 1, tolerance, keep)
        kept = [inst for inst, flag in zip(instants, keep) if flag]
        sequences.append(
            TSequence(tpoint.ttype, kept, seq.lower_inc, seq.upper_inc,
                      seq.interp, normalize=False)
        )
    return _pack_sequences(tpoint.ttype, sequences, tpoint.interp)


def _dp_recurse(instants, lo: int, hi: int, tolerance: float,
                keep: list[bool]) -> None:
    if hi <= lo + 1:
        return
    a = (instants[lo].value.x, instants[lo].value.y)
    b = (instants[hi].value.x, instants[hi].value.y)
    worst = -1.0
    worst_idx = -1
    for i in range(lo + 1, hi):
        p = (instants[i].value.x, instants[i].value.y)
        d = geo.algorithms.point_segment_distance(p, a, b)
        if d > worst:
            worst = d
            worst_idx = i
    if worst > tolerance:
        keep[worst_idx] = True
        _dp_recurse(instants, lo, worst_idx, tolerance, keep)
        _dp_recurse(instants, worst_idx, hi, tolerance, keep)


# ---------------------------------------------------------------------------
# SRID handling
# ---------------------------------------------------------------------------


def transform(tpoint: Temporal, target_srid: int) -> Temporal:
    """Reproject every instant of a temporal point."""
    _require_spatial(tpoint)
    return tpoint.map_values(lambda v: geo.transform(v, target_srid))


def set_srid(tpoint: Temporal, srid: int) -> Temporal:
    _require_spatial(tpoint)
    return tpoint.map_values(lambda v: v.with_srid(srid))
