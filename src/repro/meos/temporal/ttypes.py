"""Temporal-type descriptors: tbool, tint, tfloat, ttext, tgeompoint, tgeography.

A :class:`TemporalType` tells the generic temporal machinery how to handle
one base type: parsing/formatting of values, whether linear interpolation is
allowed, how to interpolate, and how to test value equality (geometries
compare by coordinates, floats exactly — matching MEOS).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ... import geo
from ..basetypes import (
    BOOL,
    BaseType,
    FLOAT,
    GEOGRAPHY,
    GEOMETRY,
    INT,
    TEXT,
)
from ..errors import MeosError


@dataclass(frozen=True)
class TemporalType:
    """Descriptor of a temporal type (``tint``, ``tgeompoint``, …)."""

    name: str
    basetype: BaseType
    #: Linear interpolation allowed (continuous base type).
    continuous: bool
    parse_value: Callable[[str], Any]
    format_value: Callable[[Any], str]

    def __reduce__(self):
        # Pickle by name: descriptors are singletons holding callables.
        return (temporal_type, (self.name,))

    def value_eq(self, a: Any, b: Any) -> bool:
        if isinstance(a, geo.Geometry) and isinstance(b, geo.Geometry):
            return a == b
        return a == b

    def interpolate(self, v0: Any, v1: Any, frac: float) -> Any:
        """Value at fraction ``frac`` between two instants (linear)."""
        if not self.continuous:
            raise MeosError(f"{self.name} does not support interpolation")
        if isinstance(v0, geo.Point):
            return geo.Point(
                v0.x + (v1.x - v0.x) * frac,
                v0.y + (v1.y - v0.y) * frac,
                v0.srid,
            )
        return v0 + (v1 - v0) * frac

    def locate(self, v0: Any, v1: Any, value: Any) -> float | None:
        """Fraction in [0,1] where a linear segment v0→v1 passes ``value``;
        None if it never does (or the segment is constant ≠ value)."""
        if isinstance(v0, geo.Point) and isinstance(value, geo.Point):
            dx, dy = v1.x - v0.x, v1.y - v0.y
            seg_len2 = dx * dx + dy * dy
            if seg_len2 <= geo.algorithms.EPSILON**2:
                return 0.0 if v0.distance_to(value) <= 1e-9 else None
            t = ((value.x - v0.x) * dx + (value.y - v0.y) * dy) / seg_len2
            if not -1e-12 <= t <= 1 + 1e-12:
                return None
            px = v0.x + t * dx
            py = v0.y + t * dy
            if abs(px - value.x) > 1e-9 or abs(py - value.y) > 1e-9:
                return None
            return min(1.0, max(0.0, t))
        if v0 == v1:
            return 0.0 if v0 == value else None
        t = (value - v0) / (v1 - v0)
        if 0.0 <= t <= 1.0:
            return t
        return None


def _parse_geo_value(text: str) -> geo.Geometry:
    return geo.parse_wkt(text)


def _format_geo_value(value: geo.Geometry) -> str:
    return geo.format_wkt(value)


TBOOL = TemporalType("tbool", BOOL, False, BOOL.parse, BOOL.format)
TINT = TemporalType("tint", INT, False, INT.parse, INT.format)
TFLOAT = TemporalType("tfloat", FLOAT, True, FLOAT.parse, FLOAT.format)
TTEXT = TemporalType("ttext", TEXT, False, TEXT.parse,
                     lambda v: f'"{v}"')
TGEOMPOINT = TemporalType(
    "tgeompoint", GEOMETRY, True, _parse_geo_value, _format_geo_value
)
#: General temporal geometry (the paper's ``tgeometry``); shares machinery
#: with tgeompoint but allows non-point values with step interpolation.
TGEOMETRY = TemporalType(
    "tgeometry", GEOMETRY, False, _parse_geo_value, _format_geo_value
)
TGEOGPOINT = TemporalType(
    "tgeogpoint", GEOGRAPHY, True, _parse_geo_value, _format_geo_value
)

_BY_NAME = {
    t.name: t
    for t in (TBOOL, TINT, TFLOAT, TTEXT, TGEOMPOINT, TGEOMETRY, TGEOGPOINT)
}


def temporal_type(name: str) -> TemporalType:
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise MeosError(f"unknown temporal type {name!r}") from None


SPATIAL_TYPES = (TGEOMPOINT, TGEOMETRY, TGEOGPOINT)
