"""Timestamps, dates and intervals with PostgreSQL-compatible text formats.

Timestamps with time zone (``timestamptz``) are represented internally as
**microseconds since the Unix epoch, UTC** (an ``int``), matching both
PostgreSQL's internal 64-bit representation and what a columnar engine wants
to store in an int64 vector.  Dates are days since the epoch.

``Interval`` follows PostgreSQL semantics: separate month / day / microsecond
components, so ``'1 day'`` shifted across a DST boundary or ``'1 month'``
added to January 31 behave calendar-wise (we only need the UTC subset here,
but the component split also drives the textual format, e.g. ``2 days`` vs
``48:00:00``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from datetime import date, datetime, timedelta, timezone

from .errors import MeosError

USECS_PER_SEC = 1_000_000
USECS_PER_MIN = 60 * USECS_PER_SEC
USECS_PER_HOUR = 60 * USECS_PER_MIN
USECS_PER_DAY = 24 * USECS_PER_HOUR
DAYS_PER_MONTH = 30  # PostgreSQL's convention for interval comparison

_EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)

_TS_RE = re.compile(
    r"""^\s*
    (?P<year>\d{4})-(?P<month>\d{2})-(?P<day>\d{2})
    (?:[ T]
      (?P<hour>\d{2}):(?P<minute>\d{2})
      (?::(?P<second>\d{2})(?:\.(?P<frac>\d{1,6}))?)?
    )?
    (?:\s*(?P<tz>Z|[+-]\d{2}(?::?\d{2})?))?
    \s*$""",
    re.VERBOSE,
)


def parse_timestamptz(text: str) -> int:
    """Parse ``'2025-01-01'`` / ``'2025-01-01 12:30:45.5+02'`` to usecs."""
    match = _TS_RE.match(text)
    if not match:
        raise MeosError(f"invalid timestamp literal: {text!r}")
    year = int(match["year"])
    month = int(match["month"])
    day = int(match["day"])
    hour = int(match["hour"] or 0)
    minute = int(match["minute"] or 0)
    second = int(match["second"] or 0)
    frac = match["frac"] or ""
    usec = int(frac.ljust(6, "0")) if frac else 0
    tz_text = match["tz"]
    offset_min = 0
    if tz_text and tz_text != "Z":
        sign = 1 if tz_text[0] == "+" else -1
        digits = tz_text[1:].replace(":", "")
        hours_part = int(digits[:2])
        mins_part = int(digits[2:4]) if len(digits) >= 4 else 0
        offset_min = sign * (hours_part * 60 + mins_part)
    try:
        moment = datetime(year, month, day, hour, minute, second, usec,
                          tzinfo=timezone.utc)
    except ValueError as exc:
        raise MeosError(f"invalid timestamp {text!r}: {exc}") from None
    usecs = int((moment - _EPOCH).total_seconds()) * USECS_PER_SEC + usec
    # total_seconds() already includes the microsecond part; recompute safely:
    delta = moment - _EPOCH
    usecs = (delta.days * USECS_PER_DAY
             + delta.seconds * USECS_PER_SEC
             + delta.microseconds)
    return usecs - offset_min * USECS_PER_MIN


def format_timestamptz(usecs: int) -> str:
    """Format usecs as MobilityDB does: ``2025-01-01 00:00:00+00``."""
    moment = _EPOCH + timedelta(microseconds=int(usecs))
    base = moment.strftime("%Y-%m-%d %H:%M:%S")
    if moment.microsecond:
        base += f".{moment.microsecond:06d}".rstrip("0")
    return base + "+00"


def timestamptz_to_datetime(usecs: int) -> datetime:
    return _EPOCH + timedelta(microseconds=int(usecs))


def datetime_to_timestamptz(moment: datetime) -> int:
    if moment.tzinfo is None:
        moment = moment.replace(tzinfo=timezone.utc)
    delta = moment - _EPOCH
    return (delta.days * USECS_PER_DAY
            + delta.seconds * USECS_PER_SEC
            + delta.microseconds)


def parse_date(text: str) -> int:
    """Parse ``'2025-01-01'`` to days since the epoch."""
    try:
        parsed = date.fromisoformat(text.strip())
    except ValueError as exc:
        raise MeosError(f"invalid date literal: {text!r}") from None
    return (parsed - date(1970, 1, 1)).days


def format_date(days: int) -> str:
    return (date(1970, 1, 1) + timedelta(days=int(days))).isoformat()


def date_to_timestamptz(days: int) -> int:
    return int(days) * USECS_PER_DAY


def timestamptz_to_date(usecs: int) -> int:
    return int(usecs) // USECS_PER_DAY


_INTERVAL_UNITS = {
    "microsecond": ("usecs", 1),
    "microseconds": ("usecs", 1),
    "us": ("usecs", 1),
    "millisecond": ("usecs", 1000),
    "milliseconds": ("usecs", 1000),
    "ms": ("usecs", 1000),
    "second": ("usecs", USECS_PER_SEC),
    "seconds": ("usecs", USECS_PER_SEC),
    "sec": ("usecs", USECS_PER_SEC),
    "secs": ("usecs", USECS_PER_SEC),
    "s": ("usecs", USECS_PER_SEC),
    "minute": ("usecs", USECS_PER_MIN),
    "minutes": ("usecs", USECS_PER_MIN),
    "min": ("usecs", USECS_PER_MIN),
    "mins": ("usecs", USECS_PER_MIN),
    "hour": ("usecs", USECS_PER_HOUR),
    "hours": ("usecs", USECS_PER_HOUR),
    "h": ("usecs", USECS_PER_HOUR),
    "day": ("days", 1),
    "days": ("days", 1),
    "d": ("days", 1),
    "week": ("days", 7),
    "weeks": ("days", 7),
    "month": ("months", 1),
    "months": ("months", 1),
    "mon": ("months", 1),
    "mons": ("months", 1),
    "year": ("months", 12),
    "years": ("months", 12),
    "y": ("months", 12),
}

_HMS_RE = re.compile(r"^(-?)(\d+):(\d{2})(?::(\d{2})(?:\.(\d{1,6}))?)?$")


@dataclass(frozen=True)
class Interval:
    """PostgreSQL-style interval: months + days + microseconds."""

    months: int = 0
    days: int = 0
    usecs: int = 0

    @classmethod
    def parse(cls, text: str) -> "Interval":
        """Parse ``'1 day'``, ``'2 hours 30 minutes'``, ``'01:30:00'``…"""
        tokens = text.strip().split()
        if not tokens:
            raise MeosError("empty interval literal")
        months = days = usecs = 0
        i = 0
        while i < len(tokens):
            token = tokens[i]
            hms = _HMS_RE.match(token)
            if hms:
                sign = -1 if hms.group(1) else 1
                hours = int(hms.group(2))
                minutes = int(hms.group(3))
                seconds = int(hms.group(4) or 0)
                frac = hms.group(5) or ""
                frac_usecs = int(frac.ljust(6, "0")) if frac else 0
                usecs += sign * (
                    hours * USECS_PER_HOUR
                    + minutes * USECS_PER_MIN
                    + seconds * USECS_PER_SEC
                    + frac_usecs
                )
                i += 1
                continue
            try:
                amount = float(token)
            except ValueError:
                raise MeosError(f"invalid interval literal: {text!r}") from None
            if i + 1 >= len(tokens):
                raise MeosError(f"interval amount without unit: {text!r}")
            unit = tokens[i + 1].lower().rstrip(",")
            if unit not in _INTERVAL_UNITS:
                raise MeosError(f"unknown interval unit {unit!r} in {text!r}")
            field, scale = _INTERVAL_UNITS[unit]
            if field == "months":
                whole = int(amount)
                months += whole * scale
                # Fractional months spill into days (PostgreSQL behaviour).
                days += int(round((amount - whole) * scale * DAYS_PER_MONTH))
            elif field == "days":
                whole = int(amount)
                days += whole * scale
                usecs += int(round((amount - whole) * scale * USECS_PER_DAY))
            else:
                usecs += int(round(amount * scale))
            i += 2
        return cls(months, days, usecs)

    def total_usecs(self) -> int:
        """Approximate total duration (months counted as 30 days)."""
        return (
            self.months * DAYS_PER_MONTH * USECS_PER_DAY
            + self.days * USECS_PER_DAY
            + self.usecs
        )

    def __bool__(self) -> bool:
        return bool(self.months or self.days or self.usecs)

    def __neg__(self) -> "Interval":
        return Interval(-self.months, -self.days, -self.usecs)

    def __add__(self, other: "Interval") -> "Interval":
        if not isinstance(other, Interval):
            return NotImplemented
        return Interval(
            self.months + other.months,
            self.days + other.days,
            self.usecs + other.usecs,
        )

    def __str__(self) -> str:
        parts: list[str] = []
        months = self.months
        years, months = divmod(abs(months), 12)
        sign = "-" if self.months < 0 else ""
        if years:
            parts.append(f"{sign}{years} year" + ("s" if years != 1 else ""))
        if months:
            parts.append(f"{sign}{months} mon" + ("s" if months != 1 else ""))
        if self.days:
            word = "day" if abs(self.days) == 1 else "days"
            parts.append(f"{self.days} {word}")
        if self.usecs or not parts:
            total = abs(self.usecs)
            hours, rem = divmod(total, USECS_PER_HOUR)
            minutes, rem = divmod(rem, USECS_PER_MIN)
            seconds, frac = divmod(rem, USECS_PER_SEC)
            text = f"{hours:02d}:{minutes:02d}:{seconds:02d}"
            if frac:
                text += f".{frac:06d}".rstrip("0")
            if self.usecs < 0:
                text = "-" + text
            if self.usecs or not parts:
                parts.append(text)
        return " ".join(parts)


def interval_from_usecs(usecs: int) -> Interval:
    """Build an interval from a duration, splitting whole days out so the
    textual form matches PostgreSQL (``'2 days'``, not ``'48:00:00'``)."""
    days, rem = divmod(int(usecs), USECS_PER_DAY)
    if usecs < 0 and rem:
        days += 1
        rem -= USECS_PER_DAY
    return Interval(0, days, rem)


def add_interval(usecs: int, interval: Interval) -> int:
    """Add an interval to a timestamptz (UTC calendar arithmetic)."""
    moment = timestamptz_to_datetime(usecs)
    if interval.months:
        month_index = moment.month - 1 + interval.months
        year = moment.year + month_index // 12
        month = month_index % 12 + 1
        day = min(moment.day, _days_in_month(year, month))
        moment = moment.replace(year=year, month=month, day=day)
    moment = moment + timedelta(days=interval.days,
                                microseconds=interval.usecs)
    return datetime_to_timestamptz(moment)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    next_month = date(year, month + 1, 1)
    return (next_month - date(year, month, 1)).days
