"""repro.observability — unified query observability for both engines.

Three layers, from hot to cold:

* :mod:`.context` — a contextvar holding the active query's
  :class:`QueryStatistics`; hot subsystems (R-tree, index probes,
  kernels, TOAST) call :func:`count` unconditionally and it no-ops when
  nothing is active.
* :mod:`.stats` / :mod:`.tracer` — per-query counters, gauges, and the
  phase-timed span tree (parse → bind → optimize → execute).
* :mod:`.metrics` — the process-wide :data:`REGISTRY` every finished
  query is absorbed into (totals + latency histograms).

Surfaced through ``Result.stats()`` / ``Connection.last_query_stats``,
``EXPLAIN ANALYZE`` (text with a phase header, or ``format="json"`` via
``Connection.explain_analyze``), and the BerlinMOD runner's
``BENCH_*.json`` profile artifacts.
"""

from .context import (
    activate,
    collection_enabled,
    count,
    current_stats,
    gauge_max,
    maybe_span,
    set_collection_enabled,
)
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsServer,
    serve_metrics,
)
from .querylog import QueryLog, QueryRecord
from .stats import PHASES, QueryStatistics
from .trace import TraceCollector, TraceEvent, chrome_trace, write_trace
from .tracer import Span, Tracer

__all__ = [
    "PHASES",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "QueryLog",
    "QueryRecord",
    "QueryStatistics",
    "Span",
    "TraceCollector",
    "TraceEvent",
    "Tracer",
    "activate",
    "chrome_trace",
    "collection_enabled",
    "count",
    "current_stats",
    "gauge_max",
    "maybe_span",
    "serve_metrics",
    "set_collection_enabled",
    "write_trace",
]
