"""Ambient per-query statistics (contextvar-scoped, concurrency-safe).

The previous profiler swapped module-level functions to observe
execution, which corrupted state when two profiled queries overlapped.
This module replaces that pattern: the active :class:`QueryStatistics`
lives in a :class:`contextvars.ContextVar`, so nested and concurrent
queries (threads, asyncio tasks, interleaved generators within one
thread via explicit activation) each see their own statistics object.

Hot subsystems call :func:`count` / :func:`gauge_max`; both are no-ops
when no query is active or collection is disabled, so library code can
instrument unconditionally.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import Iterator

from .stats import QueryStatistics

_ACTIVE: ContextVar[QueryStatistics | None] = ContextVar(
    "repro_active_query_stats", default=None
)

#: Global kill switch for always-on collection (overhead escape hatch).
_COLLECTION_ENABLED = True


def set_collection_enabled(enabled: bool) -> bool:
    """Toggle statistics collection; returns the previous setting."""
    global _COLLECTION_ENABLED
    previous = _COLLECTION_ENABLED
    _COLLECTION_ENABLED = bool(enabled)
    return previous


def collection_enabled() -> bool:
    return _COLLECTION_ENABLED


def current_stats() -> QueryStatistics | None:
    """The statistics object of the query running in this context."""
    return _ACTIVE.get()


@contextmanager
def activate(stats: QueryStatistics) -> Iterator[QueryStatistics]:
    """Make ``stats`` ambient for the duration of the block."""
    token = _ACTIVE.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE.reset(token)


def count(name: str, n: int = 1) -> None:
    """Increment a counter on the active query's statistics, if any."""
    stats = _ACTIVE.get()
    if stats is not None:
        stats.bump(name, n)


def gauge_max(name: str, value: float) -> None:
    """Record a peak gauge on the active query's statistics, if any."""
    stats = _ACTIVE.get()
    if stats is not None:
        stats.gauge_max(name, value)


def maybe_span(stats: QueryStatistics | None, name: str):
    """A tracer span on ``stats``, or a no-op context when stats is None."""
    if stats is None:
        return nullcontext()
    return stats.tracer.span(name)
