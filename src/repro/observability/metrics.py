"""Process-wide metrics registry (counters, gauges, timing histograms).

Per-query numbers live in :class:`~repro.observability.stats.QueryStatistics`
(plain dicts, no locks — one writer).  This module is the long-lived
aggregate view: every finished query is absorbed into the global
:data:`REGISTRY`, which keeps totals across the process lifetime —
queries executed, rows returned, cumulative subsystem counters, and a
histogram of per-phase latencies.  ``REGISTRY.snapshot()`` is the
machine-readable dump (what a ``/metrics`` endpoint would serve).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stats import QueryStatistics


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value that goes up and down; tracks the peak it has seen."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = float("-inf")

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class Histogram:
    """Streaming summary of observed durations (count/sum/min/max plus
    coarse powers-of-ten buckets in seconds)."""

    BUCKET_BOUNDS = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: buckets[i] counts observations <= BUCKET_BOUNDS[i];
        #: buckets[-1] is the overflow bucket.
        self.buckets = [0] * (len(self.BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named metrics with create-on-first-use semantics.

    Absorbing a query's statistics is one lock acquisition per query, so
    the registry stays off the per-row hot path.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            found = self._gauges.get(name)
            if found is None:
                found = self._gauges[name] = Gauge(name)
            return found

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name)
            return found

    def absorb(self, stats: "QueryStatistics") -> None:
        """Merge one finished query's statistics into the registry."""
        phases = stats.phase_seconds()
        with self._lock:
            self._counter_locked("queries_total").increment()
            for name, value in stats.counters.items():
                self._counter_locked(name).increment(value)
            for name, value in stats.gauges.items():
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge(name)
                gauge.set(value)
            for phase, seconds in phases.items():
                self._histogram_locked(
                    f"phase_seconds.{phase}"
                ).observe(seconds)
            self._histogram_locked("query_seconds").observe(
                stats.total_seconds()
            )

    def _counter_locked(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def _histogram_locked(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: {"value": g.value, "peak": g.peak}
                    for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h.summary()
                    for name, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry both engines publish into.
REGISTRY = MetricsRegistry()
