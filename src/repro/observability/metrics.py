"""Process-wide metrics registry (counters, gauges, timing histograms).

Per-query numbers live in :class:`~repro.observability.stats.QueryStatistics`
(plain dicts, no locks — one writer).  This module is the long-lived
aggregate view: every finished query is absorbed into the global
:data:`REGISTRY`, which keeps totals across the process lifetime —
queries executed, rows returned, cumulative subsystem counters, and a
histogram of per-phase latencies.  ``REGISTRY.snapshot()`` is the
machine-readable dump, :meth:`MetricsRegistry.expose_text` the same data
in Prometheus text-exposition format, and :func:`serve_metrics` a
stdlib ``http.server`` endpoint a scraper can poll.
"""

from __future__ import annotations

import re
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stats import QueryStatistics


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def increment(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value that goes up and down; tracks the peak it has seen."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.peak = float("-inf")

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class Histogram:
    """Streaming summary of observed durations (count/sum/min/max plus
    coarse powers-of-ten buckets in seconds)."""

    BUCKET_BOUNDS = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        #: buckets[i] counts observations <= BUCKET_BOUNDS[i];
        #: buckets[-1] is the overflow bucket.
        self.buckets = [0] * (len(self.BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 < q <= 1) from the bucket counts.

        Linear interpolation inside the bucket holding the target rank;
        the observed ``min``/``max`` tighten the first and overflow
        buckets, so single-bucket histograms still report sane tails.
        The estimate is exact at the bucket boundaries and never leaves
        ``[min, max]``.
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cumulative + n >= rank:
                # The first bucket has no finite lower bound of its own;
                # use the observed min so negative observations do not
                # get pinned to 0.0.
                lower = self.min if i == 0 else self.BUCKET_BOUNDS[i - 1]
                upper = (
                    self.BUCKET_BOUNDS[i]
                    if i < len(self.BUCKET_BOUNDS)
                    else self.max
                )
                lower = max(lower, self.min)
                upper = min(upper, self.max)
                if upper <= lower:
                    return lower
                fraction = (rank - cumulative) / n
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            cumulative += n
        return self.max

    #: The quantiles every summary / exposition reports (mean alone
    #: hides tail latency).
    QUANTILES = (0.5, 0.95, 0.99)

    def quantiles(self) -> dict[str, float]:
        return {
            f"p{int(q * 100)}": self.quantile(q) for q in self.QUANTILES
        }

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "buckets": list(self.buckets),
            **self.quantiles(),
        }


class MetricsRegistry:
    """Named metrics with create-on-first-use semantics.

    Absorbing a query's statistics is one lock acquisition per query, so
    the registry stays off the per-row hot path.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            found = self._counters.get(name)
            if found is None:
                found = self._counters[name] = Counter(name)
            return found

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            found = self._gauges.get(name)
            if found is None:
                found = self._gauges[name] = Gauge(name)
            return found

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            found = self._histograms.get(name)
            if found is None:
                found = self._histograms[name] = Histogram(name)
            return found

    def absorb(self, stats: "QueryStatistics") -> None:
        """Merge one finished query's statistics into the registry."""
        phases = stats.phase_seconds()
        with self._lock:
            self._counter_locked("queries_total").increment()
            for name, value in stats.counters.items():
                self._counter_locked(name).increment(value)
            for name, value in stats.gauges.items():
                gauge = self._gauges.get(name)
                if gauge is None:
                    gauge = self._gauges[name] = Gauge(name)
                gauge.set(value)
            for phase, seconds in phases.items():
                self._histogram_locked(
                    f"phase_seconds.{phase}"
                ).observe(seconds)
            self._histogram_locked("query_seconds").observe(
                stats.total_seconds()
            )

    def _counter_locked(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def _histogram_locked(self, name: str) -> Histogram:
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name)
        return found

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in self._counters.items()
                },
                "gauges": {
                    name: {"value": g.value, "peak": g.peak}
                    for name, g in self._gauges.items()
                },
                "histograms": {
                    name: h.summary()
                    for name, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- Prometheus text exposition -------------------------------------------

    def expose_text(self) -> str:
        """The registry in Prometheus text-exposition format.

        Dotted metric names become underscore-separated with a
        ``repro_`` prefix (``executor.rows_returned`` →
        ``repro_executor_rows_returned_total``).  Counters gain the
        conventional ``_total`` suffix, gauges export value and peak,
        histograms export cumulative ``_bucket{le=...}`` series plus
        ``_sum``/``_count``, and the p50/p95/p99 estimates surface as a
        separate ``<name>_quantile{quantile=...}`` gauge family (kept
        out of the histogram family so the output stays parseable by a
        strict exposition-format reader).
        """
        snapshot = self.snapshot()
        lines: list[str] = []
        for name, value in sorted(snapshot["counters"].items()):
            metric = _prometheus_name(name)
            if not metric.endswith("_total"):
                metric += "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(value)}")
        for name, gauge in sorted(snapshot["gauges"].items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(gauge['value'])}")
            lines.append(f"# TYPE {metric}_peak gauge")
            lines.append(f"{metric}_peak {_format_value(gauge['peak'])}")
        for name, summary in sorted(snapshot["histograms"].items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(Histogram.BUCKET_BOUNDS,
                                    summary["buckets"]):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {summary["count"]}'
            )
            lines.append(f"{metric}_sum {_format_value(summary['sum'])}")
            lines.append(f"{metric}_count {summary['count']}")
            lines.append(f"# TYPE {metric}_quantile gauge")
            for q in Histogram.QUANTILES:
                key = f"p{int(q * 100)}"
                lines.append(
                    f'{metric}_quantile{{quantile="{q}"}} '
                    f"{_format_value(summary[key])}"
                )
        return "\n".join(lines) + "\n"


_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """A valid Prometheus metric name: ``repro_`` + sanitized dotted name."""
    return "repro_" + _PROM_INVALID.sub("_", name)


def _format_value(value: float) -> str:
    if isinstance(value, bool) or not isinstance(value, float):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


class MetricsServer:
    """Handle on a running metrics endpoint (see :func:`serve_metrics`)."""

    def __init__(self, server, thread):
        self._server = server
        self._thread = thread

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


def serve_metrics(port: int = 0, host: str = "127.0.0.1",
                  registry: "MetricsRegistry | None" = None) -> MetricsServer:
    """Serve ``registry.expose_text()`` at ``/metrics`` on a daemon thread.

    ``port=0`` binds an ephemeral port (read it back from the returned
    handle).  Stdlib ``http.server`` only — no web framework — so the
    hook costs nothing when unused and adds no dependencies.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    target = registry if registry is not None else REGISTRY

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.split("?", 1)[0] not in ("/", "/metrics"):
                self.send_error(404)
                return
            body = target.expose_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # silence per-request spam
            pass

    server = ThreadingHTTPServer((host, port), _Handler)
    thread = threading.Thread(
        target=server.serve_forever, daemon=True, name="repro-metrics"
    )
    thread.start()
    return MetricsServer(server, thread)


#: The process-wide registry both engines publish into.
REGISTRY = MetricsRegistry()
