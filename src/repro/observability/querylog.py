"""Per-connection rolling query log.

``last_query_stats`` remembers exactly one query; this module retains a
bounded FIFO window of completed-query records — what ran, how long each
phase took, the headline counters, how many rows came back, how many
workers ran it, and the error if it failed.  Each connection owns one
:class:`QueryLog`; the engines append a :class:`QueryRecord` per executed
statement batch when collection is enabled.

A slow-query threshold filters what gets retained: ``SET
log_min_duration = <ms>`` on a connection (or the
``REPRO_LOG_MIN_DURATION`` environment variable as the process default)
keeps only queries at least that slow.  ``0`` logs everything (the
default), a negative value disables logging entirely.  Errors are always
logged regardless of the threshold — a fast failure is still worth
keeping.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

#: Ring-buffer capacity: how many completed queries a connection retains.
DEFAULT_CAPACITY = 128

_ENV_MIN_DURATION = "REPRO_LOG_MIN_DURATION"


def _env_min_duration() -> float:
    raw = os.environ.get(_ENV_MIN_DURATION)
    if raw is None:
        return 0.0
    try:
        return float(raw)
    except ValueError:
        return 0.0


@dataclass
class QueryRecord:
    """One completed (or failed) query."""

    sql: str
    seconds: float
    rows: int | None = None
    engine: str = ""
    workers: int = 1
    error: str | None = None
    #: wall-clock completion time (``time.time()``), for log rendering
    finished_at: float = 0.0
    phases: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "sql": self.sql,
            "seconds": self.seconds,
            "rows": self.rows,
            "engine": self.engine,
            "workers": self.workers,
            "finished_at": self.finished_at,
            "phases": dict(self.phases),
            "counters": dict(self.counters),
        }
        if self.error is not None:
            out["error"] = self.error
        return out


#: How many of the largest counters each record keeps (the full counter
#: dict for every logged query would dwarf the queries themselves).
TOP_COUNTERS = 8


class QueryLog:
    """Bounded FIFO ring of :class:`QueryRecord` (oldest evicted first)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 min_duration_ms: float | None = None):
        self._records: deque[QueryRecord] = deque(maxlen=capacity)
        #: threshold in milliseconds; 0 logs all, negative disables
        self.min_duration_ms = (
            _env_min_duration() if min_duration_ms is None
            else float(min_duration_ms)
        )
        #: lifetime totals (independent of eviction)
        self.recorded = 0
        self.suppressed = 0

    @property
    def capacity(self) -> int:
        return self._records.maxlen or 0

    def should_log(self, seconds: float, error: str | None = None) -> bool:
        if error is not None:
            return True
        if self.min_duration_ms < 0:
            return False
        return seconds * 1000.0 >= self.min_duration_ms

    def record(self, record: QueryRecord) -> bool:
        """Append if the record passes the threshold; True if kept."""
        if not self.should_log(record.seconds, record.error):
            self.suppressed += 1
            return False
        if not record.finished_at:
            record.finished_at = time.time()
        if len(record.counters) > TOP_COUNTERS:
            top = sorted(
                record.counters.items(), key=lambda kv: (-kv[1], kv[0])
            )[:TOP_COUNTERS]
            record.counters = dict(top)
        self._records.append(record)
        self.recorded += 1
        return True

    def records(self, n: int | None = None) -> list[QueryRecord]:
        """The most recent ``n`` records (all by default), oldest first."""
        if n is None or n >= len(self._records):
            return list(self._records)
        return list(self._records)[-n:]

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    # -- rendering ------------------------------------------------------------

    def format_text(self, n: int | None = None) -> str:
        """Human-readable log lines, one query per line, oldest first."""
        lines = []
        for rec in self.records(n):
            stamp = time.strftime(
                "%H:%M:%S", time.localtime(rec.finished_at)
            )
            sql = " ".join(rec.sql.split())
            if len(sql) > 60:
                sql = sql[:57] + "..."
            status = f"ERROR: {rec.error}" if rec.error else (
                f"{rec.rows} rows" if rec.rows is not None else "ok"
            )
            phases = " ".join(
                f"{name}={seconds * 1000:.2f}ms"
                for name, seconds in sorted(rec.phases.items())
            )
            line = (
                f"[{stamp}] {rec.engine or '?'} "
                f"{rec.seconds * 1000:.2f}ms {status} | {sql}"
            )
            if rec.workers > 1:
                line += f" | workers={rec.workers}"
            if phases:
                line += f" | {phases}"
            lines.append(line)
        return "\n".join(lines)

    def to_json(self, n: int | None = None) -> str:
        return json.dumps([rec.to_dict() for rec in self.records(n)])
