"""Declared observability names: every counter/gauge the engines record.

A dotted name passed to :meth:`QueryStatistics.bump` (directly or via the
ambient :func:`~repro.observability.context.count`) that is not declared
here records to nowhere anyone looks — a typo'd counter is a silent
observability hole.  Two guards close it:

* the ``repro.analysis.lint`` rule ``undeclared-counter`` checks every
  string-literal counter name in the source tree against this registry;
* under ``set_verification_enabled(True)``, :class:`QueryStatistics`
  validates names at record time, catching dynamically built names.

When adding a counter, declare it here first (grouped by subsystem).
"""

from __future__ import annotations

#: Every fixed counter name either engine records.
DECLARED_COUNTERS = frozenset({
    # quack + pgsim executors
    "executor.rows_returned",
    "executor.result_chunks",
    "executor.index_scans",
    "executor.index_candidates",
    "executor.materializations",
    "executor.materialized_chunks",
    "executor.join_index_probes",
    "executor.join_index_batches",
    "executor.join_build_rows",
    "executor.join_kernel_builds",
    "executor.join_fallback_builds",
    "executor.join_probe_rows",
    "executor.join_kernel_probes",
    "executor.join_fallback_probes",
    # quack kernel/fallback dispatch
    "quack.kernel_ops",
    "quack.fallback_ops",
    "quack.function_batch_ops",
    "quack.scalar_memo_rows",
    "quack.cast_memo_rows",
    "quack.bbox_rows_decided",
    "quack.bbox_rows_scalar",
    # pgsim row store
    "pgsim.detoast",
    # R-tree internals (shared by TRTREE and the standalone index)
    "rtree.searches",
    "rtree.nodes_visited",
    "rtree.leaf_hits",
    "rtree.batch_searches",
    "rtree.batch_probes",
    "rtree.batch_nodes_visited",
    "rtree.batch_leaf_hits",
    # index access methods
    "index.trtree.probes",
    "index.trtree.candidates",
    "index.trtree.batch_probes",
    "index.trtree.batches",
    "index.gist.probes",
    "index.gist.candidates",
    "index.btree.probes",
    "index.btree.candidates",
    # verification layer
    "verify.plans",
    "verify.rules_checked",
    "verify.chunks_checked",
    "verify.kernel_crosschecks",
    "verify.parallel_crosschecks",
    "verify.zonemap_crosschecks",
    # persistent columnar storage + spill
    "storage.rowgroups_scanned",
    "storage.rowgroups_skipped",
    "storage.segments_decoded",
    "storage.bytes_read",
    "storage.bytes_written",
    "storage.checkpoints",
    "storage.tables_attached",
    "storage.zonemap_analyze",
    "storage.spill_bytes",
    "storage.spill_rows",
    "storage.spill_runs",
    "storage.spill_partitions",
    "storage.spilled_sorts",
    "storage.spilled_joins",
    "storage.spilled_aggregates",
    # morsel-driven parallel execution
    "parallel.morsels",
    "parallel.batches",
    "parallel.build_partitions",
    "parallel.agg_partials",
    "parallel.sort_runs",
    # timeline tracing + query log
    "trace.events",
    "querylog.records",
    "querylog.suppressed",
})

#: Prefix families whose members are generated (``<prefix><suffix>``).
DECLARED_PREFIXES = (
    "optimizer.rule.",
    "optimizer.cbo.",
)

#: Every fixed gauge name.
DECLARED_GAUGES = frozenset({
    "executor.peak_materialized_rows",
    "parallel.workers",
})


def is_declared_counter(name: str) -> bool:
    if name in DECLARED_COUNTERS:
        return True
    return any(name.startswith(p) for p in DECLARED_PREFIXES)


def is_declared_gauge(name: str) -> bool:
    if name in DECLARED_GAUGES:
        return True
    return any(name.startswith(p) for p in DECLARED_PREFIXES)
