"""Per-query statistics: counters, gauges, and the phase trace.

One :class:`QueryStatistics` is created per ``Connection.execute`` call
(in both engines) and made ambient via :mod:`repro.observability.context`
so hot subsystems — the R-tree, index probes, kernels, TOAST detoasting —
can report without threading a handle through every call site.

Counters use dotted names grouped by subsystem, e.g.::

    rtree.nodes_visited      R-tree nodes touched during searches
    index.trtree.probes      TRTREE index probes (quack)
    index.gist.probes        GiST index probes (pgsim)
    quack.kernel_ops         vectorized kernel dispatches
    quack.fallback_ops       row-loop fallbacks
    pgsim.detoast            varlena deserializations
    optimizer.rule.<name>    optimizer rule fire counts
"""

from __future__ import annotations

from typing import Any

from ..analysis.config import verification_enabled
from ..analysis.errors import VerificationError
from .registry import is_declared_counter, is_declared_gauge
from .tracer import Tracer

#: The canonical phase order for rendering.
PHASES = ("parse", "bind", "optimize", "execute")


class QueryStatistics:
    """Counters, gauges, and the span trace of one query/script."""

    __slots__ = ("counters", "gauges", "tracer", "trace")

    def __init__(self):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.tracer = Tracer()
        #: optional timeline-event collector
        #: (:class:`repro.observability.trace.TraceCollector`), attached
        #: by the connection entry points; None keeps emission free.
        self.trace = None

    # -- recording ------------------------------------------------------------

    def bump(self, name: str, n: int = 1) -> None:
        if verification_enabled() and not is_declared_counter(name):
            raise VerificationError(
                f"undeclared counter {name!r}: declare it in "
                f"repro.observability.registry"
            )
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge_max(self, name: str, value: float) -> None:
        """Keep the largest observed value (peak gauges)."""
        if verification_enabled() and not is_declared_gauge(name):
            raise VerificationError(
                f"undeclared gauge {name!r}: declare it in "
                f"repro.observability.registry"
            )
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        if verification_enabled() and not is_declared_gauge(name):
            raise VerificationError(
                f"undeclared gauge {name!r}: declare it in "
                f"repro.observability.registry"
            )
        self.gauges[name] = value

    def merge(self, other: "QueryStatistics") -> None:
        """Fold a worker-local statistics object into this one.

        Counters sum; gauges keep the maximum (every declared gauge is a
        peak).  The worker tracer is dropped — span timelines from
        concurrent morsel workers would interleave meaninglessly with the
        coordinator's phase trace.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            if value > self.gauges.get(name, float("-inf")):
                self.gauges[name] = value

    # -- reading --------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def phase_seconds(self) -> dict[str, float]:
        return self.tracer.phase_seconds()

    def total_seconds(self) -> float:
        return self.tracer.total_seconds()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot (the ``BENCH_*.json`` cell shape)."""
        return {
            "phases": self.phase_seconds(),
            "total_seconds": self.total_seconds(),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "spans": self.tracer.to_list(),
        }

    def format_phases(self) -> str:
        """One-line phase summary for the EXPLAIN ANALYZE header."""
        phases = self.phase_seconds()
        parts = [
            f"{name}={phases[name] * 1000:.2f}ms"
            for name in PHASES
            if name in phases
        ]
        for name in phases:  # non-standard phases, stable order after
            if name not in PHASES:
                parts.append(f"{name}={phases[name] * 1000:.2f}ms")
        parts.append(f"total={self.total_seconds() * 1000:.2f}ms")
        return " ".join(parts)

    def format_counters(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"{k}={v:g}" for k, v in sorted(self.gauges.items())]
        return " ".join(parts)

    def __repr__(self) -> str:
        return (
            f"<QueryStatistics {self.total_seconds() * 1000:.2f}ms "
            f"{len(self.counters)} counters>"
        )
