"""Execution-timeline tracing: who ran what, when, on which worker lane.

The phase tracer (:mod:`.tracer`) answers *how long* each query phase
took; this module answers *where the time went inside the execute phase*
of a parallel query — which pool worker ran which morsel, where the
scheduling gaps are, and how operators nest on the coordinator.

One :class:`TraceCollector` is attached per query (on
``QueryStatistics.trace``) by the connection entry points whenever
collection is enabled; it is shared across the coordinator and every
morsel worker, so emission is lock-protected.  Emission sites in the
engines record *complete* intervals (a name, the perf-counter start, a
duration, a row count) tagged with the emitting thread's name — the
worker lane.  Nothing is emitted when collection is off: every site is
guarded by a ``trace is not None`` check (enforced by lint rule ANL009),
and the collector only exists when a ``QueryStatistics`` was created.

:func:`chrome_trace` merges the phase-span tree and the collected events
into Chrome trace-event JSON (the ``{"traceEvents": [...]}`` shape) with
paired ``B``/``E`` events per interval and one ``tid`` per lane, so
``chrome://tracing`` and Perfetto render worker occupancy and pipeline
stalls directly.  All intervals share one clock: raw
``time.perf_counter()`` readings, exported relative to the earliest one.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .stats import QueryStatistics

#: Event categories (the Chrome ``cat`` field): ``phase`` spans from the
#: phase tracer, ``operator`` lifetimes from profiled execution,
#: ``fragment`` for scattered streaming-chain morsels, ``morsel`` for
#: blocking-sink work units (join build partitions, aggregate partials,
#: sort runs, index-probe batches).
CATEGORIES = ("phase", "operator", "fragment", "morsel")


@dataclass
class TraceEvent:
    """One timed interval on one lane (all times ``perf_counter``)."""

    name: str
    category: str
    lane: str
    start: float
    seconds: float
    rows: int | None = None
    args: dict[str, Any] | None = None


class TraceCollector:
    """Thread-safe per-query event sink shared by coordinator and workers.

    ``home_lane`` is the thread that opened the query — phase spans (which
    carry no thread information of their own) are placed on it at export
    time, and it sorts first in the viewer.
    """

    __slots__ = ("events", "home_lane", "_lock")

    def __init__(self):
        self.events: list[TraceEvent] = []
        self.home_lane = threading.current_thread().name
        self._lock = threading.Lock()

    def emit(self, name: str, category: str, start: float, seconds: float,
             rows: int | None = None,
             args: dict[str, Any] | None = None) -> None:
        """Record one completed interval; the lane is the calling thread."""
        event = TraceEvent(
            name, category, threading.current_thread().name, start,
            seconds, rows, args,
        )
        with self._lock:
            self.events.append(event)

    def lanes(self) -> list[str]:
        """Distinct lanes that emitted events, home lane first."""
        with self._lock:
            seen = {e.lane for e in self.events}
        ordered = [self.home_lane] if self.home_lane in seen else []
        ordered += sorted(seen - {self.home_lane})
        return ordered

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------


def _collect_events(stats: "QueryStatistics") -> list[TraceEvent]:
    """Phase spans + collector events as one flat interval list."""
    collector = stats.trace
    home = collector.home_lane if collector is not None else "main"
    events: list[TraceEvent] = []

    def walk(span) -> None:
        events.append(
            TraceEvent(span.name, "phase", home, span.start, span.seconds)
        )
        for child in span.children:
            walk(child)

    for span in stats.tracer.spans:
        walk(span)
    if collector is not None:
        with collector._lock:
            events.extend(collector.events)
    return events


def chrome_trace(stats: "QueryStatistics",
                 meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Export one query's timeline as a Chrome trace-event JSON object.

    Per lane, intervals either nest or are disjoint (workers run morsels
    sequentially; operators enclose their children), so each lane's
    stream is emitted as properly paired/nested ``B``/``E`` events —
    Perfetto renders them as a flame track per lane.  Timestamps are
    microseconds relative to the earliest interval.
    """
    events = _collect_events(stats)
    collector = stats.trace
    home = collector.home_lane if collector is not None else "main"
    trace_events: list[dict[str, Any]] = []
    lanes: list[str] = []
    if events:
        seen = {e.lane for e in events}
        lanes = ([home] if home in seen else []) + sorted(seen - {home})
    t0 = min((e.start for e in events), default=0.0)
    lane_tids = {lane: tid for tid, lane in enumerate(lanes, start=1)}
    for lane in lanes:
        tid = lane_tids[lane]
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": lane},
        })
        trace_events.append({
            "ph": "M", "name": "thread_sort_index", "pid": 1, "tid": tid,
            "args": {"sort_index": tid},
        })
    for lane in lanes:
        tid = lane_tids[lane]
        lane_events = [e for e in events if e.lane == lane]
        # start-ascending, longest-first on ties: parents open before
        # their children, so the open-interval stack below nests.
        lane_events.sort(key=lambda e: (e.start, -e.seconds))
        open_stack: list[TraceEvent] = []

        def close(event: TraceEvent) -> None:
            trace_events.append({
                "ph": "E", "pid": 1, "tid": tid,
                "ts": (event.start + event.seconds - t0) * 1e6,
            })

        for event in lane_events:
            while open_stack and (
                open_stack[-1].start + open_stack[-1].seconds
                <= event.start
            ):
                close(open_stack.pop())
            begin: dict[str, Any] = {
                "ph": "B", "name": event.name, "cat": event.category,
                "pid": 1, "tid": tid, "ts": (event.start - t0) * 1e6,
            }
            args = dict(event.args) if event.args else {}
            if event.rows is not None:
                args["rows"] = event.rows
            if args:
                begin["args"] = args
            trace_events.append(begin)
            open_stack.append(event)
        while open_stack:
            close(open_stack.pop())
    out: dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if meta:
        out["otherData"] = dict(meta)
    return out


def write_trace(stats: "QueryStatistics", path: str,
                meta: dict[str, Any] | None = None) -> dict[str, Any]:
    """Serialize :func:`chrome_trace` to ``path``; returns the dict."""
    out = chrome_trace(stats, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(out, handle)
    return out
