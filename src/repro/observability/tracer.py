"""Lightweight span/trace API for the query lifecycle.

A :class:`Tracer` records a tree of named, timed spans::

    tracer = Tracer()
    with tracer.span("optimize"):
        with tracer.span("filter_pushdown"):
            ...

Top-level spans are the query *phases* (parse, bind, optimize, execute);
:meth:`Tracer.phase_seconds` aggregates them by name so repeated phases
(multi-statement scripts) sum up.  Spans nest arbitrarily deep and the
whole tree serializes with :meth:`Span.to_dict` for the structured
EXPLAIN output.

The tracer is plain per-object state — no module globals — so any number
of queries can trace concurrently.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed region; ``seconds`` is inclusive of child spans.

    ``start`` is a raw ``time.perf_counter()`` reading — meaningless on
    its own, meaningful as an offset from the query's first span (the
    query-local clock trace events share; see
    :mod:`repro.observability.trace`)."""

    name: str
    start: float = 0.0
    seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self, t0: float | None = None) -> dict:
        """Serialize the subtree; ``t0`` (the query's first span start)
        turns the raw perf-counter ``start`` into a timeline offset so
        serialized span trees can be placed on the same clock as trace
        events."""
        node: dict = {"name": self.name, "seconds": self.seconds}
        if t0 is not None:
            node["start"] = self.start - t0
        if self.children:
            node["children"] = [c.to_dict(t0) for c in self.children]
        return node


class Tracer:
    """Collects a tree of spans for one query (or one script)."""

    __slots__ = ("spans", "_stack")

    def __init__(self):
        #: completed (or in-flight) top-level spans, in start order
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        span = Span(name, time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.seconds += time.perf_counter() - span.start
            self._stack.pop()

    def phase_seconds(self) -> dict[str, float]:
        """Top-level span durations aggregated by name."""
        out: dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.seconds
        return out

    def total_seconds(self) -> float:
        return sum(span.seconds for span in self.spans)

    def t0(self) -> float | None:
        """The query's clock origin: the first span's start (None when
        nothing was traced)."""
        return self.spans[0].start if self.spans else None

    def to_list(self) -> list[dict]:
        t0 = self.t0()
        return [span.to_dict(t0) for span in self.spans]
