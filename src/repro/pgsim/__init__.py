"""repro.pgsim — a row-store, tuple-at-a-time SQL engine.

The PostgreSQL/MobilityDB stand-in of the reproduction: same SQL dialect
and extension surface as :mod:`repro.quack`, but heap row storage, a
Volcano executor, and GiST/B-tree indexes — the baseline architecture the
paper benchmarks MobilityDuck against.
"""

from .database import RowConnection, RowDatabase
from .indexes import BTreeIndex, GistIndex, value_to_rect
from .table import RowCatalog, RowTable

__all__ = [
    "BTreeIndex",
    "GistIndex",
    "RowCatalog",
    "RowConnection",
    "RowDatabase",
    "RowTable",
    "value_to_rect",
]
