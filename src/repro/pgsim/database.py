"""The PostgreSQL-like baseline database (the MobilityDB stand-in).

Shares the SQL front end, binder, plan and optimizer with quack but stores
rows in heaps and executes tuple-at-a-time (see :mod:`.executor`).  GiST
and B-tree index types are built in, mirroring PostgreSQL; without
``CREATE INDEX`` every predicate is a sequential scan.
"""

from __future__ import annotations

import time
from typing import Any

from ..analysis.config import verification_enabled
from ..observability import (
    REGISTRY,
    QueryLog,
    QueryRecord,
    QueryStatistics,
    TraceCollector,
    activate,
    collection_enabled,
    current_stats,
    maybe_span,
)
from ..observability.trace import write_trace
from ..quack.binder import Binder, BinderContext, _NOT_CONSTANT, fold_constant
from ..quack.builtins import register_builtins
from ..quack.catalog import IndexType
from ..quack.database import DatabaseConfig, Result
from ..quack.errors import BinderError, CatalogError, ExecutionError, QuackError
from ..quack.functions import FunctionRegistry
from ..quack.optimizer import optimize
from ..quack.plan import LogicalMaterializedCTE, LogicalOperator
from ..quack.sql import ast, parse_sql
from ..quack.types import LogicalType, TypeRegistry
from .executor import RowContext, eval_row, execute_rows
from .indexes import BTreeIndex, GistIndex
from .table import RowCatalog, RowTable


class RowDatabase:
    """An in-process row-store database instance."""

    def __init__(self):
        self.types = TypeRegistry()
        self.functions = FunctionRegistry()
        self.catalog = RowCatalog()
        self.config = DatabaseConfig()
        self.loaded_extensions: list[str] = []
        register_builtins(self.functions)
        self._register_builtin_indexes()

    def _register_builtin_indexes(self) -> None:
        self.config.index_types.register(
            IndexType(
                "GIST",
                lambda name, table, column, database: GistIndex(
                    name, table, column
                ),
            )
        )
        self.config.index_types.register(
            IndexType(
                "BTREE",
                lambda name, table, column, database: BTreeIndex(
                    name, table, column
                ),
            )
        )

    def connect(self) -> "RowConnection":
        return RowConnection(self)

    def load_extension(self, extension) -> None:
        extension.load(self)
        name = getattr(extension, "EXTENSION_NAME", None) or getattr(
            extension, "__name__", type(extension).__name__
        )
        self.loaded_extensions.append(name)


class RowConnection:
    """A connection to a row database; executes SQL statements."""

    def __init__(self, database: RowDatabase):
        self.database = database
        #: statistics of the most recent :meth:`execute` call
        self.last_query_stats: QueryStatistics | None = None
        #: rolling log of completed queries (``SET log_min_duration``
        #: tunes the slow-query threshold)
        self._query_log = QueryLog()
        #: cost-based optimizer kill switch (``SET cbo = on|off``)
        self._cbo = True

    def execute(self, sql: str) -> Result:
        if not collection_enabled():
            return self._execute_script(sql, None)
        stats = QueryStatistics()
        stats.trace = TraceCollector()
        self.last_query_stats = stats
        start = time.perf_counter()
        error: str | None = None
        result = Result()
        try:
            with activate(stats):
                result = self._execute_script(sql, stats)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._finish_query(
                sql, stats, time.perf_counter() - start, result, error
            )
        result.query_stats = stats
        return result

    def _finish_query(self, sql: str, stats: QueryStatistics,
                      seconds: float, result: Result,
                      error: str | None) -> None:
        """Record the finished query in the log and the global registry."""
        if stats.trace is not None and len(stats.trace):
            stats.bump("trace.events", len(stats.trace))
        record = QueryRecord(
            sql=sql,
            seconds=seconds,
            rows=len(result.rows) if error is None else None,
            engine="pgsim",
            workers=1,
            error=error,
            phases=stats.phase_seconds(),
            counters=dict(stats.counters),
        )
        if self._query_log.record(record):
            stats.bump("querylog.records")
        else:
            stats.bump("querylog.suppressed")
        REGISTRY.absorb(stats)

    def query_log(self, n: int | None = None,
                  format: str = "records"):
        """The connection's rolling log of completed queries.

        ``format="records"`` returns :class:`QueryRecord` objects
        (oldest first), ``"text"`` a rendered log, ``"json"`` a JSON
        string.  ``n`` limits to the most recent n queries."""
        if format == "records":
            return self._query_log.records(n)
        if format == "text":
            return self._query_log.format_text(n)
        if format == "json":
            return self._query_log.to_json(n)
        raise QuackError(f"unsupported query_log format {format!r}")

    def export_trace(self, path: str) -> dict:
        """Write the last executed query's timeline to ``path`` as
        Chrome trace-event JSON (Perfetto-loadable); returns the dict."""
        if self.last_query_stats is None:
            raise QuackError(
                "no traced query: execute one with collection enabled "
                "before export_trace"
            )
        return write_trace(self.last_query_stats, path,
                           meta={"engine": "pgsim"})

    def _execute_script(self, sql: str,
                        stats: QueryStatistics | None) -> Result:
        with maybe_span(stats, "parse"):
            statements = parse_sql(sql)
        result = Result()
        for stmt in statements:
            result = self._execute_statement(stmt)
        return result

    def sql(self, sql: str) -> Result:
        return self.execute(sql)

    def explain(self, sql: str) -> str:
        result = self.execute(f"EXPLAIN {sql}")
        return result.plan_text or ""

    def explain_analyze(self, sql: str, format: str = "text"):
        """Profile one SELECT; ``format="json"`` returns the structured
        tree (same schema as the columnar engine's), ``format="trace"``
        the execution timeline as Chrome trace-event JSON."""
        if format not in ("text", "json", "trace"):
            raise QuackError(f"unsupported explain format {format!r}")
        from ..quack.profiler import PlanProfiler

        stats = QueryStatistics()
        stats.trace = TraceCollector()
        self.last_query_stats = stats
        profiler = PlanProfiler()
        with activate(stats):
            with stats.tracer.span("parse"):
                statements = parse_sql(sql)
            if len(statements) != 1:
                raise BinderError(
                    "explain_analyze expects exactly one statement"
                )
            stmt = statements[0]
            if isinstance(stmt, ast.ExplainStatement):
                stmt = stmt.inner
            if not isinstance(stmt, (ast.SelectStatement,
                                     ast.CompoundSelect)):
                raise BinderError("EXPLAIN supports SELECT statements")
            plan = self._plan_select(stmt)
            ctx = RowContext(stats=stats, profiler=profiler)
            with stats.tracer.span("execute"):
                for _ in execute_rows(plan, ctx):
                    stats.bump("executor.rows_returned")
        if stats.trace is not None and len(stats.trace):
            stats.bump("trace.events", len(stats.trace))
        REGISTRY.absorb(stats)
        if format == "json":
            out = profiler.to_dict(plan, stats)
            out["engine"] = "pgsim"
            return out
        if format == "trace":
            return profiler.trace_dict(plan, stats, engine="pgsim")
        return profiler.render(plan, stats)

    # -- statement dispatch -------------------------------------------------------

    def _execute_statement(self, stmt: ast.Statement) -> Result:
        if isinstance(stmt, (ast.SelectStatement, ast.CompoundSelect)):
            plan = self._plan_select(stmt)
            return self._run_plan(plan)
        if isinstance(stmt, ast.ExplainStatement):
            inner = stmt.inner
            if not isinstance(inner, (ast.SelectStatement,
                                      ast.CompoundSelect)):
                raise BinderError("EXPLAIN supports SELECT statements")
            plan = self._plan_select(inner)
            if stmt.analyze:
                from ..quack.profiler import PlanProfiler

                profiler = PlanProfiler()
                stats = current_stats()
                ctx = RowContext(stats=stats, profiler=profiler)
                with maybe_span(stats, "execute"):
                    for _ in execute_rows(plan, ctx):
                        pass
                text = profiler.render(plan, stats)
            else:
                text = plan.explain()
            return Result(["explain"], [], [(text,)], plan_text=text)
        if isinstance(stmt, ast.CreateTableStatement):
            return self._execute_create_table(stmt)
        if isinstance(stmt, ast.CreateIndexStatement):
            table = self.database.catalog.get_table(stmt.table)
            index_type = self.database.config.index_types.lookup(stmt.using)
            index = index_type.create_instance(
                name=stmt.name,
                table=table,
                column=stmt.column,
                database=self.database,
            )
            self.database.catalog.add_index(index)
            return Result()
        if isinstance(stmt, ast.InsertStatement):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.UpdateStatement):
            return self._execute_update(stmt)
        if isinstance(stmt, ast.DeleteStatement):
            return self._execute_delete(stmt)
        if isinstance(stmt, ast.DropStatement):
            if stmt.kind == "table":
                self.database.catalog.drop_table(stmt.name, stmt.if_exists)
                return Result()
            index = self.database.catalog.indexes.pop(stmt.name.lower(), None)
            if index is None and not stmt.if_exists:
                raise CatalogError(f"index {stmt.name!r} does not exist")
            if index is not None:
                index.table.indexes.remove(index)
            return Result()
        if isinstance(stmt, ast.AnalyzeStatement):
            return self._execute_analyze(stmt)
        if isinstance(stmt, ast.SetStatement):
            return self._execute_set(stmt)
        if isinstance(stmt, ast.ShowStatement):
            return self._execute_show(stmt)
        raise QuackError(f"unsupported statement {type(stmt).__name__}")

    def _execute_analyze(self, stmt: ast.AnalyzeStatement) -> Result:
        """Collect optimizer statistics for one table (or all tables)."""
        from ..quack.stats import analyze_table

        catalog = self.database.catalog
        if stmt.table is not None:
            tables = [catalog.get_table(stmt.table)]
        else:
            tables = list(catalog.tables.values())
        rows = []
        for table in tables:
            table.stats = analyze_table(table)
            rows.append(
                (table.name, table.stats.row_count,
                 len(table.stats.columns))
            )
        return Result(["table", "rows", "columns"], [], rows)

    def _execute_set(self, stmt: ast.SetStatement) -> Result:
        name = stmt.name.lower()
        if name == "cbo":
            from ..quack.database import _parse_on_off

            self._cbo = _parse_on_off(stmt.value, "cbo")
            return Result()
        if name != "log_min_duration":
            # no morsel pool here — the row engine is single-threaded
            raise QuackError(f"unknown setting {stmt.name!r}")
        context = BinderContext(
            self.database.catalog, self.database.functions,
            self.database.types,
        )
        value = fold_constant(Binder(context).bind_expr(stmt.value))
        if (
            value is _NOT_CONSTANT
            or isinstance(value, bool)
            or not isinstance(value, (int, float))
        ):
            raise QuackError(
                "SET log_min_duration expects a number of milliseconds"
            )
        self._query_log.min_duration_ms = float(value)
        return Result()

    def _execute_show(self, stmt: ast.ShowStatement) -> Result:
        name = stmt.name.lower()
        if name == "cbo":
            return Result([name], [], [("on" if self._cbo else "off",)])
        if name != "log_min_duration":
            raise QuackError(f"unknown setting {stmt.name!r}")
        return Result(
            [name], [], [(self._query_log.min_duration_ms,)]
        )

    def _plan_select(self, stmt: ast.SelectStatement) -> LogicalOperator:
        stats = current_stats()
        context = BinderContext(
            self.database.catalog, self.database.functions,
            self.database.types,
        )
        binder = Binder(context)
        with maybe_span(stats, "bind"):
            plan = binder.bind_select(stmt)
            if context.all_ctes:
                plan = LogicalMaterializedCTE(context.all_ctes, plan)
        if verification_enabled():
            from ..analysis.verifier import verify_planned

            verify_planned(plan, self.database.functions, stats, "bind")
        with maybe_span(stats, "optimize"):
            plan = optimize(plan, stats, cbo=self._cbo)
        if verification_enabled():
            from ..analysis.verifier import verify_planned

            verify_planned(plan, self.database.functions, stats, "optimize")
        return plan

    def _run_plan(self, plan: LogicalOperator) -> Result:
        stats = current_stats()
        ctx = RowContext(stats=stats)
        with maybe_span(stats, "execute"):
            rows = list(execute_rows(plan, ctx))
        if stats is not None:
            stats.bump("executor.rows_returned", len(rows))
        return Result(plan.output_names(), plan.output_types(), rows)

    # -- DDL / DML ----------------------------------------------------------------

    def _execute_create_table(self, stmt: ast.CreateTableStatement) -> Result:
        if stmt.if_not_exists and self.database.catalog.has_table(stmt.name):
            return Result()
        if stmt.as_query is not None:
            plan = self._plan_select(stmt.as_query)
            result = self._run_plan(plan)
            table = RowTable(
                stmt.name,
                list(zip(result.column_names, result.column_types)),
            )
            table.append_rows(result.rows)
            self.database.catalog.create_table(table, stmt.or_replace)
            return Result()
        columns = [
            (col.name, self.database.types.lookup(col.type_name))
            for col in stmt.columns
        ]
        if stmt.or_replace:
            self.database.catalog.drop_table(stmt.name, if_exists=True)
        self.database.catalog.create_table(
            RowTable(stmt.name, columns), stmt.or_replace
        )
        return Result()

    def _execute_insert(self, stmt: ast.InsertStatement) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        if stmt.query is not None:
            plan = self._plan_select(stmt.query)
            source_rows = self._run_plan(plan).rows
        else:
            source_rows = []
            context = BinderContext(
                self.database.catalog, self.database.functions,
                self.database.types,
            )
            binder = Binder(context)
            for value_row in stmt.values or []:
                row = []
                for expr in value_row:
                    bound = binder.bind_expr(expr)
                    value = fold_constant(bound)
                    if value is _NOT_CONSTANT:
                        raise BinderError(
                            "INSERT VALUES must be constant expressions"
                        )
                    row.append(value)
                source_rows.append(tuple(row))
        if stmt.columns is not None:
            positions = [table.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(table.num_columns))
        full_rows = []
        for row in source_rows:
            if len(row) != len(positions):
                raise ExecutionError(
                    f"INSERT expected {len(positions)} values, got {len(row)}"
                )
            full = [None] * table.num_columns
            for pos, value in zip(positions, row):
                full[pos] = self._coerce_for_storage(
                    value, table.column_types[pos]
                )
            full_rows.append(tuple(full))
        table.append_rows(full_rows)
        return Result(["Count"], [], [(len(full_rows),)])

    def _coerce_for_storage(self, value: Any, ltype: LogicalType) -> Any:
        if value is None:
            return None
        if isinstance(value, str) and (ltype.is_user or
                                       ltype.physical == "int64"):
            cast = self.database.functions.find_cast(
                self.database.types.lookup("VARCHAR"), ltype
            )
            if cast is not None:
                return cast.apply(value)
        if ltype.physical == "float64" and isinstance(value, int):
            return float(value)
        return value

    def _bind_over_table(self, table: RowTable, expr: ast.Expr):
        context = BinderContext(
            self.database.catalog, self.database.functions,
            self.database.types,
        )
        binder = Binder(context)
        for name, ltype in zip(table.column_names, table.column_types):
            binder.scope.add(table.name, name, ltype)
        return binder.bind_expr(expr), binder

    def _execute_update(self, stmt: ast.UpdateStatement) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        bound_assignments = []
        for column, expr in stmt.assignments:
            bound, binder = self._bind_over_table(table, expr)
            target_type = table.column_types[table.column_index(column)]
            if bound.ltype != target_type:
                bound = binder.bind_cast(bound, target_type.name)
            bound_assignments.append((table.column_index(column), bound))
        where_bound = None
        if stmt.where is not None:
            where_bound, _ = self._bind_over_table(table, stmt.where)
        ctx = RowContext()
        updated = 0
        for rid, row in list(table.scan()):
            if where_bound is not None and not eval_row(where_bound, row, ctx):
                continue
            new_row = list(row)
            for col_idx, bound in bound_assignments:
                new_row[col_idx] = eval_row(bound, row, ctx)
            table.update_row(rid, tuple(new_row))
            updated += 1
        if updated:
            table.rebuild_indexes()
        return Result(["Count"], [], [(updated,)])

    def _execute_delete(self, stmt: ast.DeleteStatement) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        where_bound = None
        if stmt.where is not None:
            where_bound, _ = self._bind_over_table(table, stmt.where)
        ctx = RowContext()
        to_delete = [
            rid
            for rid, row in table.scan()
            if where_bound is None or eval_row(where_bound, row, ctx)
        ]
        deleted = table.delete_rows(to_delete)
        return Result(["Count"], [], [(deleted,)])
