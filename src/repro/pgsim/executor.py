"""Tuple-at-a-time (Volcano) executor for the row-store baseline.

Interprets the same bound plans as :mod:`repro.quack.executor`, but one row
at a time through a tree-walking expression interpreter — the execution
model of PostgreSQL that the paper measures MobilityDB against.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from ..quack.errors import ExecutionError
from ..quack.keys import hashable_key as _hashable, sort_comparator
from .table import Varlena
from ..quack.plan import (
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConjunction,
    BoundConstant,
    BoundExpr,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundNot,
    BoundParameterRef,
    BoundSubqueryExpr,
    LogicalAggregate,
    LogicalCTERef,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalIndexScan,
    LogicalJoin,
    LogicalLimit,
    LogicalMaterializedCTE,
    LogicalOperator,
    LogicalProject,
    LogicalSetOp,
    LogicalSort,
    LogicalTableFunction,
)


class RowContext:
    """Per-query state (CTE results, correlated parameters) plus the
    observability scope (statistics + optional plan profiler).

    Like quack's ``ExecutionContext``, profiling is carried by the
    context — child contexts inherit it, module state is never touched,
    so concurrent profiled queries cannot corrupt each other."""

    def __init__(self, parent: "RowContext | None" = None,
                 stats=None, profiler=None):
        self.parent = parent
        self.cte_results: dict[int, list[tuple]] = (
            parent.cte_results if parent else {}
        )
        self.cte_plans: dict[int, LogicalOperator] = (
            parent.cte_plans if parent else {}
        )
        self.params: tuple = parent.params if parent else ()
        self.subquery_cache: dict[tuple, list[tuple]] = (
            parent.subquery_cache if parent else {}
        )
        self.stats = stats if stats is not None else (
            parent.stats if parent else None
        )
        self.profiler = profiler if profiler is not None else (
            parent.profiler if parent else None
        )
        #: the query's shared TraceCollector (timeline events; the row
        #: engine is single-threaded, so everything lands on one lane)
        self.trace = parent.trace if parent is not None else (
            stats.trace if stats is not None else None
        )

    def child_with_params(self, params: tuple) -> "RowContext":
        ctx = RowContext(self)
        ctx.params = params
        return ctx


# ---------------------------------------------------------------------------
# Row expression interpreter
# ---------------------------------------------------------------------------


def eval_row(expr: BoundExpr, row: tuple, ctx: RowContext) -> Any:
    if isinstance(expr, BoundConstant):
        return expr.value
    if isinstance(expr, BoundColumnRef):
        value = row[expr.index]
        if isinstance(value, Varlena):
            # Detoast per datum access, like PostgreSQL (see pgsim.table).
            return value.load()
        return value
    if isinstance(expr, BoundParameterRef):
        return ctx.params[expr.param_index]
    if isinstance(expr, BoundFunction):
        args = [eval_row(a, row, ctx) for a in expr.args]
        return expr.function.evaluate_row(args)
    if isinstance(expr, BoundCast):
        value = eval_row(expr.child, row, ctx)
        if value is None:
            return None
        if expr.cast is not None:
            return expr.cast.apply(value)
        physical = expr.ltype.physical
        if physical == "int64":
            return int(round(value)) if isinstance(value, float) else int(value)
        if physical == "float64":
            return float(value)
        if physical == "bool":
            return bool(value)
        return value
    if isinstance(expr, BoundConjunction):
        if expr.op == "AND":
            saw_null = False
            for arg in expr.args:
                value = eval_row(arg, row, ctx)
                if value is None:
                    saw_null = True
                elif not value:
                    return False
            return None if saw_null else True
        saw_null = False
        for arg in expr.args:
            value = eval_row(arg, row, ctx)
            if value is None:
                saw_null = True
            elif value:
                return True
        return None if saw_null else False
    if isinstance(expr, BoundNot):
        value = eval_row(expr.child, row, ctx)
        return None if value is None else (not value)
    if isinstance(expr, BoundIsNull):
        value = eval_row(expr.child, row, ctx)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, BoundInList):
        operand = eval_row(expr.operand, row, ctx)
        if operand is None:
            return None
        found = any(
            expr.eq_function.evaluate_row(
                [operand, eval_row(item, row, ctx)]
            )
            for item in expr.items
        )
        return (not found) if expr.negated else found
    if isinstance(expr, BoundCase):
        for cond, result in expr.branches:
            if eval_row(cond, row, ctx):
                return eval_row(result, row, ctx)
        if expr.else_result is not None:
            return eval_row(expr.else_result, row, ctx)
        return None
    if isinstance(expr, BoundSubqueryExpr):
        return _eval_subquery_row(expr, row, ctx)
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _eval_subquery_row(expr: BoundSubqueryExpr, row: tuple,
                       ctx: RowContext) -> Any:
    params = tuple(
        eval_row(p, row, ctx) for p in expr.outer_params_exprs
    )
    key = (id(expr.plan), params)
    rows = ctx.subquery_cache.get(key)
    if rows is None:
        sub_ctx = ctx.child_with_params(params)
        rows = list(execute_rows(expr.plan, sub_ctx))
        ctx.subquery_cache[key] = rows
    if expr.kind == "scalar":
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        return rows[0][0]
    if expr.kind == "exists":
        value = bool(rows)
        return (not value) if expr.negated else value
    operand = eval_row(expr.operand, row, ctx)
    if expr.kind == "in":
        if operand is None:
            return None
        found = False
        saw_null = False
        for sub_row in rows:
            if sub_row[0] is None:
                saw_null = True
            elif expr.comparison.evaluate_row([operand, sub_row[0]]):
                found = True
                break
        if expr.negated:
            if found:
                return False
            return None if saw_null else True
        if found:
            return True
        return None if saw_null else False
    # quantified ALL / ANY
    if operand is None:
        return None if rows else (expr.quantifier == "ALL")
    results = [
        None if sub_row[0] is None
        else bool(expr.comparison.evaluate_row([operand, sub_row[0]]))
        for sub_row in rows
    ]
    if expr.quantifier == "ALL":
        if any(r is False for r in results):
            return False
        if any(r is None for r in results):
            return None
        return True
    if any(r is True for r in results):
        return True
    if any(r is None for r in results):
        return None
    return False


# ---------------------------------------------------------------------------
# Volcano operators
# ---------------------------------------------------------------------------


def execute_rows(op: LogicalOperator, ctx: RowContext) -> Iterator[tuple]:
    """Execute one operator; instrumented when the context carries a
    profiler (see :class:`RowContext`)."""
    if ctx.profiler is None:
        return _execute_operator(op, ctx)
    return _execute_profiled(op, ctx)


def _execute_profiled(op: LogicalOperator,
                      ctx: RowContext) -> Iterator[tuple]:
    stats = ctx.profiler.stats_for(op)
    stats.invocations += 1
    rows_before = stats.rows
    opened = time.perf_counter()
    start = opened
    try:
        for row in _execute_operator(op, ctx):
            stats.rows += 1
            stats.seconds += time.perf_counter() - start
            yield row
            start = time.perf_counter()
        stats.seconds += time.perf_counter() - start
    except GeneratorExit:
        stats.seconds += time.perf_counter() - start
        raise
    finally:
        # One timeline event per invocation lifetime (not per row): the
        # Volcano loop would otherwise emit millions of micro-events.
        if ctx.trace is not None:
            ctx.trace.emit(
                op._explain_label(), "operator", opened,
                time.perf_counter() - opened,
                rows=stats.rows - rows_before,
            )


def _execute_operator(op: LogicalOperator, ctx: RowContext) -> Iterator[tuple]:
    if isinstance(op, LogicalMaterializedCTE):
        for cte_id, _, plan in op.ctes:
            ctx.cte_plans[cte_id] = plan
        yield from execute_rows(op.child, ctx)
        return
    if isinstance(op, LogicalGet):
        for _, row in op.table.scan():
            yield row
        return
    if isinstance(op, LogicalIndexScan):
        row_ids = op.index.probe(op.op_name, op.constant)
        if row_ids is None:
            raise ExecutionError(
                f"index {op.index.name} cannot serve {op.op_name}"
            )
        if ctx.stats is not None:
            ctx.stats.bump("executor.index_scans")
            ctx.stats.bump("executor.index_candidates", len(row_ids))
        if ctx.profiler is not None:
            ctx.profiler.annotate(op, "probes")
            ctx.profiler.annotate(op, "candidates", len(row_ids))
        for rid in sorted(row_ids):
            row = op.table.fetch(rid)
            if row is not None:
                yield row
        return
    if isinstance(op, LogicalTableFunction):
        if op.name == "single_row":
            yield (0,)
            return
        args = [int(a) for a in op.args]
        if len(args) == 1:
            start, stop, step = 1, args[0], 1
        elif len(args) == 2:
            start, stop, step = args[0], args[1], 1
        else:
            start, stop, step = args
        if op.name == "range":
            stop -= 1
        current = start
        while (step > 0 and current <= stop) or (step < 0 and current >= stop):
            yield (current,)
            current += step
        return
    if isinstance(op, LogicalCTERef):
        cached = ctx.cte_results.get(op.cte_id)
        if cached is None:
            plan = ctx.cte_plans.get(op.cte_id)
            if plan is None:
                raise ExecutionError(f"CTE {op.name!r} was not materialized")
            cached = list(execute_rows(plan, ctx))
            ctx.cte_results[op.cte_id] = cached
        yield from cached
        return
    if isinstance(op, LogicalFilter):
        for row in execute_rows(op.child, ctx):
            if eval_row(op.condition, row, ctx):
                yield row
        return
    if isinstance(op, LogicalProject):
        for row in execute_rows(op.child, ctx):
            yield tuple(eval_row(e, row, ctx) for e in op.exprs)
        return
    if isinstance(op, LogicalJoin):
        yield from _execute_join(op, ctx)
        return
    if isinstance(op, LogicalAggregate):
        yield from _execute_aggregate(op, ctx)
        return
    if isinstance(op, LogicalSort):
        yield from _execute_sort(op, ctx)
        return
    if isinstance(op, LogicalDistinct):
        seen: set = set()
        for row in execute_rows(op.child, ctx):
            key = tuple(_hashable(v) for v in row)
            if key not in seen:
                seen.add(key)
                yield row
        return
    if isinstance(op, LogicalSetOp):
        left_rows = list(execute_rows(op.left, ctx))
        right_rows = list(execute_rows(op.right, ctx))
        if op.kind == "union" and op.all:
            yield from left_rows
            yield from right_rows
            return
        right_keys = {
            tuple(_hashable(v) for v in row) for row in right_rows
        }
        seen = set()
        if op.kind == "union":
            for row in left_rows + right_rows:
                key = tuple(_hashable(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    yield row
            return
        for row in left_rows:
            key = tuple(_hashable(v) for v in row)
            if key in seen:
                continue
            if op.kind == "except" and key not in right_keys:
                seen.add(key)
                yield row
            elif op.kind == "intersect" and key in right_keys:
                seen.add(key)
                yield row
        return
    if isinstance(op, LogicalLimit):
        remaining = op.limit
        to_skip = op.offset
        for row in execute_rows(op.child, ctx):
            if to_skip:
                to_skip -= 1
                continue
            if remaining is not None:
                if remaining <= 0:
                    return
                remaining -= 1
            yield row
        return
    raise ExecutionError(f"cannot execute {type(op).__name__}")


def _execute_join(op: LogicalJoin, ctx: RowContext) -> Iterator[tuple]:
    right_width = len(op.right.output_types())
    null_pad = (None,) * right_width

    if op.index_probe is not None and not op.equi_keys:
        # Index nested-loop join: per left row, probe the right table's
        # index with the evaluated left expression (GiST join strategy).
        index, op_name, left_expr = op.index_probe
        table = index.table
        qstats = ctx.stats
        for l_row in execute_rows(op.left, ctx):
            probe_value = eval_row(left_expr, l_row, ctx)
            matched = False
            if probe_value is not None:
                if qstats is not None:
                    qstats.bump("executor.join_index_probes")
                if ctx.profiler is not None:
                    ctx.profiler.annotate(op, "index_probes")
                ids = index.probe(op_name, probe_value)
                for rid in sorted(ids or ()):
                    r_row = table.fetch(rid)
                    if r_row is None:
                        continue
                    combined = l_row + r_row
                    if op.residual is not None and not eval_row(
                        op.residual, combined, ctx
                    ):
                        continue
                    matched = True
                    yield combined
            if op.join_type == "left" and not matched:
                yield l_row + null_pad
        return

    right_rows = list(execute_rows(op.right, ctx))

    if op.equi_keys:
        # Hash join, one probe per row (PostgreSQL-style).  Keys go
        # through the shared ``hashable_key`` canonicalization so NaN
        # and -0.0 keys match exactly like the columnar engine.
        table: dict[tuple, list[tuple]] = {}
        for r_row in right_rows:
            key = tuple(
                eval_row(right_key, r_row, ctx)
                for _, right_key in op.equi_keys
            )
            if any(k is None for k in key):
                continue
            table.setdefault(
                tuple(_hashable(k) for k in key), []
            ).append(r_row)
        for l_row in execute_rows(op.left, ctx):
            key = tuple(
                eval_row(left_key, l_row, ctx)
                for left_key, _ in op.equi_keys
            )
            matched = False
            if not any(k is None for k in key):
                for r_row in table.get(
                    tuple(_hashable(k) for k in key), ()
                ):
                    combined = l_row + r_row
                    if op.residual is not None and not eval_row(
                        op.residual, combined, ctx
                    ):
                        continue
                    matched = True
                    yield combined
            if op.join_type == "left" and not matched:
                yield l_row + null_pad
        return

    for l_row in execute_rows(op.left, ctx):
        matched = False
        for r_row in right_rows:
            combined = l_row + r_row
            if op.residual is not None and not eval_row(
                op.residual, combined, ctx
            ):
                continue
            matched = True
            yield combined
        if op.join_type == "left" and not matched:
            yield l_row + null_pad


def _execute_aggregate(op: LogicalAggregate,
                       ctx: RowContext) -> Iterator[tuple]:
    groups: dict[tuple, list] = {}
    group_values: dict[tuple, tuple] = {}
    distinct_seen: dict[tuple, list[set]] = {}
    for row in execute_rows(op.child, ctx):
        key_values = tuple(eval_row(g, row, ctx) for g in op.groups)
        key = tuple(_hashable(v) for v in key_values)
        state = groups.get(key)
        if state is None:
            state = [spec.function.init() for spec in op.aggregates]
            groups[key] = state
            group_values[key] = key_values
            distinct_seen[key] = [set() for _ in op.aggregates]
        for a, spec in enumerate(op.aggregates):
            values = [eval_row(arg, row, ctx) for arg in spec.args]
            if values and not spec.function.accepts_null and any(
                v is None for v in values
            ):
                continue
            if spec.distinct:
                marker = tuple(_hashable(v) for v in values)
                if marker in distinct_seen[key][a]:
                    continue
                distinct_seen[key][a].add(marker)
            state[a] = spec.function.step(state[a], *values)
    if not groups and not op.groups:
        groups[()] = [spec.function.init() for spec in op.aggregates]
        group_values[()] = ()
    for key, state in groups.items():
        finals = tuple(
            spec.function.final(s) for spec, s in zip(op.aggregates, state)
        )
        yield group_values[key] + finals


def _execute_sort(op: LogicalSort, ctx: RowContext) -> Iterator[tuple]:
    rows = []
    for row in execute_rows(op.child, ctx):
        keys = tuple(eval_row(k, row, ctx) for k, _, _ in op.keys)
        rows.append((row, keys))
    # Shared with quack's sort fallback so both engines agree on NULL
    # placement and NaN-sorts-greatest semantics.
    comparator = sort_comparator([(asc, nf) for _, asc, nf in op.keys])
    for row, _ in sorted(rows, key=comparator):
        yield row
