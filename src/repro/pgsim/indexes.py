"""GiST-like and B-tree indexes for the row-store baseline.

MobilityDB accelerates spatiotemporal predicates with GiST indexes over the
bounding boxes of temporal values; the baseline reproduces that: a GIST
index extracts an (x, y, t) rectangle from each value (stbox, tgeompoint,
tstzspan, geometry) into an R-tree and serves ``&&`` / ``@>`` / ``<@``
probes.  BTREE serves equality on scalar columns.
"""

from __future__ import annotations

from typing import Any

from .. import geo
from ..index import RTree
from ..meos import STBox, Span, SpanSet, Temporal
from ..meos.basetypes import TSTZ
from ..observability import count as _count
from ..quack.errors import ExecutionError
from .table import detoast

_UNBOUNDED = 4e18  # sentinel half-range for missing dimensions


def value_to_rect(value: Any) -> tuple[float, ...] | None:
    """Extract a 3D rectangle (x, y, t) from an indexable value."""
    value = detoast(value)
    if value is None:
        return None
    if isinstance(value, STBox):
        if value.has_x:
            xmin, ymin, xmax, ymax = (
                value.xmin, value.ymin, value.xmax, value.ymax,
            )
        else:
            xmin = ymin = -_UNBOUNDED
            xmax = ymax = _UNBOUNDED
        if value.has_t:
            tmin, tmax = float(value.tspan.lower), float(value.tspan.upper)
        else:
            tmin, tmax = -_UNBOUNDED, _UNBOUNDED
        return (xmin, ymin, tmin, xmax, ymax, tmax)
    if isinstance(value, Temporal):
        box = value.stbox() if value.ttype.name.startswith("tgeo") else None
        if box is not None:
            return value_to_rect(box)
        span = value.tstzspan()
        return (
            -_UNBOUNDED, -_UNBOUNDED, float(span.lower),
            _UNBOUNDED, _UNBOUNDED, float(span.upper),
        )
    if isinstance(value, Span) and value.basetype is TSTZ:
        return (
            -_UNBOUNDED, -_UNBOUNDED, float(value.lower),
            _UNBOUNDED, _UNBOUNDED, float(value.upper),
        )
    if isinstance(value, SpanSet) and value.basetype is TSTZ:
        span = value.to_span()
        return (
            -_UNBOUNDED, -_UNBOUNDED, float(span.lower),
            _UNBOUNDED, _UNBOUNDED, float(span.upper),
        )
    if isinstance(value, geo.Geometry):
        if value.is_empty():
            return None
        xmin, ymin, xmax, ymax = value.bounds()
        return (xmin, ymin, -_UNBOUNDED, xmax, ymax, _UNBOUNDED)
    return None


class GistIndex:
    """R-tree over value bounding boxes (the MobilityDB GiST analogue)."""

    SUPPORTED_OPS = ("&&", "@>", "<@")
    type_name = "GIST"

    def __init__(self, name: str, table, column: str):
        self.name = name
        self.table = table
        self.column = column
        self._column_index = table.column_index(column)
        self._tree = RTree(dimensions=3)
        for rid, row in table.scan():
            self.insert_row(row, rid)

    def insert_row(self, row: tuple, row_id: int) -> None:
        rect = value_to_rect(row[self._column_index])
        if rect is not None:
            self._tree.insert(rect, row_id)

    def rebuild(self, table) -> None:
        self._tree = RTree(dimensions=3)
        for rid, row in table.scan():
            self.insert_row(row, rid)

    def matches(self, op_name: str, column_name: str, constant: Any) -> bool:
        if column_name.lower() != self.column.lower():
            return False
        if op_name not in self.SUPPORTED_OPS:
            return False
        if constant is None:  # join probe: operand type unknown until run
            return True
        return value_to_rect(constant) is not None

    def probe(self, op_name: str, constant: Any) -> list[int] | None:
        rect = value_to_rect(constant)
        if rect is None:
            return None
        if op_name in ("&&", "@>", "<@"):
            # The R-tree gives overlap candidates; the engine rechecks the
            # exact predicate, mirroring PostgreSQL's lossy GiST semantics.
            candidates = self._tree.search(rect)
            _count("index.gist.probes")
            _count("index.gist.candidates", len(candidates))
            return candidates
        return None


class BTreeIndex:
    """Sorted map over one scalar column serving equality probes."""

    SUPPORTED_OPS = ("=",)
    type_name = "BTREE"

    def __init__(self, name: str, table, column: str):
        self.name = name
        self.table = table
        self.column = column
        self._column_index = table.column_index(column)
        self._map: dict[Any, list[int]] = {}
        for rid, row in table.scan():
            self.insert_row(row, rid)

    def insert_row(self, row: tuple, row_id: int) -> None:
        value = detoast(row[self._column_index])
        if value is None:
            return
        try:
            self._map.setdefault(value, []).append(row_id)
        except TypeError:
            raise ExecutionError(
                f"unhashable value in BTREE index {self.name!r}"
            ) from None

    def rebuild(self, table) -> None:
        self._map.clear()
        for rid, row in table.scan():
            self.insert_row(row, rid)

    def matches(self, op_name: str, column_name: str, constant: Any) -> bool:
        if column_name.lower() != self.column.lower():
            return False
        return op_name in self.SUPPORTED_OPS

    def probe(self, op_name: str, constant: Any) -> list[int] | None:
        if op_name == "=":
            candidates = list(self._map.get(constant, ()))
            _count("index.btree.probes")
            _count("index.btree.candidates", len(candidates))
            return candidates
        return None
