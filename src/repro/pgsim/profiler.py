"""EXPLAIN ANALYZE for the row engine (per-operator rows + time).

The row engine shares :class:`repro.quack.profiler.PlanProfiler`; the
executor drives it through :class:`~repro.pgsim.executor.RowContext`
(context-scoped, no module-level patching), so nested and concurrent
profiled executions are safe.  Index scans are annotated with probe and
candidate counts, matching the columnar engine's output.  The shared
profiler also serves ``explain_analyze(format="trace")`` here: the row
engine is single-threaded, so its timeline renders as one lane of
nested operator events (see :meth:`PlanProfiler.trace_dict`).
"""

from __future__ import annotations

from ..quack.plan import LogicalOperator
from ..quack.profiler import PlanProfiler
from .executor import RowContext, execute_rows


def execute_rows_profiled(plan: LogicalOperator, ctx: RowContext,
                          profiler: PlanProfiler):
    """Execute a row plan with every operator instrumented."""
    yield from execute_rows(plan, RowContext(ctx, profiler=profiler))
