"""EXPLAIN ANALYZE for the row engine (per-operator rows + time)."""

from __future__ import annotations

import time
from typing import Iterator

from ..quack.plan import LogicalOperator
from ..quack.profiler import PlanProfiler


def execute_rows_profiled(plan: LogicalOperator, ctx, profiler: PlanProfiler):
    """Execute a row plan with every operator instrumented."""
    from . import executor as executor_module

    original = executor_module.execute_rows

    def instrumented(op: LogicalOperator, inner_ctx):
        stats = profiler.stats_for(op)
        stats.invocations += 1

        def wrapped() -> Iterator:
            start = time.perf_counter()
            try:
                for row in original(op, inner_ctx):
                    stats.rows += 1
                    stats.seconds += time.perf_counter() - start
                    yield row
                    start = time.perf_counter()
                stats.seconds += time.perf_counter() - start
            except GeneratorExit:
                stats.seconds += time.perf_counter() - start
                raise

        return wrapped()

    executor_module.execute_rows = instrumented
    try:
        yield from instrumented(plan, ctx)
    finally:
        executor_module.execute_rows = original
