"""Row-oriented storage for the PostgreSQL-like baseline engine.

Tables hold Python row tuples (heap order), the analogue of PostgreSQL's
row store.  The classes duck-type the parts of :class:`repro.quack.catalog`
that the shared binder/optimizer touch (``column_names``, ``column_types``,
``indexes``, ``column_index``).
"""

from __future__ import annotations

import pickle
from typing import Any, Iterator, Sequence

from .. import geo
from ..meos import Set, Span, SpanSet, STBox, TBox, Temporal
from ..observability import count as _count
from ..quack.errors import CatalogError, ExecutionError
from ..quack.types import LogicalType

#: Types stored out-of-line as serialized varlena payloads, like
#: PostgreSQL TOAST. MobilityDB temporal values are exactly such payloads;
#: every datum access in the row engine pays a deserialization, which is
#: the architectural overhead the paper measures against (§2.1, §6.3).
_VARLENA_TYPES = (Temporal, Span, SpanSet, Set, TBox, STBox, geo.Geometry)


class Varlena:
    """A serialized (TOASTed) value inside a heap row."""

    __slots__ = ("blob",)

    def __init__(self, blob: bytes):
        self.blob = blob

    @classmethod
    def wrap(cls, value: Any) -> "Varlena":
        return cls(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def load(self) -> Any:
        """Detoast: deserialize the payload (paid per datum access).

        The per-access deserialization cost is the row engine's
        architectural overhead (§2.1); ``pgsim.detoast`` counts how
        often a query pays it."""
        _count("pgsim.detoast")
        return pickle.loads(self.blob)

    def __repr__(self) -> str:
        return f"<Varlena {len(self.blob)} bytes>"


def toast(value: Any) -> Any:
    """Wrap heavy values for heap storage; scalars stay inline."""
    if isinstance(value, _VARLENA_TYPES):
        return Varlena.wrap(value)
    return value


def detoast(value: Any) -> Any:
    """Unwrap a heap datum (no-op for inline scalars)."""
    if isinstance(value, Varlena):
        return value.load()
    return value


class RowTable:
    """A heap of row tuples."""

    def __init__(self, name: str, columns: list[tuple[str, LogicalType]]):
        if not columns:
            raise CatalogError("a table needs at least one column")
        self.name = name
        self.column_names = [c[0] for c in columns]
        self.column_types = [c[1] for c in columns]
        self.rows: list[tuple] = []
        self._deleted: set[int] = set()
        self.indexes: list = []

    @property
    def num_columns(self) -> int:
        return len(self.column_names)

    def num_rows(self) -> int:
        return len(self.rows) - len(self._deleted)

    def total_rows(self) -> int:
        return len(self.rows)

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.column_names):
            if col.lower() == lowered:
                return i
        raise CatalogError(f"column {name!r} not in table {self.name!r}")

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> list[int]:
        start = len(self.rows)
        for row in rows:
            if len(row) != self.num_columns:
                raise ExecutionError(
                    f"expected {self.num_columns} values, got {len(row)}"
                )
            self.rows.append(tuple(toast(v) for v in row))
        row_ids = list(range(start, len(self.rows)))
        for index in self.indexes:
            for rid in row_ids:
                index.insert_row(self.rows[rid], rid)
        return row_ids

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield (row_id, row) for live rows, heap order."""
        deleted = self._deleted
        for rid, row in enumerate(self.rows):
            if rid not in deleted:
                yield rid, row

    def fetch(self, row_id: int) -> tuple | None:
        if row_id in self._deleted or not 0 <= row_id < len(self.rows):
            return None
        return self.rows[row_id]

    def delete_rows(self, row_ids: Sequence[int]) -> int:
        before = len(self._deleted)
        self._deleted.update(int(r) for r in row_ids)
        return len(self._deleted) - before

    def update_row(self, row_id: int, row: tuple) -> None:
        self.rows[row_id] = tuple(toast(v) for v in row)

    def rebuild_indexes(self) -> None:
        for index in self.indexes:
            index.rebuild(self)


class RowCatalog:
    """Named row tables and their indexes."""

    def __init__(self):
        self.tables: dict[str, RowTable] = {}
        self.indexes: dict[str, Any] = {}

    def create_table(self, table: RowTable, or_replace: bool = False) -> None:
        key = table.name.lower()
        if key in self.tables and not or_replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        table = self.tables.pop(key)
        for index in table.indexes:
            self.indexes.pop(index.name.lower(), None)

    def get_table(self, name: str) -> RowTable:
        found = self.tables.get(name.lower())
        if found is None:
            raise CatalogError(f"table {name!r} does not exist")
        return found

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def add_index(self, index) -> None:
        key = index.name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self.indexes[key] = index
        index.table.indexes.append(index)
