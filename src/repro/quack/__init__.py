"""repro.quack — an embedded, columnar, vectorized SQL engine.

The DuckDB stand-in of the reproduction: in-process execution over NumPy
column vectors, a SQL front end, an optimizer with filter pushdown and
index-scan injection, and an extension API for user types, functions,
casts, and index types (paper §2.4, §3).
"""

from .builtins import register_builtins
from .catalog import Catalog, IndexType, Table, TableIndex
from .database import Connection, Database, Result
from .errors import (
    BinderError,
    CatalogError,
    ConversionError,
    ExecutionError,
    ParserError,
    QuackError,
)
from .extension import ExtensionUtil, make_user_type
from .functions import AggregateFunction, CastFunction, ScalarFunction
from .io import format_table, read_csv, result_to_columns, write_csv
from .persist import load_database, save_database
from .types import (
    ANY,
    BIGINT,
    BLOB,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    INTERVAL,
    LIST,
    TIMESTAMP,
    VARCHAR,
    LogicalType,
)
from .vector import DataChunk, Vector

__all__ = [
    "ANY",
    "AggregateFunction",
    "BIGINT",
    "BLOB",
    "BOOLEAN",
    "BinderError",
    "CastFunction",
    "Catalog",
    "CatalogError",
    "Connection",
    "ConversionError",
    "DATE",
    "DOUBLE",
    "DataChunk",
    "Database",
    "ExecutionError",
    "ExtensionUtil",
    "INTEGER",
    "INTERVAL",
    "IndexType",
    "LIST",
    "LogicalType",
    "ParserError",
    "QuackError",
    "Result",
    "ScalarFunction",
    "TIMESTAMP",
    "Table",
    "TableIndex",
    "VARCHAR",
    "Vector",
    "format_table",
    "load_database",
    "save_database",
    "read_csv",
    "result_to_columns",
    "write_csv",
    "make_user_type",
    "register_builtins",
]
