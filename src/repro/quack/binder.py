"""Binder: resolves names and types, producing a logical plan.

Handles scopes with correlation (subqueries reference outer columns through
positional parameters), CTEs, implicit casts via the function registry, and
aggregate extraction for GROUP BY queries.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

from .catalog import Catalog
from .errors import BinderError
from .functions import FunctionRegistry, ScalarFunction
from .plan import (
    AggregateSpec,
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConjunction,
    BoundConstant,
    BoundExpr,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundNot,
    BoundParameterRef,
    BoundSubqueryExpr,
    LogicalAggregate,
    LogicalCTERef,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalLimit,
    LogicalOperator,
    LogicalProject,
    LogicalSetOp,
    LogicalSort,
    LogicalTableFunction,
)
from .sql import ast
from .types import (
    ANY,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    INTERVAL,
    SQLNULL,
    TypeRegistry,
    VARCHAR,
    LogicalType,
    implicit_cast_cost,
)

_CTE_COUNTER = itertools.count(1)


@dataclass
class ScopeColumn:
    alias: str | None  # table alias (lower case)
    name: str  # column name (original case)
    ltype: LogicalType


@dataclass
class CTEInfo:
    cte_id: int
    name: str
    column_names: list[str]
    column_types: list[LogicalType]
    plan: LogicalOperator


class Scope:
    """Name-resolution scope over a flat column space."""

    def __init__(self, parent: "Scope | None" = None):
        self.columns: list[ScopeColumn] = []
        self.parent = parent

    def add(self, alias: str | None, name: str, ltype: LogicalType) -> None:
        self.columns.append(
            ScopeColumn(alias.lower() if alias else None, name, ltype)
        )

    def resolve(self, qualifier: str | None, name: str) -> tuple[int, LogicalType] | None:
        lowered = name.lower()
        qual = qualifier.lower() if qualifier else None
        matches = [
            (i, col.ltype)
            for i, col in enumerate(self.columns)
            if col.name.lower() == lowered
            and (qual is None or col.alias == qual)
        ]
        if len(matches) > 1:
            raise BinderError(f"ambiguous column reference {name!r}")
        return matches[0] if matches else None


class BinderContext:
    """Shared immutable context: catalog + registries + collected CTEs."""

    def __init__(self, catalog: Catalog, functions: FunctionRegistry,
                 types: TypeRegistry):
        self.catalog = catalog
        self.functions = functions
        self.types = types
        #: CTE plans collected across the whole statement, in definition
        #: order, materialized once per execution.
        self.all_ctes: list[tuple[int, str, LogicalOperator]] = []


class Binder:
    """Binds one SELECT statement (and recursively its subqueries)."""

    def __init__(
        self,
        context: BinderContext,
        outer: "Binder | None" = None,
        cte_scope: dict[str, CTEInfo] | None = None,
    ):
        self.context = context
        self.outer = outer
        self.ctes: dict[str, CTEInfo] = dict(cte_scope or {})
        self.scope = Scope()
        #: Correlated parameters this (sub)query requires:
        #: (owning binder, expression bound in that binder's scope) pairs.
        self.correlated_params: list[tuple["Binder", BoundExpr]] = []

    # -- statement binding -------------------------------------------------------

    def bind_select(
        self, stmt: "ast.SelectStatement | ast.CompoundSelect"
    ) -> LogicalOperator:
        for cte in stmt.ctes:
            cte_binder = Binder(self.context, self.outer, self.ctes)
            plan = cte_binder.bind_select(cte.query)
            if cte_binder.correlated_params:
                raise BinderError("correlated CTEs are not supported")
            names = cte.column_names or plan.output_names()
            if len(names) != len(plan.output_types()):
                raise BinderError(
                    f"CTE {cte.name!r} column alias count mismatch"
                )
            cte_id = next(_CTE_COUNTER)
            info = CTEInfo(cte_id, cte.name, names, plan.output_types(), plan)
            self.ctes[cte.name.lower()] = info
            self.context.all_ctes.append((cte_id, cte.name, plan))
        if isinstance(stmt, ast.CompoundSelect):
            return self._bind_compound(stmt)
        plan = self._bind_select_body(stmt)
        return plan

    def _bind_compound(self, stmt: ast.CompoundSelect) -> LogicalOperator:
        left_binder = Binder(self.context, self.outer, self.ctes)
        left = left_binder.bind_select(stmt.left)
        right_binder = Binder(self.context, self.outer, self.ctes)
        right = right_binder.bind_select(stmt.right)
        if left_binder.correlated_params or right_binder.correlated_params:
            raise BinderError("correlated compound selects are unsupported")
        if len(left.output_types()) != len(right.output_types()):
            raise BinderError(
                f"{stmt.kind.upper()} inputs have different column counts"
            )
        plan: LogicalOperator = LogicalSetOp(stmt.kind, stmt.all, left,
                                             right)
        if stmt.order_by:
            keys = []
            names = [n.lower() for n in plan.output_names()]
            for item in stmt.order_by:
                index = None
                if isinstance(item.expr, ast.Literal) and isinstance(
                    item.expr.value, int
                ):
                    index = item.expr.value - 1
                elif isinstance(item.expr, ast.ColumnRef) and len(
                    item.expr.parts
                ) == 1:
                    target = item.expr.parts[0].lower()
                    if target in names:
                        index = names.index(target)
                if index is None or not 0 <= index < len(names):
                    raise BinderError(
                        "compound ORDER BY must name an output column"
                    )
                keys.append(
                    (
                        BoundColumnRef(index, plan.output_types()[index]),
                        item.ascending,
                        item.nulls_first,
                    )
                )
            plan = LogicalSort(keys, plan)
        if stmt.limit is not None or stmt.offset is not None:
            limit = self._constant_int(stmt.limit) if stmt.limit else None
            offset = self._constant_int(stmt.offset) if stmt.offset else 0
            plan = LogicalLimit(limit, offset, plan)
        return plan

    def _bind_select_body(self, stmt: ast.SelectStatement) -> LogicalOperator:
        # FROM clause
        if stmt.from_items:
            plan = self._bind_table_ref(stmt.from_items[0])
            for item in stmt.from_items[1:]:
                right_plan = self._bind_table_ref_into_new_scope(item)
                plan = LogicalJoin(plan, right_plan, "cross")
        else:
            plan = LogicalTableFunction(
                "single_row", [], ["__dummy"], [INTEGER]
            )
            self.scope.add(None, "__dummy", INTEGER)

        # WHERE
        if stmt.where is not None:
            condition = self._coerce_boolean(self.bind_expr(stmt.where))
            plan = LogicalFilter(condition, plan)

        # Aggregation analysis
        has_aggregates = any(
            self._contains_aggregate(item.expr) for item in stmt.select_items
        ) or (stmt.having is not None) or bool(stmt.group_by)

        agg_output_scope: Scope | None = None
        agg_map: dict[int, BoundColumnRef] = {}
        if has_aggregates:
            plan, agg_output_scope, agg_map = self._bind_aggregate(
                stmt, plan
            )
            working_scope = agg_output_scope
        else:
            working_scope = self.scope

        # HAVING
        if stmt.having is not None:
            having = self._coerce_boolean(
                self._bind_in_scope(stmt.having, working_scope, agg_map)
            )
            plan = LogicalFilter(having, plan)

        # SELECT list
        select_exprs: list[BoundExpr] = []
        select_names: list[str] = []
        select_asts: list[ast.Expr | None] = []
        for item in stmt.select_items:
            if isinstance(item.expr, ast.Star):
                for i, col in enumerate(working_scope.columns):
                    if col.name.startswith("__"):
                        continue
                    if (
                        item.expr.qualifier is not None
                        and col.alias != item.expr.qualifier.lower()
                    ):
                        continue
                    select_exprs.append(
                        BoundColumnRef(i, col.ltype, col.name)
                    )
                    select_names.append(col.name)
                    select_asts.append(None)
                continue
            bound = self._bind_in_scope(item.expr, working_scope, agg_map)
            select_exprs.append(bound)
            select_names.append(item.alias or _default_name(item.expr))
            select_asts.append(item.expr)
        if not select_exprs:
            raise BinderError("empty select list")

        # ORDER BY binding strategy: match select aliases/expressions first,
        # otherwise bind against the pre-projection scope as hidden columns.
        order_specs: list[tuple[int, bool, bool | None]] = []
        hidden: list[BoundExpr] = []
        for item in stmt.order_by:
            index = self._match_order_target(
                item.expr, stmt.select_items, select_asts
            )
            if index is None:
                bound = self._bind_in_scope(item.expr, working_scope, agg_map)
                index = len(select_exprs) + len(hidden)
                hidden.append(bound)
            order_specs.append((index, item.ascending, item.nulls_first))

        if stmt.distinct and hidden:
            raise BinderError(
                "ORDER BY expressions must appear in the select list "
                "when DISTINCT is used"
            )

        plan = LogicalProject(select_exprs + hidden,
                              select_names + [f"__order{i}" for i in
                                              range(len(hidden))],
                              plan)

        if stmt.distinct:
            plan = LogicalDistinct(plan)

        if order_specs:
            keys = [
                (
                    BoundColumnRef(idx, plan.output_types()[idx]),
                    asc,
                    nulls_first,
                )
                for idx, asc, nulls_first in order_specs
            ]
            plan = LogicalSort(keys, plan)

        if hidden:
            trimmed = [
                BoundColumnRef(i, t, n)
                for i, (t, n) in enumerate(
                    zip(plan.output_types(), plan.output_names())
                )
                if i < len(select_exprs)
            ]
            plan = LogicalProject(trimmed, select_names, plan)

        if stmt.limit is not None or stmt.offset is not None:
            limit = self._constant_int(stmt.limit) if stmt.limit else None
            offset = self._constant_int(stmt.offset) if stmt.offset else 0
            plan = LogicalLimit(limit, offset, plan)

        return plan

    # -- FROM binding ---------------------------------------------------------------

    def _bind_table_ref(self, ref: ast.TableRef) -> LogicalOperator:
        if isinstance(ref, ast.BaseTableRef):
            alias = ref.alias or ref.name
            info = self.ctes.get(ref.name.lower())
            if info is not None:
                for name, ltype in zip(info.column_names, info.column_types):
                    self.scope.add(alias, name, ltype)
                return LogicalCTERef(
                    info.cte_id, info.name, info.column_names,
                    info.column_types,
                )
            table = self.context.catalog.get_table(ref.name)
            for name, ltype in zip(table.column_names, table.column_types):
                self.scope.add(alias, name, ltype)
            return LogicalGet(table)
        if isinstance(ref, ast.SubqueryRef):
            sub_binder = Binder(self.context, self.outer, self.ctes)
            plan = sub_binder.bind_select(ref.query)
            if sub_binder.correlated_params:
                raise BinderError("lateral subqueries are not supported")
            names = ref.column_aliases or plan.output_names()
            for name, ltype in zip(names, plan.output_types()):
                self.scope.add(ref.alias, name, ltype)
            return plan
        if isinstance(ref, ast.TableFunctionRef):
            return self._bind_table_function(ref)
        if isinstance(ref, ast.JoinRef):
            left = self._bind_table_ref(ref.left)
            right = self._bind_table_ref(ref.right)
            condition = None
            if ref.condition is not None:
                condition = self._coerce_boolean(self.bind_expr(ref.condition))
            return LogicalJoin(
                left, right, ref.join_type, residual=condition
            )
        raise BinderError(f"unsupported FROM item {type(ref).__name__}")

    def _bind_table_ref_into_new_scope(
        self, ref: ast.TableRef
    ) -> LogicalOperator:
        return self._bind_table_ref(ref)

    def _bind_table_function(
        self, ref: ast.TableFunctionRef
    ) -> LogicalOperator:
        name = ref.name.lower()
        if name not in ("generate_series", "range"):
            raise BinderError(f"unknown table function {ref.name!r}")
        args = []
        for arg in ref.args:
            bound = self.bind_expr(arg)
            value = fold_constant(bound)
            if value is _NOT_CONSTANT:
                raise BinderError(
                    "table function arguments must be constant"
                )
            args.append(value)
        alias = ref.alias or name
        column = (ref.column_aliases or [name])[0]
        self.scope.add(alias, column, BIGINT)
        return LogicalTableFunction(name, args, [column], [BIGINT])

    # -- aggregation ------------------------------------------------------------------

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.FunctionCall):
            if self.context.functions.has_aggregate(expr.name) and not (
                self.context.functions.has_scalar(expr.name)
                and not expr.is_star
                and not expr.distinct
                and not self._prefer_aggregate(expr)
            ):
                if self.context.functions.has_aggregate(expr.name):
                    return True
            return any(self._contains_aggregate(a) for a in expr.args)
        for child in _ast_children(expr):
            if self._contains_aggregate(child):
                return True
        return False

    def _prefer_aggregate(self, expr: ast.FunctionCall) -> bool:
        # Names like min/max/count/sum/list are aggregates; a scalar with
        # the same name only wins when the aggregate cannot apply.
        return True

    def _bind_aggregate(
        self, stmt: ast.SelectStatement, plan: LogicalOperator
    ) -> tuple[LogicalOperator, Scope, dict[int, BoundColumnRef]]:
        group_exprs: list[BoundExpr] = []
        group_names: list[str] = []
        group_asts: list[ast.Expr] = []
        for g in stmt.group_by:
            resolved = self._resolve_group_target(g, stmt)
            bound = self.bind_expr(resolved)
            group_exprs.append(bound)
            group_names.append(_default_name(resolved))
            group_asts.append(resolved)

        aggregates: list[AggregateSpec] = []
        agg_map: dict[int, BoundColumnRef] = {}

        def collect(expr: ast.Expr) -> None:
            if isinstance(expr, ast.FunctionCall) and (
                self.context.functions.has_aggregate(expr.name)
            ):
                if id(expr) in agg_map:
                    return
                if expr.is_star:
                    fn = self.context.functions.resolve_aggregate(
                        "count_star", ()
                    )
                    args: list[BoundExpr] = []
                else:
                    args = [self.bind_expr(a) for a in expr.args]
                    fn = self.context.functions.resolve_aggregate(
                        expr.name, tuple(a.ltype for a in args)
                    )
                result_type = fn.result_type_for(
                    tuple(a.ltype for a in args)
                )
                index = len(group_exprs) + len(aggregates)
                aggregates.append(
                    AggregateSpec(fn, args, expr.distinct, result_type,
                                  expr.name)
                )
                agg_map[id(expr)] = BoundColumnRef(
                    index, result_type, expr.name
                )
                return
            for child in _ast_children(expr):
                collect(child)

        for item in stmt.select_items:
            if not isinstance(item.expr, ast.Star):
                collect(item.expr)
        if stmt.having is not None:
            collect(stmt.having)
        for order in stmt.order_by:
            collect(order.expr)

        agg_plan = LogicalAggregate(group_exprs, aggregates, plan,
                                    group_names)

        # Build the post-aggregation scope: group columns then aggregates.
        out_scope = Scope(self.scope.parent)
        for g_ast, g_bound, g_name in zip(group_asts, group_exprs,
                                          group_names):
            alias = None
            if isinstance(g_ast, ast.ColumnRef):
                alias = g_ast.qualifier
            out_scope.add(alias, g_name, g_bound.ltype)
        for spec in aggregates:
            out_scope.add(None, f"__agg_{spec.name}", spec.ltype)
        self._agg_group_asts = group_asts
        return agg_plan, out_scope, agg_map

    def _resolve_group_target(
        self, expr: ast.Expr, stmt: ast.SelectStatement
    ) -> ast.Expr:
        """GROUP BY may name a select alias or a 1-based ordinal."""
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if not 0 <= index < len(stmt.select_items):
                raise BinderError(f"GROUP BY position {expr.value} invalid")
            return stmt.select_items[index].expr
        if isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
            # A real input column shadows a select alias (SQL scoping).
            if self.scope.resolve(None, expr.parts[0]) is not None:
                return expr
            for item in stmt.select_items:
                if item.alias and item.alias.lower() == expr.parts[0].lower():
                    return item.expr
        return expr

    def _match_order_target(
        self,
        expr: ast.Expr,
        select_items: list[ast.SelectItem],
        select_asts: list[ast.Expr | None],
    ) -> int | None:
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = expr.value - 1
            if 0 <= index < len(select_asts):
                return index
            raise BinderError(f"ORDER BY position {expr.value} invalid")
        if isinstance(expr, ast.ColumnRef) and len(expr.parts) == 1:
            target = expr.parts[0].lower()
            for i, item in enumerate(select_items):
                if item.alias and item.alias.lower() == target:
                    return i
        for i, candidate in enumerate(select_asts):
            if candidate is not None and ast_equal(candidate, expr):
                return i
        return None

    # -- expression binding ----------------------------------------------------------

    def _bind_in_scope(
        self,
        expr: ast.Expr,
        scope: Scope,
        agg_map: dict[int, BoundColumnRef],
    ) -> BoundExpr:
        saved = self.scope
        self.scope = scope
        self._active_agg_map = agg_map
        try:
            return self.bind_expr(expr)
        finally:
            self.scope = saved
            self._active_agg_map = {}

    _active_agg_map: dict[int, BoundColumnRef] = {}
    _agg_group_asts: list[ast.Expr] = []

    def bind_expr(self, expr: ast.Expr) -> BoundExpr:
        agg_ref = self._active_agg_map.get(id(expr))
        if agg_ref is not None:
            return agg_ref
        # Inside a post-aggregation scope, a group-by expression may appear
        # verbatim (e.g. SELECT round(x) ... GROUP BY round(x)).
        if self._active_agg_map or self._agg_group_asts:
            for i, g_ast in enumerate(self._agg_group_asts):
                if ast_equal(g_ast, expr):
                    col = self.scope.columns[i]
                    return BoundColumnRef(i, col.ltype, col.name)

        if isinstance(expr, ast.Literal):
            return _bind_literal(expr)
        if isinstance(expr, ast.ColumnRef):
            return self._bind_column(expr)
        if isinstance(expr, ast.FunctionCall):
            return self._bind_function(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._bind_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._bind_unary(expr)
        if isinstance(expr, ast.Cast):
            return self.bind_cast(self.bind_expr(expr.operand), expr.type_name)
        if isinstance(expr, ast.IsNull):
            return BoundIsNull(self.bind_expr(expr.operand), expr.negated,
                               BOOLEAN)
        if isinstance(expr, ast.InList):
            operand = self.bind_expr(expr.operand)
            items = [self.bind_expr(item) for item in expr.items]
            eq_fn, _ = self.context.functions.resolve_scalar(
                "=", (operand.ltype, items[0].ltype if items else ANY)
            )
            return BoundInList(operand, items, expr.negated, eq_fn, BOOLEAN)
        if isinstance(expr, ast.Between):
            lowered = ast.BinaryOp(
                "AND",
                ast.BinaryOp(">=", expr.operand, expr.low),
                ast.BinaryOp("<=", expr.operand, expr.high),
            )
            bound = self.bind_expr(lowered)
            if expr.negated:
                return BoundNot(bound, BOOLEAN)
            return bound
        if isinstance(expr, ast.Like):
            fn_name = "ilike" if expr.case_insensitive else "like"
            bound = self._resolve_call(
                fn_name,
                [self.bind_expr(expr.operand), self.bind_expr(expr.pattern)],
            )
            if expr.negated:
                return BoundNot(bound, BOOLEAN)
            return bound
        if isinstance(expr, ast.CaseExpr):
            return self._bind_case(expr)
        if isinstance(expr, ast.IntervalExpr):
            operand = self.bind_expr(expr.operand)
            if operand.ltype == INTERVAL:
                return operand
            operand = self._implicit_cast(operand, VARCHAR)
            return self._resolve_call("to_interval", [operand])
        if isinstance(expr, ast.StructLiteral):
            return self._bind_struct(expr)
        if isinstance(expr, ast.ScalarSubquery):
            return self._bind_subquery("scalar", expr.query)
        if isinstance(expr, ast.Exists):
            sub = self._bind_subquery("exists", expr.query)
            sub.negated = expr.negated
            return sub
        if isinstance(expr, ast.InSubquery):
            operand = self.bind_expr(expr.operand)
            sub = self._bind_subquery("in", expr.query)
            sub.operand = operand
            sub.negated = expr.negated
            eq_fn, _ = self.context.functions.resolve_scalar(
                "=", (operand.ltype, sub.plan.output_types()[0])
            )
            sub.comparison = eq_fn
            return sub
        if isinstance(expr, ast.QuantifiedComparison):
            operand = self.bind_expr(expr.operand)
            sub = self._bind_subquery("quantified", expr.query)
            sub.operand = operand
            sub.quantifier = expr.quantifier
            cmp_fn, _ = self.context.functions.resolve_scalar(
                expr.op, (operand.ltype, sub.plan.output_types()[0])
            )
            sub.comparison = cmp_fn
            return sub
        if isinstance(expr, ast.Star):
            raise BinderError("'*' is only valid in the select list")
        raise BinderError(f"cannot bind expression {type(expr).__name__}")

    def _bind_column(self, expr: ast.ColumnRef) -> BoundExpr:
        resolved = self.scope.resolve(expr.qualifier, expr.column)
        if resolved is not None:
            index, ltype = resolved
            return BoundColumnRef(index, ltype, expr.column)
        # Try outer scopes: correlation.
        binder: Binder | None = self.outer
        while binder is not None:
            outer_resolved = binder.scope.resolve(expr.qualifier, expr.column)
            if outer_resolved is not None:
                outer_index, ltype = outer_resolved
                outer_expr = BoundColumnRef(outer_index, ltype, expr.column)
                param_index = len(self.correlated_params)
                self.correlated_params.append((binder, outer_expr))
                return BoundParameterRef(param_index, ltype, expr.column)
            binder = binder.outer
        raise BinderError(
            f"column {'.'.join(expr.parts)!r} not found in scope"
        )

    def _bind_function(self, expr: ast.FunctionCall) -> BoundExpr:
        if self.context.functions.has_aggregate(expr.name) and not (
            self.context.functions.has_scalar(expr.name)
        ):
            raise BinderError(
                f"aggregate {expr.name}() is not allowed here"
            )
        args = [self.bind_expr(a) for a in expr.args]
        return self._resolve_call(expr.name, args)

    def _resolve_call(self, name: str, args: list[BoundExpr]) -> BoundFunction:
        fn, target_types = self.context.functions.resolve_scalar(
            name, tuple(a.ltype for a in args)
        )
        coerced = [
            self._implicit_cast(a, t) for a, t in zip(args, target_types)
        ]
        return_type = fn.return_type
        if return_type == ANY:
            return_type = coerced[0].ltype if coerced else ANY
        return BoundFunction(fn, coerced, return_type, name)

    def _bind_binary(self, expr: ast.BinaryOp) -> BoundExpr:
        if expr.op in ("AND", "OR"):
            left = self._coerce_boolean(self.bind_expr(expr.left))
            right = self._coerce_boolean(self.bind_expr(expr.right))
            args: list[BoundExpr] = []
            for part in (left, right):
                if isinstance(part, BoundConjunction) and part.op == expr.op:
                    args.extend(part.args)
                else:
                    args.append(part)
            return BoundConjunction(expr.op, args, BOOLEAN)
        left = self.bind_expr(expr.left)
        right = self.bind_expr(expr.right)
        # Numeric '||' means string concat only; leave to registry overloads.
        return self._resolve_call(expr.op, [left, right])

    def _bind_unary(self, expr: ast.UnaryOp) -> BoundExpr:
        if expr.op == "NOT":
            return BoundNot(
                self._coerce_boolean(self.bind_expr(expr.operand)), BOOLEAN
            )
        operand = self.bind_expr(expr.operand)
        if expr.op == "-":
            if isinstance(operand, BoundConstant) and isinstance(
                operand.value, (int, float)
            ):
                return BoundConstant(-operand.value, operand.ltype)
            return self._resolve_call("-", [operand])
        return operand

    def _bind_case(self, expr: ast.CaseExpr) -> BoundExpr:
        branches: list[tuple[BoundExpr, BoundExpr]] = []
        result_type: LogicalType | None = None
        for cond_ast, result_ast in expr.branches:
            if expr.operand is not None:
                cond_ast = ast.BinaryOp("=", expr.operand, cond_ast)
            cond = self._coerce_boolean(self.bind_expr(cond_ast))
            result = self.bind_expr(result_ast)
            if result_type is None or result_type == SQLNULL:
                result_type = result.ltype
            branches.append((cond, result))
        else_result = None
        if expr.else_result is not None:
            else_result = self.bind_expr(expr.else_result)
            if result_type is None or result_type == SQLNULL:
                result_type = else_result.ltype
        return BoundCase(branches, else_result, result_type or SQLNULL)

    def _bind_struct(self, expr: ast.StructLiteral) -> BoundExpr:
        field_names = [name for name, _ in expr.fields]
        args = [self.bind_expr(value) for _, value in expr.fields]

        def make_struct(*values):
            return dict(zip(field_names, values))

        fn = ScalarFunction(
            "struct_pack",
            tuple(a.ltype for a in args),
            LogicalType("STRUCT", "object"),
            fn_scalar=make_struct,
        )
        return BoundFunction(fn, args, fn.return_type, "struct_pack")

    def _bind_subquery(
        self, kind: str, query: ast.SelectStatement
    ) -> BoundSubqueryExpr:
        sub_binder = Binder(self.context, self, self.ctes)
        plan = sub_binder.bind_select(query)
        params: list[BoundExpr] = []
        for owner, outer_expr in sub_binder.correlated_params:
            if owner is not self:
                # Parameter belongs to a further-out scope: re-export it.
                param_index = len(self.correlated_params)
                self.correlated_params.append((owner, outer_expr))
                params.append(
                    BoundParameterRef(param_index, outer_expr.ltype)
                )
            else:
                params.append(outer_expr)
        out_types = plan.output_types()
        if kind == "scalar":
            ltype = out_types[0]
        else:
            ltype = BOOLEAN
        return BoundSubqueryExpr(
            kind, plan, ltype, outer_params_exprs=params
        )

    # -- casts & coercions ---------------------------------------------------------------

    def bind_cast(self, child: BoundExpr, type_name: str) -> BoundExpr:
        target = self.context.types.lookup(type_name)
        if child.ltype == target:
            return child
        if child.ltype == SQLNULL:
            return BoundConstant(None, target)
        cost = implicit_cast_cost(child.ltype, target)
        cast_fn = self.context.functions.find_cast(child.ltype, target)
        if cast_fn is None and cost is None:
            raise BinderError(
                f"no cast from {child.ltype.name} to {target.name}"
            )
        return BoundCast(child, target, cast_fn, target.name)

    def _implicit_cast(
        self, expr: BoundExpr, target: LogicalType
    ) -> BoundExpr:
        if target == ANY or expr.ltype == target:
            return expr
        if expr.ltype == SQLNULL:
            return BoundConstant(None, target)
        cast_fn = self.context.functions.find_cast(expr.ltype, target)
        return BoundCast(expr, target, cast_fn, target.name)

    def _coerce_boolean(self, expr: BoundExpr) -> BoundExpr:
        if expr.ltype == BOOLEAN or expr.ltype == SQLNULL:
            return expr
        raise BinderError(
            f"expected a BOOLEAN expression, got {expr.ltype.name}"
        )

    def _constant_int(self, expr: ast.Expr) -> int:
        bound = self.bind_expr(expr)
        value = fold_constant(bound)
        if value is _NOT_CONSTANT or not isinstance(value, int):
            raise BinderError("LIMIT/OFFSET must be constant integers")
        return value


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _bind_literal(expr: ast.Literal) -> BoundConstant:
    value = expr.value
    if value is None:
        return BoundConstant(None, SQLNULL)
    if isinstance(value, bool):
        return BoundConstant(value, BOOLEAN)
    if isinstance(value, int):
        if -(2**31) <= value < 2**31:
            return BoundConstant(value, INTEGER)
        return BoundConstant(value, BIGINT)
    if isinstance(value, float):
        return BoundConstant(value, DOUBLE)
    return BoundConstant(str(value), VARCHAR)


def _default_name(expr: ast.Expr) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.column
    if isinstance(expr, ast.FunctionCall):
        return expr.name
    if isinstance(expr, ast.Cast):
        return _default_name(expr.operand)
    if isinstance(expr, ast.Literal):
        return str(expr.value)
    return "expr"


def _ast_children(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.FunctionCall):
        return list(expr.args)
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.Cast):
        return [expr.operand]
    if isinstance(expr, ast.IsNull):
        return [expr.operand]
    if isinstance(expr, ast.InList):
        return [expr.operand, *expr.items]
    if isinstance(expr, ast.Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, ast.CaseExpr):
        out = []
        if expr.operand is not None:
            out.append(expr.operand)
        for cond, result in expr.branches:
            out.extend((cond, result))
        if expr.else_result is not None:
            out.append(expr.else_result)
        return out
    if isinstance(expr, ast.IntervalExpr):
        return [expr.operand]
    if isinstance(expr, ast.StructLiteral):
        return [value for _, value in expr.fields]
    if isinstance(expr, (ast.InSubquery, ast.QuantifiedComparison)):
        return [expr.operand]
    return []


def ast_equal(a: ast.Expr, b: ast.Expr) -> bool:
    """Structural equality of parsed expressions (case-insensitive names)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Literal):
        return a.value == b.value
    if isinstance(a, ast.ColumnRef):
        return [p.lower() for p in a.parts] == [p.lower() for p in b.parts] or (
            a.parts[-1].lower() == b.parts[-1].lower()
            and (len(a.parts) == 1 or len(b.parts) == 1)
        )
    if isinstance(a, ast.FunctionCall):
        return (
            a.name.lower() == b.name.lower()
            and a.distinct == b.distinct
            and a.is_star == b.is_star
            and len(a.args) == len(b.args)
            and all(ast_equal(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, ast.BinaryOp):
        return (
            a.op == b.op
            and ast_equal(a.left, b.left)
            and ast_equal(a.right, b.right)
        )
    if isinstance(a, ast.UnaryOp):
        return a.op == b.op and ast_equal(a.operand, b.operand)
    if isinstance(a, ast.Cast):
        return (
            a.type_name.lower() == b.type_name.lower()
            and ast_equal(a.operand, b.operand)
        )
    return False


class _NotConstant:
    def __repr__(self):
        return "<not constant>"


_NOT_CONSTANT = _NotConstant()


def fold_constant(expr: BoundExpr) -> Any:
    """Evaluate an expression tree that references no columns; returns
    ``_NOT_CONSTANT`` when impossible."""
    if isinstance(expr, BoundConstant):
        return expr.value
    if isinstance(expr, BoundCast):
        value = fold_constant(expr.child)
        if value is _NOT_CONSTANT:
            return _NOT_CONSTANT
        if expr.cast is not None:
            return expr.cast.apply(value)
        return _builtin_cast_value(value, expr.ltype)
    if isinstance(expr, BoundFunction):
        values = [fold_constant(a) for a in expr.args]
        if any(v is _NOT_CONSTANT for v in values):
            return _NOT_CONSTANT
        return expr.function.evaluate_row(values)
    if isinstance(expr, BoundNot):
        value = fold_constant(expr.child)
        if value is _NOT_CONSTANT:
            return _NOT_CONSTANT
        return None if value is None else not value
    return _NOT_CONSTANT


def _builtin_cast_value(value: Any, target: LogicalType) -> Any:
    if value is None:
        return None
    if target.physical == "int64":
        return int(value)
    if target.physical == "float64":
        return float(value)
    if target.physical == "bool":
        return bool(value)
    return value
