"""Built-in scalar functions, operators, aggregates and casts.

Everything a vanilla SQL engine needs before any extension loads:
comparisons and arithmetic (with vectorized NumPy paths for numeric
vectors), string functions, date/time arithmetic, and the standard
aggregates including DuckDB's ``list()``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

import numpy as np

from ..meos.timetypes import (
    Interval,
    add_interval,
    format_date,
    format_timestamptz,
    interval_from_usecs,
    parse_date,
    parse_timestamptz,
)
from .errors import ConversionError, ExecutionError
from .functions import (
    AggregateFunction,
    CastFunction,
    FunctionRegistry,
    ScalarFunction,
)
from .types import (
    ANY,
    BIGINT,
    BLOB,
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    INTERVAL,
    LIST,
    TIMESTAMP,
    VARCHAR,
)
from .vector import Vector


# ---------------------------------------------------------------------------
# Vectorized helpers
# ---------------------------------------------------------------------------


def _numeric_binop(op: Callable[[Any, Any], Any]):
    def fn_vector(args: list[Vector], count: int) -> Vector:
        left, right = args
        with np.errstate(divide="ignore", invalid="ignore"):
            data = op(left.data, right.data)
        validity = np.logical_and(left.validity, right.validity)
        ltype = DOUBLE if data.dtype.kind == "f" else BIGINT
        if data.dtype == np.bool_:
            ltype = BOOLEAN
        return Vector(ltype, data, validity)

    return fn_vector


def _compare_vectors(op_name: str):
    py_ops = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    py_op = py_ops[op_name]

    def fn_vector(args: list[Vector], count: int) -> Vector:
        left, right = args
        if left.ltype.physical != "object" and right.ltype.physical != "object":
            data = py_op(left.data, right.data)
            validity = np.logical_and(left.validity, right.validity)
            return Vector(BOOLEAN, np.asarray(data, dtype=np.bool_), validity)
        out = np.zeros(count, dtype=np.bool_)
        validity = np.logical_and(left.validity, right.validity)
        ldata, rdata = left.data, right.data
        for i in range(count):
            if validity[i]:
                try:
                    out[i] = bool(py_op(ldata[i], rdata[i]))
                except TypeError as exc:
                    raise ExecutionError(
                        f"cannot compare {type(ldata[i]).__name__} with "
                        f"{type(rdata[i]).__name__}: {exc}"
                    ) from None
        return Vector(BOOLEAN, out, validity)

    return fn_vector


def _register_comparisons(registry: FunctionRegistry) -> None:
    py_ops = {
        "=": lambda a, b: a == b,
        "<>": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    for name, py_op in py_ops.items():
        registry.register_scalar(
            ScalarFunction(
                name,
                (ANY, ANY),
                BOOLEAN,
                fn_scalar=lambda a, b, _op=py_op: bool(_op(a, b)),
                fn_vector=_compare_vectors(name),
            )
        )


def _register_arithmetic(registry: FunctionRegistry) -> None:
    specs = [
        ("+", lambda a, b: a + b, np.add),
        ("-", lambda a, b: a - b, np.subtract),
        ("*", lambda a, b: a * b, np.multiply),
    ]
    for name, py_op, np_op in specs:
        for ltype in (INTEGER, BIGINT):
            registry.register_scalar(
                ScalarFunction(name, (ltype, ltype), BIGINT,
                               fn_scalar=py_op,
                               fn_vector=_numeric_binop(np_op))
            )
        registry.register_scalar(
            ScalarFunction(name, (DOUBLE, DOUBLE), DOUBLE,
                           fn_scalar=py_op,
                           fn_vector=_numeric_binop(np_op))
        )
    # Division always yields DOUBLE (DuckDB semantics for '/').
    registry.register_scalar(
        ScalarFunction(
            "/", (DOUBLE, DOUBLE), DOUBLE,
            fn_scalar=lambda a, b: (a / b) if b != 0 else None,
            handles_null=False,
        )
    )
    registry.register_scalar(
        ScalarFunction("%", (BIGINT, BIGINT), BIGINT,
                       fn_scalar=lambda a, b: (a % b) if b != 0 else None)
    )
    registry.register_scalar(
        ScalarFunction("-", (BIGINT,), BIGINT, fn_scalar=lambda a: -a)
    )
    registry.register_scalar(
        ScalarFunction("-", (DOUBLE,), DOUBLE, fn_scalar=lambda a: -a)
    )
    # Timestamp/interval arithmetic.
    registry.register_scalar(
        ScalarFunction("+", (TIMESTAMP, INTERVAL), TIMESTAMP,
                       fn_scalar=lambda t, iv: add_interval(t, iv))
    )
    registry.register_scalar(
        ScalarFunction("+", (INTERVAL, TIMESTAMP), TIMESTAMP,
                       fn_scalar=lambda iv, t: add_interval(t, iv))
    )
    registry.register_scalar(
        ScalarFunction("-", (TIMESTAMP, INTERVAL), TIMESTAMP,
                       fn_scalar=lambda t, iv: add_interval(t, -iv))
    )
    registry.register_scalar(
        ScalarFunction("-", (TIMESTAMP, TIMESTAMP), INTERVAL,
                       fn_scalar=lambda a, b: interval_from_usecs(a - b))
    )
    registry.register_scalar(
        ScalarFunction("+", (INTERVAL, INTERVAL), INTERVAL,
                       fn_scalar=lambda a, b: a + b)
    )
    registry.register_scalar(
        ScalarFunction("+", (DATE, INTERVAL), TIMESTAMP,
                       fn_scalar=lambda d, iv: add_interval(
                           d * 86_400_000_000, iv))
    )


def _to_text(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _register_strings(registry: FunctionRegistry) -> None:
    registry.register_scalar(
        ScalarFunction("||", (VARCHAR, VARCHAR), VARCHAR,
                       fn_scalar=lambda a, b: _to_text(a) + _to_text(b))
    )
    # DuckDB concatenates any operand with a string; stringify both sides.
    registry.register_scalar(
        ScalarFunction("||", (ANY, ANY), VARCHAR,
                       fn_scalar=lambda a, b: _to_text(a) + _to_text(b))
    )
    registry.register_scalar(
        ScalarFunction("concat", (VARCHAR, VARCHAR), VARCHAR,
                       fn_scalar=lambda *parts: "".join(
                           _to_text(p) for p in parts),
                       varargs=True, handles_null=True)
    )
    registry.register_scalar(
        ScalarFunction("length", (VARCHAR,), BIGINT, fn_scalar=len)
    )
    registry.register_scalar(
        ScalarFunction("upper", (VARCHAR,), VARCHAR, fn_scalar=str.upper)
    )
    registry.register_scalar(
        ScalarFunction("lower", (VARCHAR,), VARCHAR, fn_scalar=str.lower)
    )
    registry.register_scalar(
        ScalarFunction(
            "substring", (VARCHAR, BIGINT, BIGINT), VARCHAR,
            fn_scalar=lambda s, start, count: s[start - 1 : start - 1 + count],
        )
    )
    registry.register_scalar(
        ScalarFunction("trim", (VARCHAR,), VARCHAR, fn_scalar=str.strip)
    )
    registry.register_scalar(
        ScalarFunction(
            "contains", (VARCHAR, VARCHAR), BOOLEAN,
            fn_scalar=lambda s, sub: sub in s,
        )
    )

    def like_impl(text: str, pattern: str, case_insensitive: bool = False) -> bool:
        regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
        # re.escape escapes % and _ as themselves (no-op), handle both forms.
        regex = regex.replace(re.escape("%"), ".*").replace(re.escape("_"), ".")
        flags = re.IGNORECASE if case_insensitive else 0
        return re.fullmatch(regex, text, flags) is not None

    registry.register_scalar(
        ScalarFunction("like", (VARCHAR, VARCHAR), BOOLEAN,
                       fn_scalar=lambda s, p: like_impl(s, p, False))
    )
    registry.register_scalar(
        ScalarFunction("ilike", (VARCHAR, VARCHAR), BOOLEAN,
                       fn_scalar=lambda s, p: like_impl(s, p, True))
    )


def _register_math(registry: FunctionRegistry) -> None:
    registry.register_scalar(
        ScalarFunction("abs", (DOUBLE,), DOUBLE, fn_scalar=abs)
    )
    registry.register_scalar(
        ScalarFunction("abs", (BIGINT,), BIGINT, fn_scalar=abs)
    )
    registry.register_scalar(
        ScalarFunction("round", (DOUBLE,), DOUBLE,
                       fn_scalar=lambda x: float(round(x)))
    )
    registry.register_scalar(
        ScalarFunction("round", (DOUBLE, BIGINT), DOUBLE,
                       fn_scalar=lambda x, n: round(x, int(n)))
    )
    registry.register_scalar(
        ScalarFunction("floor", (DOUBLE,), BIGINT,
                       fn_scalar=lambda x: int(math.floor(x)))
    )
    registry.register_scalar(
        ScalarFunction("ceil", (DOUBLE,), BIGINT,
                       fn_scalar=lambda x: int(math.ceil(x)))
    )
    registry.register_scalar(
        ScalarFunction("sqrt", (DOUBLE,), DOUBLE, fn_scalar=math.sqrt)
    )
    registry.register_scalar(
        ScalarFunction("power", (DOUBLE, DOUBLE), DOUBLE, fn_scalar=pow)
    )
    registry.register_scalar(
        ScalarFunction("ln", (DOUBLE,), DOUBLE, fn_scalar=math.log)
    )
    registry.register_scalar(
        ScalarFunction(
            "coalesce", (ANY, ANY), ANY, varargs=True, handles_null=True,
            fn_scalar=lambda *xs: next((x for x in xs if x is not None), None),
        )
    )
    registry.register_scalar(
        ScalarFunction(
            "nullif", (ANY, ANY), ANY, handles_null=True,
            fn_scalar=lambda a, b: None if a == b else a,
        )
    )
    registry.register_scalar(
        ScalarFunction(
            "greatest", (ANY, ANY), ANY, varargs=True,
            fn_scalar=lambda *xs: max(xs),
        )
    )
    registry.register_scalar(
        ScalarFunction(
            "least", (ANY, ANY), ANY, varargs=True,
            fn_scalar=lambda *xs: min(xs),
        )
    )


def _register_datetime(registry: FunctionRegistry) -> None:
    registry.register_scalar(
        ScalarFunction("to_interval", (VARCHAR,), INTERVAL,
                       fn_scalar=Interval.parse)
    )
    registry.register_scalar(
        ScalarFunction(
            "epoch", (TIMESTAMP,), DOUBLE,
            fn_scalar=lambda t: t / 1_000_000,
        )
    )
    registry.register_scalar(
        ScalarFunction(
            "date_part", (VARCHAR, TIMESTAMP), BIGINT,
            fn_scalar=_date_part,
        )
    )

    def _date_trunc(part: str, t: int) -> int:
        from datetime import datetime, timezone

        moment = datetime.fromtimestamp(t / 1e6, tz=timezone.utc)
        part = part.lower()
        replace_args = {
            "year": dict(month=1, day=1, hour=0, minute=0, second=0,
                         microsecond=0),
            "month": dict(day=1, hour=0, minute=0, second=0, microsecond=0),
            "day": dict(hour=0, minute=0, second=0, microsecond=0),
            "hour": dict(minute=0, second=0, microsecond=0),
            "minute": dict(second=0, microsecond=0),
            "second": dict(microsecond=0),
        }.get(part)
        if replace_args is None:
            raise ExecutionError(f"unsupported date_trunc part {part!r}")
        truncated = moment.replace(**replace_args)
        return int(truncated.timestamp() * 1e6)

    registry.register_scalar(
        ScalarFunction("date_trunc", (VARCHAR, TIMESTAMP), TIMESTAMP,
                       fn_scalar=_date_trunc)
    )


def _date_part(part: str, t: int) -> int:
    from datetime import datetime, timezone

    moment = datetime.fromtimestamp(t / 1e6, tz=timezone.utc)
    part = part.lower()
    values = {
        "year": moment.year,
        "month": moment.month,
        "day": moment.day,
        "hour": moment.hour,
        "minute": moment.minute,
        "second": moment.second,
        "dow": (moment.weekday() + 1) % 7,
        "isodow": moment.weekday() + 1,
        "epoch": int(t // 1_000_000),
    }
    if part not in values:
        raise ExecutionError(f"unsupported date_part field {part!r}")
    return values[part]


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------
#
# Each standard aggregate carries an optional ``step_batch`` kernel that
# computes every group at once over NumPy arrays (see quack.kernels); the
# executor falls back to the row-wise ``step`` loop for DISTINCT
# aggregates, extension-registered aggregates, and payloads a kernel
# declines (object-typed min/max and the like).


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)


def _min_step(state: Any, value: Any) -> Any:
    # NaN compares greater than every value, so min prefers non-NaN.
    if state is None or _is_nan(state):
        return value
    if _is_nan(value):
        return state
    return min(state, value)


def _max_step(state: Any, value: Any) -> Any:
    if state is None or _is_nan(value):
        return value
    if _is_nan(state):
        return state
    return max(state, value)


def _batch_count(args, codes, n_groups, ltype) -> Vector:
    counts = np.bincount(codes[args[0].validity], minlength=n_groups)
    return Vector(ltype, counts.astype(np.int64))


def _batch_count_star(args, codes, n_groups, ltype) -> Vector:
    counts = np.bincount(codes, minlength=n_groups)
    return Vector(ltype, counts.astype(np.int64))


def _batch_sum_int(args, codes, n_groups, ltype) -> Vector | None:
    from .kernels import segment_reduce

    vec = args[0]
    if vec.ltype.physical != "int64":
        return None
    valid = vec.validity
    sums, present = segment_reduce(
        np.add, vec.data[valid], codes[valid], n_groups
    )
    return Vector(ltype, sums, present)


def _batch_sum_float(args, codes, n_groups, ltype) -> Vector | None:
    vec = args[0]
    if vec.ltype.physical != "float64":
        return None
    # bincount accumulates weights in row order — bit-identical to the
    # sequential row-loop fold (unlike reduceat's pairwise summation).
    valid = vec.validity
    grouped = codes[valid]
    sums = np.bincount(grouped, weights=vec.data[valid],
                       minlength=n_groups)
    present = np.bincount(grouped, minlength=n_groups) > 0
    return Vector(ltype, sums, present)


def _batch_avg(args, codes, n_groups, ltype) -> Vector | None:
    vec = args[0]
    if vec.ltype.physical != "float64":
        return None
    valid = vec.validity
    grouped = codes[valid]
    sums = np.bincount(grouped, weights=vec.data[valid],
                       minlength=n_groups)
    counts = np.bincount(grouped, minlength=n_groups)
    present = counts > 0
    out = np.zeros(n_groups, dtype=np.float64)
    np.divide(sums, counts, out=out, where=present)
    return Vector(ltype, out, present)


def _make_batch_extreme(is_max: bool):
    def batch(args, codes, n_groups, ltype) -> Vector | None:
        from .kernels import segment_reduce

        vec = args[0]
        physical = vec.ltype.physical
        if physical == "object":
            return None
        ufunc = np.maximum if is_max else np.minimum
        valid = vec.validity
        values = vec.data[valid]
        grouped = codes[valid]
        if physical != "float64":
            out, present = segment_reduce(ufunc, values, grouped, n_groups)
            return Vector(ltype, out, present)
        # Floats: canonicalize -0.0 for comparison, rank NaN greatest, and
        # resolve ties (-0.0 vs 0.0) to the group's FIRST tied row — the
        # same element the sequential Python min/max fold keeps.
        canon = values + 0.0
        nan = np.isnan(canon)
        out, present = segment_reduce(
            ufunc,
            np.where(nan, -np.inf if is_max else np.inf, canon),
            grouped, n_groups,
        )
        non_nan = np.bincount(grouped[~nan], minlength=n_groups)
        if is_max:
            # NaN is the greatest value: any NaN in a group wins.
            nan_wins = present & (non_nan < np.bincount(
                grouped, minlength=n_groups))
        else:
            # min skips NaN unless the group holds nothing else.
            nan_wins = present & (non_nan == 0)
        idx = np.nonzero(~nan)[0]
        match = canon[idx] == out[grouped[idx]]
        idx = idx[match]
        first, has_match = segment_reduce(
            np.minimum, idx, grouped[idx], n_groups
        )
        out[has_match] = values[first[has_match]]
        out[nan_wins] = np.nan
        return Vector(ltype, out, present)

    return batch


def _batch_first(args, codes, n_groups, ltype) -> Vector:
    from .kernels import segment_first_valid

    vec = args[0]
    rows, present = segment_first_valid(codes, vec.validity, n_groups)
    return Vector(ltype, vec.data[rows], present)


def _register_aggregates(registry: FunctionRegistry) -> None:
    registry.register_aggregate(
        AggregateFunction(
            "count", (ANY,), BIGINT,
            init=lambda: 0,
            step=lambda state, value: state + 1,
            final=lambda state: state,
            step_batch=_batch_count,
            # Partial counts merge by summing (every global group has at
            # least one partial row, so the sum is never NULL).
            combine=_batch_sum_int,
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "count_star", (), BIGINT,
            init=lambda: 0,
            step=lambda state: state + 1,
            final=lambda state: state,
            accepts_null=True,
            step_batch=_batch_count_star,
            combine=_batch_sum_int,
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "sum", (BIGINT,), BIGINT,
            init=lambda: None,
            step=lambda state, value: value if state is None else state + value,
            final=lambda state: state,
            step_batch=_batch_sum_int,
            combine=_batch_sum_int,
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "sum", (DOUBLE,), DOUBLE,
            init=lambda: None,
            step=lambda state, value: value if state is None else state + value,
            final=lambda state: state,
            # Summing partial sums associates differently from the serial
            # single pass: equal within float tolerance, not bit-for-bit.
            step_batch=_batch_sum_float,
            combine=_batch_sum_float,
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "avg", (DOUBLE,), DOUBLE,
            init=lambda: (0.0, 0),
            step=lambda state, value: (state[0] + value, state[1] + 1),
            final=lambda state: (state[0] / state[1]) if state[1] else None,
            step_batch=_batch_avg,
        )
    )
    for name, step, is_max in (("min", _min_step, False),
                               ("max", _max_step, True)):
        registry.register_aggregate(
            AggregateFunction(
                name, (ANY,), ANY,
                init=lambda: None,
                step=step,
                final=lambda state: state,
                # min of partial mins / max of partial maxes; partials
                # concatenate in morsel (= row) order, so first-occurrence
                # tie resolution matches the serial scan.
                step_batch=_make_batch_extreme(is_max),
                combine=_make_batch_extreme(is_max),
            )
        )
    registry.register_aggregate(
        AggregateFunction(
            "list", (ANY,), LIST,
            init=lambda: [],
            step=lambda state, value: state + [value],
            final=lambda state: state,
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "string_agg", (VARCHAR, VARCHAR), VARCHAR,
            init=lambda: [],
            step=lambda state, value, sep: state + [(value, sep)],
            final=lambda state: (
                (state[0][1] if state else ",").join(v for v, _ in state)
                if state
                else None
            ),
        )
    )
    registry.register_aggregate(
        AggregateFunction(
            "first", (ANY,), ANY,
            init=lambda: None,
            step=lambda state, value: value if state is None else state,
            final=lambda state: state,
            # First valid partial in morsel order is the global first
            # valid value.
            step_batch=_batch_first,
            combine=_batch_first,
        )
    )


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------


def _varchar_to_bool(text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in ("t", "true", "1", "yes"):
        return True
    if lowered in ("f", "false", "0", "no"):
        return False
    raise ConversionError(f"invalid boolean {text!r}")


def _register_casts(registry: FunctionRegistry) -> None:
    casts = [
        (INTEGER, BIGINT, int, True),
        (INTEGER, DOUBLE, float, True),
        (BIGINT, DOUBLE, float, True),
        (BIGINT, INTEGER, int, False),
        (DOUBLE, BIGINT, lambda v: int(round(v)), False),
        (DOUBLE, INTEGER, lambda v: int(round(v)), False),
        (BIGINT, VARCHAR, str, False),
        (INTEGER, VARCHAR, str, False),
        (DOUBLE, VARCHAR, _to_text, False),
        (BOOLEAN, VARCHAR, lambda v: "true" if v else "false", False),
        (VARCHAR, INTEGER, lambda v: int(float(v)), False),
        (VARCHAR, BIGINT, lambda v: int(float(v)), False),
        (VARCHAR, DOUBLE, float, False),
        (VARCHAR, BOOLEAN, _varchar_to_bool, False),
        (VARCHAR, TIMESTAMP, parse_timestamptz, False),
        (VARCHAR, DATE, parse_date, False),
        (VARCHAR, INTERVAL, Interval.parse, False),
        (TIMESTAMP, VARCHAR, format_timestamptz, False),
        (DATE, VARCHAR, format_date, False),
        (DATE, TIMESTAMP, lambda d: d * 86_400_000_000, True),
        (TIMESTAMP, DATE, lambda t: t // 86_400_000_000, False),
        (INTERVAL, VARCHAR, str, False),
        (VARCHAR, BLOB, lambda s: s.encode(), False),
        (BLOB, VARCHAR, lambda b: b.decode(errors="replace"), False),
    ]
    for source, target, fn, implicit in casts:
        registry.register_cast(CastFunction(source, target, fn, implicit))


def register_builtins(registry: FunctionRegistry) -> None:
    """Install all built-in functions into a fresh registry."""
    _register_comparisons(registry)
    _register_arithmetic(registry)
    _register_strings(registry)
    _register_math(registry)
    _register_datetime(registry)
    _register_aggregates(registry)
    _register_casts(registry)
