"""Catalog and columnar storage.

Tables store data column-wise in sealed NumPy segments plus an append tail,
so sequential scans hand out zero-copy vector slices — the quack analogue
of DuckDB's row groups.  Deletes are tombstones; updates rewrite columns.

Indexes attach to tables through the pluggable :class:`IndexType` registry
(paper §4.1: ``RegisterIndexType``); concrete index implementations (the
MobilityDuck ``TRTREE``) live in extensions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .errors import CatalogError, ExecutionError
from .types import LogicalType
from .vector import DataChunk, STANDARD_VECTOR_SIZE, Vector

_PHYSICAL_DTYPES = {
    "bool": np.bool_,
    "int64": np.int64,
    "float64": np.float64,
    "object": object,
}


class ColumnData:
    """Append-only storage of one column: sealed segments + tail buffer."""

    __slots__ = ("ltype", "segments", "validity_segments", "tail",
                 "tail_validity", "_seal_lock")

    def __init__(self, ltype: LogicalType):
        self.ltype = ltype
        self.segments: list[np.ndarray] = []
        self.validity_segments: list[np.ndarray] = []
        self.tail: list[Any] = []
        self.tail_validity: list[bool] = []
        # Read paths (scan/gather) seal lazily; two morsel workers
        # sealing the same column concurrently would double-append the
        # tail as two segments without this lock.
        self._seal_lock = threading.Lock()

    def __len__(self) -> int:
        return sum(len(s) for s in self.segments) + len(self.tail)

    def append(self, value: Any) -> None:
        self.tail.append(value)
        self.tail_validity.append(value is not None)
        if len(self.tail) >= STANDARD_VECTOR_SIZE:
            self.seal()

    def append_vector(self, vector: Vector) -> None:
        self.seal()
        # Same guard as seal(): segment lists are read by concurrently
        # sealing scan workers, so every write goes through the lock.
        with self._seal_lock:
            self.segments.append(np.array(vector.data, copy=True))
            self.validity_segments.append(
                np.array(vector.validity, copy=True)
            )

    def seal(self) -> None:
        if not self.tail:
            return
        with self._seal_lock:
            if not self.tail:  # another thread sealed while we waited
                return
            dtype = _PHYSICAL_DTYPES[self.ltype.physical]
            if self.ltype.physical == "object":
                data = np.empty(len(self.tail), dtype=object)
                for i, v in enumerate(self.tail):
                    data[i] = v
            else:
                fill = False if self.ltype.physical == "bool" else 0
                data = np.fromiter(
                    (fill if v is None else v for v in self.tail),
                    dtype=dtype,
                    count=len(self.tail),
                )
            self.segments.append(data)
            self.validity_segments.append(
                np.array(self.tail_validity, dtype=np.bool_)
            )
            self.tail.clear()
            self.tail_validity.clear()

    # -- sealed-segment access ----------------------------------------------------
    #
    # Scans, zone maps, and random access all go through this small
    # segment API so lazily-decoded storage columns
    # (repro.quack.storage.StorageColumn) can override it: a skipped row
    # group is then never decompressed.

    def segment_count(self) -> int:
        self.seal()
        return len(self.segments)

    def segment_rows(self, index: int) -> int:
        return len(self.segments[index])

    def segment_vector(self, index: int) -> Vector:
        return Vector(self.ltype, self.segments[index],
                      self.validity_segments[index])

    def zone_entry(self, index: int):
        """The zone map of one sealed segment (storage columns serve the
        footer entry instead of touching the payload)."""
        from .storage import compute_zone_entry

        return compute_zone_entry(self.segment_vector(index))

    def chunks(self) -> Iterator[Vector]:
        for index in range(self.segment_count()):
            yield self.segment_vector(index)

    def gather(self, row_ids: np.ndarray) -> Vector:
        """Random access fetch by global row offsets."""
        self.seal()
        total = len(self)
        dtype = _PHYSICAL_DTYPES[self.ltype.physical]
        out = np.empty(len(row_ids),
                       dtype=object if self.ltype.physical == "object"
                       else dtype)
        validity = np.ones(len(row_ids), dtype=np.bool_)
        bounds = np.cumsum(
            [0] + [self.segment_rows(i) for i in range(self.segment_count())]
        )
        vectors: dict[int, Vector] = {}
        for i, rid in enumerate(row_ids):
            if rid < 0 or rid >= total:
                raise ExecutionError(f"row id {rid} out of range")
            seg = int(np.searchsorted(bounds, rid, side="right")) - 1
            off = int(rid - bounds[seg])
            vector = vectors.get(seg)
            if vector is None:
                vector = vectors[seg] = self.segment_vector(seg)
            out[i] = vector.data[off]
            validity[i] = vector.validity[off]
        if self.ltype.physical != "object":
            out = out.astype(dtype)
        return Vector(self.ltype, out, validity)

    def rewrite(self, data: list[Any]) -> None:
        """Replace the whole column (UPDATE path), preserving the
        existing row-group boundaries so sibling columns — and their zone
        maps — stay segment-aligned."""
        self.seal()
        counts = [self.segment_rows(i) for i in range(self.segment_count())]
        self._reseal(data, counts)

    def _reseal(self, data: list[Any], counts: list[int]) -> None:
        """Re-seal ``data`` into segments of ``counts`` rows each; any
        remainder (a previously empty column) chunks at vector size."""
        self.segments.clear()
        self.validity_segments.clear()
        position = 0
        for rows in counts:
            self.tail = list(data[position:position + rows])
            self.tail_validity = [v is not None for v in self.tail]
            self.seal()
            position += rows
        while position < len(data):
            self.tail = list(data[position:position + STANDARD_VECTOR_SIZE])
            self.tail_validity = [v is not None for v in self.tail]
            self.seal()
            position += STANDARD_VECTOR_SIZE


class Table:
    """A named columnar table."""

    def __init__(self, name: str, columns: list[tuple[str, LogicalType]]):
        if not columns:
            raise CatalogError("a table needs at least one column")
        self.name = name
        self.column_names = [c[0] for c in columns]
        self.column_types = [c[1] for c in columns]
        lowered = [c.lower() for c in self.column_names]
        if len(set(lowered)) != len(lowered):
            raise CatalogError(f"duplicate column name in table {name!r}")
        self._columns = [ColumnData(t) for t in self.column_types]
        self._deleted: list[np.ndarray] = []  # parallels sealed structure
        self._deleted_ids: set[int] = set()
        self.indexes: list["TableIndex"] = []
        #: per-table ANALYZE statistics (repro.quack.stats.TableStats);
        #: None until ANALYZE runs — the optimizer then stays heuristic.
        self.stats = None
        #: lazily-built per-row-group zone maps (storage.ZoneMapEntry per
        #: column, one list per sealed segment).  Sealed segments are
        #: immutable, so appends only *extend* this cache — a rewrite
        #: (UPDATE) resets it so pruning never trusts stale bounds.
        self._zone_cache: list[list] = []
        # Two workers extending the lazy zone cache concurrently would
        # interleave duplicate segment entries; same discipline as
        # ColumnData._seal_lock.
        self._zone_lock = threading.Lock()

    # -- metadata -----------------------------------------------------------------

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def num_rows(self) -> int:
        return len(self._columns[0]) - len(self._deleted_ids)

    def total_rows(self) -> int:
        return len(self._columns[0])

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.column_names):
            if col.lower() == lowered:
                return i
        raise CatalogError(f"column {name!r} not in table {self.name!r}")

    # -- mutation -----------------------------------------------------------------

    def append_rows(self, rows: Sequence[Sequence[Any]]) -> np.ndarray:
        """Append rows; returns their row ids and feeds attached indexes."""
        start = self.total_rows()
        for row in rows:
            if len(row) != self.num_columns:
                raise ExecutionError(
                    f"expected {self.num_columns} values, got {len(row)}"
                )
            for col, value in zip(self._columns, row):
                col.append(value)
        row_ids = np.arange(start, start + len(rows), dtype=np.int64)
        if self.indexes and len(rows):
            chunk = DataChunk(
                [
                    Vector.from_values(
                        t, [row[i] for row in rows]
                    )
                    for i, t in enumerate(self.column_types)
                ]
            )
            for index in self.indexes:
                index.append(chunk, row_ids)
        return row_ids

    def delete_rows(self, row_ids: Sequence[int]) -> int:
        before = len(self._deleted_ids)
        self._deleted_ids.update(int(r) for r in row_ids)
        return len(self._deleted_ids) - before

    def update_column(self, name: str, values: list[Any]) -> None:
        """Rewrite one column in full row order (UPDATE execution path)."""
        idx = self.column_index(name)
        if len(values) != self.total_rows():
            raise ExecutionError("update value count mismatch")
        self._columns[idx].rewrite(values)
        self._zone_cache = []
        for index in self.indexes:
            index.rebuild(self)

    # -- zone maps ----------------------------------------------------------------

    def zone_maps(self) -> list[list] | None:
        """Per-sealed-segment zone maps, one entry list per column.

        Returns ``None`` when the columns are not uniformly segmented
        (e.g. after a whole-vector append) — pruning by segment index
        would then be unsound.  Entries are conservative under
        tombstones: a pruned group provably holds no matching stored
        row, deleted or not.
        """
        for col in self._columns:
            col.seal()
        num_segments = self._columns[0].segment_count()
        for col in self._columns[1:]:
            if col.segment_count() != num_segments:
                return None
        for seg in range(num_segments):
            rows = self._columns[0].segment_rows(seg)
            if any(col.segment_rows(seg) != rows
                   for col in self._columns[1:]):
                return None
        with self._zone_lock:
            while len(self._zone_cache) < num_segments:
                seg = len(self._zone_cache)
                self._zone_cache.append(
                    [col.zone_entry(seg) for col in self._columns]
                )
            return self._zone_cache[:num_segments]

    # -- scan ---------------------------------------------------------------------

    def scan(
        self, skip_groups: set[int] | None = None
    ) -> Iterator[tuple[DataChunk, np.ndarray]]:
        """Yield (chunk, row_ids) over live rows, one entry per sealed
        segment; ``skip_groups`` elides row groups by segment index
        without materializing them (zone-map pruning)."""
        for col in self._columns:
            col.seal()
        offset = 0
        num_segments = self._columns[0].segment_count()
        for seg in range(num_segments):
            count = self._columns[0].segment_rows(seg)
            if skip_groups and seg in skip_groups:
                offset += count
                continue
            vectors = [col.segment_vector(seg) for col in self._columns]
            row_ids = np.arange(offset, offset + count, dtype=np.int64)
            offset += count
            if self._deleted_ids:
                keep = np.fromiter(
                    (int(r) not in self._deleted_ids for r in row_ids),
                    dtype=np.bool_,
                    count=count,
                )
                if not keep.all():
                    vectors = [v.slice(keep) for v in vectors]
                    row_ids = row_ids[keep]
            yield DataChunk(vectors), row_ids

    def fetch(self, row_ids: np.ndarray) -> DataChunk:
        """Random-access fetch (index scan path, paper §4.3)."""
        live = np.asarray(
            [r for r in row_ids if int(r) not in self._deleted_ids],
            dtype=np.int64,
        )
        return DataChunk([col.gather(live) for col in self._columns])

    def live_row_ids(self, row_ids: Sequence[int]) -> list[int]:
        return [int(r) for r in row_ids if int(r) not in self._deleted_ids]


class TableIndex:
    """Abstract index attached to a table (concrete: TRTREE in repro.core)."""

    def __init__(self, name: str, table: Table, column: str,
                 type_name: str):
        self.name = name
        self.table = table
        self.column = column
        self.type_name = type_name

    # Incremental append (paper §4.2.1).
    def append(self, chunk: DataChunk, row_ids: np.ndarray) -> None:
        raise NotImplementedError

    # Full rebuild after UPDATE.
    def rebuild(self, table: Table) -> None:
        raise NotImplementedError

    # Scan matching (paper §4.3): return row ids or None if unsupported.
    def probe(self, op_name: str, constant: Any) -> list[int] | None:
        raise NotImplementedError

    # Batched probe: one candidate list per value (None entries for
    # values that cannot be probed, e.g. NULL).  Returning None overall
    # means this index has no batch path and the caller must probe
    # row-at-a-time via :meth:`probe`.
    def probe_batch(
        self, op_name: str, values: Sequence[Any]
    ) -> list[list[int] | None] | None:
        return None

    def matches(self, op_name: str, column_name: str, constant: Any) -> bool:
        raise NotImplementedError


@dataclass
class IndexType:
    """A pluggable index type (paper §4.1 ``IndexType`` registration)."""

    name: str
    create_instance: Callable[..., TableIndex]


class IndexTypeRegistry:
    def __init__(self):
        self._types: dict[str, IndexType] = {}

    def register(self, index_type: IndexType) -> None:
        self._types[index_type.name.upper()] = index_type

    def lookup(self, name: str) -> IndexType:
        found = self._types.get(name.upper())
        if found is None:
            raise CatalogError(f"unknown index type {name!r}")
        return found

    def known(self, name: str) -> bool:
        return name.upper() in self._types


class Catalog:
    """Named tables and indexes of one database."""

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, TableIndex] = {}

    def create_table(self, table: Table, or_replace: bool = False) -> None:
        key = table.name.lower()
        if key in self.tables and not or_replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[key] = table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self.tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        table = self.tables.pop(key)
        for index in table.indexes:
            self.indexes.pop(index.name.lower(), None)

    def get_table(self, name: str) -> Table:
        found = self.tables.get(name.lower())
        if found is None:
            raise CatalogError(f"table {name!r} does not exist")
        return found

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def add_index(self, index: TableIndex) -> None:
        key = index.name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self.indexes[key] = index
        index.table.indexes.append(index)
