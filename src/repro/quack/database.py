"""Database and connection objects: the embedded, in-process entry point.

Usage mirrors DuckDB's Python API::

    from repro import quack
    db = quack.Database()
    con = db.connect()
    con.execute("CREATE TABLE t(a INTEGER, b VARCHAR)")
    con.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
    rows = con.execute("SELECT a, b FROM t ORDER BY a").fetchall()

Extensions (e.g. :mod:`repro.core`, the MobilityDuck reproduction) load
into a :class:`Database` and register their types, functions, casts, and
index types.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..analysis.config import verification_enabled
from ..observability import (
    REGISTRY,
    QueryLog,
    QueryRecord,
    QueryStatistics,
    TraceCollector,
    activate,
    collection_enabled,
    current_stats,
    maybe_span,
)
from ..observability.trace import chrome_trace, write_trace
from .binder import Binder, BinderContext
from .builtins import register_builtins
from .catalog import Catalog, IndexTypeRegistry, Table
from .errors import BinderError, CatalogError, ExecutionError, QuackError
from .executor import ExecutionContext, evaluate, execute_plan
from .functions import FunctionRegistry
from .kernels import kernels_snapshot
from .optimizer import optimize
from .parallel import MorselPool, default_workers
from .plan import LogicalMaterializedCTE, LogicalOperator
from .sql import ast, parse_sql
from .types import LogicalType, TypeRegistry
from .vector import boolean_selection


@dataclass
class Result:
    """A materialized query result."""

    column_names: list[str] = field(default_factory=list)
    column_types: list[LogicalType] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    plan_text: str | None = None
    #: the QueryStatistics of the execution that produced this result
    query_stats: QueryStatistics | None = None

    def stats(self) -> QueryStatistics | None:
        """Observability snapshot: phase timings, counters, gauges."""
        return self.query_stats

    def trace(self) -> dict | None:
        """The execution timeline as a Chrome trace-event JSON object
        (load in Perfetto / ``chrome://tracing``); None when collection
        was disabled for the query."""
        if self.query_stats is None:
            return None
        return chrome_trace(self.query_stats)

    def fetchall(self) -> list[tuple]:
        return list(self.rows)

    def fetchone(self) -> tuple | None:
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """First column of the first row (raises when empty)."""
        if not self.rows:
            raise ExecutionError("result is empty")
        return self.rows[0][0]

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def columns(self) -> dict:
        """Column-oriented dict of the result (DataFrame-shaped seam)."""
        from .io import result_to_columns

        return result_to_columns(self)

    def show(self, max_rows: int = 20) -> None:
        """Pretty-print the result as an aligned table."""
        from .io import format_table

        print(format_table(self, max_rows=max_rows))


@dataclass
class DatabaseConfig:
    """Engine configuration; extensions register index types here
    (paper §4.1: ``db.config.GetIndexTypes().RegisterIndexType(...)``)."""

    index_types: IndexTypeRegistry = field(default_factory=IndexTypeRegistry)


class Database:
    """An in-process analytical database instance."""

    def __init__(self):
        self.types = TypeRegistry()
        self.functions = FunctionRegistry()
        self.catalog = Catalog()
        self.config = DatabaseConfig()
        self.loaded_extensions: list[str] = []
        #: on-disk file bound by ``ATTACH``; ``CHECKPOINT`` without an
        #: explicit path writes here
        self.attached_path: str | None = None
        register_builtins(self.functions)

    def connect(self, workers: int | None = None) -> "Connection":
        """Open a connection; ``workers > 1`` enables morsel-driven
        parallel execution on a connection-owned thread pool (also
        settable later with ``SET threads = N``).  When ``workers`` is
        not given, the ``REPRO_THREADS`` environment variable supplies
        the default (so the whole test suite can be soaked at
        ``workers=4`` without touching every ``connect()`` call)."""
        if workers is None:
            workers = default_workers()
        return Connection(self, workers=workers)

    def save(self, path: str) -> int:
        """Persist all tables (and index definitions) to one file."""
        from .persist import save_database

        return save_database(self, path)

    def load(self, path: str) -> int:
        """Load tables saved with :meth:`save`; indexes are rebuilt."""
        from .persist import load_database

        return load_database(self, path)

    # -- extension loading ----------------------------------------------------------

    def load_extension(self, extension) -> None:
        """Load an extension: an object (or module) with a ``load(db)``."""
        extension.load(self)
        name = getattr(extension, "EXTENSION_NAME", None) or getattr(
            extension, "__name__", type(extension).__name__
        )
        self.loaded_extensions.append(name)


def _parse_on_off(value: ast.Expr, setting: str) -> bool:
    """Interpret a ``SET <setting> = on|off`` value straight from the AST
    (``on``/``off`` parse as bare column references, which constant
    folding cannot resolve)."""
    if isinstance(value, ast.Literal) and isinstance(value.value, bool):
        return value.value
    word = None
    if isinstance(value, ast.ColumnRef) and len(value.parts) == 1:
        word = value.parts[0].lower()
    elif isinstance(value, ast.Literal) and isinstance(value.value, str):
        word = value.value.lower()
    if word in ("on", "true", "1"):
        return True
    if word in ("off", "false", "0"):
        return False
    raise QuackError(f"SET {setting} expects on or off")


class Connection:
    """A connection to a database; executes SQL statements."""

    def __init__(self, database: Database, workers: int = 1):
        self.database = database
        #: morsel parallelism degree (1 = serial); ``SET threads = N``
        self.workers = max(1, int(workers))
        self._pool: MorselPool | None = None
        #: statistics of the most recent :meth:`execute` call
        self.last_query_stats: QueryStatistics | None = None
        #: rolling log of completed queries (``SET log_min_duration``
        #: tunes the slow-query threshold)
        self._query_log = QueryLog()
        #: cost-based optimizer kill switch (``SET cbo = on|off``);
        #: tables without ANALYZE statistics plan heuristically anyway
        self._cbo = True
        #: zone-map scan skipping kill switch (``SET zone_maps = on|off``)
        self._zone_maps = True
        #: spill watermark in MB (``SET memory_limit = <MB>``); None
        #: leaves the blocking sinks fully in-memory
        self._memory_limit_mb: float | None = None

    def set_workers(self, workers: int) -> None:
        """Change the parallelism degree; the old pool is drained."""
        workers = max(1, int(workers))
        if workers == self.workers and self._pool is not None:
            return
        self.workers = workers
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _morsel_pool(self) -> MorselPool | None:
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = MorselPool(self.workers)
        return self._pool

    # -- public API ----------------------------------------------------------------

    def execute(self, sql: str) -> Result:
        """Execute a SQL script; returns the result of the last statement."""
        if not collection_enabled():
            return self._execute_script(sql, None)
        stats = QueryStatistics()
        stats.trace = TraceCollector()
        self.last_query_stats = stats
        start = time.perf_counter()
        error: str | None = None
        result = Result()
        try:
            with activate(stats):
                result = self._execute_script(sql, stats)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self._finish_query(
                sql, stats, time.perf_counter() - start, result, error
            )
        result.query_stats = stats
        return result

    def _finish_query(self, sql: str, stats: QueryStatistics,
                      seconds: float, result: Result,
                      error: str | None) -> None:
        """Record the finished query in the log and the global registry."""
        if stats.trace is not None and len(stats.trace):
            stats.bump("trace.events", len(stats.trace))
        record = QueryRecord(
            sql=sql,
            seconds=seconds,
            rows=len(result.rows) if error is None else None,
            engine="quack",
            workers=self.workers,
            error=error,
            phases=stats.phase_seconds(),
            counters=dict(stats.counters),
        )
        if self._query_log.record(record):
            stats.bump("querylog.records")
        else:
            stats.bump("querylog.suppressed")
        REGISTRY.absorb(stats)

    def query_log(self, n: int | None = None,
                  format: str = "records"):
        """The connection's rolling log of completed queries.

        ``format="records"`` returns :class:`QueryRecord` objects
        (oldest first), ``"text"`` a rendered log, ``"json"`` a JSON
        string.  ``n`` limits to the most recent n queries."""
        if format == "records":
            return self._query_log.records(n)
        if format == "text":
            return self._query_log.format_text(n)
        if format == "json":
            return self._query_log.to_json(n)
        raise QuackError(f"unsupported query_log format {format!r}")

    def export_trace(self, path: str) -> dict:
        """Write the last executed query's timeline to ``path`` as
        Chrome trace-event JSON (Perfetto-loadable); returns the dict."""
        if self.last_query_stats is None:
            raise QuackError(
                "no traced query: execute one with collection enabled "
                "before export_trace"
            )
        return write_trace(self.last_query_stats, path,
                           meta={"engine": "quack"})

    def _execute_script(self, sql: str,
                        stats: QueryStatistics | None) -> Result:
        with maybe_span(stats, "parse"):
            statements = parse_sql(sql)
        result = Result()
        for stmt in statements:
            result = self._execute_statement(stmt)
        return result

    def sql(self, sql: str) -> Result:
        return self.execute(sql)

    def explain(self, sql: str) -> str:
        result = self.execute(f"EXPLAIN {sql}")
        return result.plan_text or ""

    def explain_analyze(self, sql: str, format: str = "text"):
        """Profile one SELECT statement with full instrumentation.

        ``format="text"`` returns the annotated plan with a phase
        header; ``format="json"`` returns the structured tree (phases,
        counters, gauges, recursive per-operator stats);
        ``format="trace"`` returns the execution timeline as Chrome
        trace-event JSON (operator/fragment/morsel events on per-worker
        lanes — load in Perfetto)."""
        if format not in ("text", "json", "trace"):
            raise QuackError(f"unsupported explain format {format!r}")
        from .profiler import PlanProfiler

        stats = QueryStatistics()
        stats.trace = TraceCollector()
        self.last_query_stats = stats
        profiler = PlanProfiler()
        with activate(stats):
            with stats.tracer.span("parse"):
                statements = parse_sql(sql)
            if len(statements) != 1:
                raise BinderError(
                    "explain_analyze expects exactly one statement"
                )
            stmt = statements[0]
            if isinstance(stmt, ast.ExplainStatement):
                stmt = stmt.inner
            if not isinstance(stmt, (ast.SelectStatement,
                                     ast.CompoundSelect)):
                raise BinderError("EXPLAIN supports SELECT statements")
            plan = self._plan_select(stmt)
            ctx = self._execution_context(stats, profiler)
            with kernels_snapshot(), stats.tracer.span("execute"):
                for chunk in execute_plan(plan, ctx):
                    stats.bump("executor.rows_returned", chunk.count)
        if stats.trace is not None and len(stats.trace):
            stats.bump("trace.events", len(stats.trace))
        REGISTRY.absorb(stats)
        if format == "json":
            out = profiler.to_dict(plan, stats)
            out["engine"] = "quack"
            return out
        if format == "trace":
            return profiler.trace_dict(plan, stats, engine="quack")
        return profiler.render(plan, stats)

    # -- statement dispatch -----------------------------------------------------------

    def _execute_statement(self, stmt: ast.Statement) -> Result:
        # Snapshot the kernel flag for the whole statement: every reader
        # (executor, functions, morsel workers via the propagated
        # context) sees one consistent value even if another thread
        # flips set_kernels_enabled mid-query.
        with kernels_snapshot():
            return self._dispatch_statement(stmt)

    def _dispatch_statement(self, stmt: ast.Statement) -> Result:
        if isinstance(stmt, (ast.SelectStatement, ast.CompoundSelect)):
            plan = self._plan_select(stmt)
            return self._run_plan(plan)
        if isinstance(stmt, ast.ExplainStatement):
            inner = stmt.inner
            if not isinstance(inner, (ast.SelectStatement,
                                      ast.CompoundSelect)):
                raise BinderError("EXPLAIN supports SELECT statements")
            plan = self._plan_select(inner)
            if stmt.analyze:
                from .profiler import PlanProfiler

                profiler = PlanProfiler()
                stats = current_stats()
                ctx = self._execution_context(stats, profiler)
                with maybe_span(stats, "execute"):
                    for _ in execute_plan(plan, ctx):
                        pass
                text = profiler.render(plan, stats)
            else:
                text = plan.explain()
            return Result(["explain"], [], [(text,)], plan_text=text)
        if isinstance(stmt, ast.CreateTableStatement):
            return self._execute_create_table(stmt)
        if isinstance(stmt, ast.CreateIndexStatement):
            return self._execute_create_index(stmt)
        if isinstance(stmt, ast.InsertStatement):
            return self._execute_insert(stmt)
        if isinstance(stmt, ast.UpdateStatement):
            return self._execute_update(stmt)
        if isinstance(stmt, ast.DeleteStatement):
            return self._execute_delete(stmt)
        if isinstance(stmt, ast.DropStatement):
            return self._execute_drop(stmt)
        if isinstance(stmt, ast.AnalyzeStatement):
            return self._execute_analyze(stmt)
        if isinstance(stmt, ast.SetStatement):
            return self._execute_set(stmt)
        if isinstance(stmt, ast.ShowStatement):
            return self._execute_show(stmt)
        if isinstance(stmt, ast.AttachStatement):
            return self._execute_attach(stmt)
        if isinstance(stmt, ast.CheckpointStatement):
            return self._execute_checkpoint(stmt)
        raise QuackError(f"unsupported statement {type(stmt).__name__}")

    def _execute_attach(self, stmt: ast.AttachStatement) -> Result:
        """Bind an on-disk database file to this Database.

        An existing file loads immediately — tables come back as
        memory-mapped :class:`~.storage.StorageTable`\\ s whose segments
        decompress lazily on first scan.  A new path just arms
        ``CHECKPOINT`` to write there."""
        import os

        from . import storage

        self.database.attached_path = stmt.path
        if os.path.exists(stmt.path):
            tables = storage.read_database(self.database, stmt.path)
        else:
            tables = 0
        return Result(["tables"], [], [(tables,)])

    def _execute_checkpoint(self, stmt: ast.CheckpointStatement) -> Result:
        """Write every table to the attached (or explicitly named) file
        in the columnar segment format, then re-attach so subsequent
        scans run against the lazily-decoded on-disk segments."""
        from . import storage

        path = stmt.path or self.database.attached_path
        if path is None:
            raise QuackError(
                "CHECKPOINT needs an attached database: run "
                "ATTACH '<path>' first or name a path"
            )
        tables = storage.write_database(self.database, path)
        self.database.attached_path = path
        return Result(["tables"], [], [(tables,)])

    def _execute_analyze(self, stmt: ast.AnalyzeStatement) -> Result:
        """Collect optimizer statistics for one table (or all tables).

        Attached tables whose zone maps cover every segment skip the
        full scan: the footer statistics are exact for row counts and
        min/max and close enough for histograms, so ANALYZE on a
        freshly attached database touches no segment payloads."""
        from . import storage
        from .stats import analyze_table

        catalog = self.database.catalog
        if stmt.table is not None:
            tables = [catalog.get_table(stmt.table)]
        else:
            tables = list(catalog.tables.values())
        rows = []
        for table in tables:
            table.stats = (
                storage.analyze_from_zone_maps(table)
                or analyze_table(table)
            )
            rows.append(
                (table.name, table.stats.row_count,
                 len(table.stats.columns))
            )
        return Result(["table", "rows", "columns"], [], rows)

    def _execute_set(self, stmt: ast.SetStatement) -> Result:
        name = stmt.name.lower()
        if name == "cbo":
            self._cbo = _parse_on_off(stmt.value, "cbo")
            return Result()
        if name == "zone_maps":
            self._zone_maps = _parse_on_off(stmt.value, "zone_maps")
            return Result()
        if name not in ("threads", "workers", "log_min_duration",
                        "memory_limit"):
            raise QuackError(f"unknown setting {stmt.name!r}")
        context = BinderContext(
            self.database.catalog,
            self.database.functions,
            self.database.types,
        )
        from .binder import _NOT_CONSTANT, fold_constant

        value = fold_constant(Binder(context).bind_expr(stmt.value))
        if name == "log_min_duration":
            # milliseconds; 0 logs everything, negative disables logging
            if (
                value is _NOT_CONSTANT
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                raise QuackError(
                    "SET log_min_duration expects a number of milliseconds"
                )
            self._query_log.min_duration_ms = float(value)
            return Result()
        if name == "memory_limit":
            # megabytes; zero or negative disables the spill watermark
            if (
                value is _NOT_CONSTANT
                or isinstance(value, bool)
                or not isinstance(value, (int, float))
            ):
                raise QuackError(
                    "SET memory_limit expects a number of megabytes"
                )
            self._memory_limit_mb = (
                float(value) if value > 0 else None
            )
            return Result()
        if (
            value is _NOT_CONSTANT
            or isinstance(value, bool)
            or not isinstance(value, int)
            or value < 1
        ):
            raise QuackError(
                f"SET {stmt.name} expects a positive integer"
            )
        self.set_workers(value)
        return Result()

    def _execute_show(self, stmt: ast.ShowStatement) -> Result:
        name = stmt.name.lower()
        if name in ("threads", "workers"):
            value: Any = self.workers
        elif name == "log_min_duration":
            value = self._query_log.min_duration_ms
        elif name == "cbo":
            value = "on" if self._cbo else "off"
        elif name == "zone_maps":
            value = "on" if self._zone_maps else "off"
        elif name == "memory_limit":
            value = self._memory_limit_mb
        else:
            raise QuackError(f"unknown setting {stmt.name!r}")
        return Result([stmt.name.lower()], [], [(value,)])

    # -- SELECT -------------------------------------------------------------------------

    def _execution_context(self, stats,
                           profiler=None) -> ExecutionContext:
        """The root context of one statement, carrying the connection's
        parallelism degree and pool."""
        pool = self._morsel_pool()
        if stats is not None and pool is not None:
            stats.set_gauge("parallel.workers", self.workers)
        limit = None
        if self._memory_limit_mb is not None:
            limit = int(self._memory_limit_mb * 1024 * 1024)
        return ExecutionContext(stats=stats, profiler=profiler,
                                workers=self.workers, pool=pool,
                                memory_limit_bytes=limit)

    def _plan_select(self, stmt: ast.SelectStatement) -> LogicalOperator:
        stats = current_stats()
        context = BinderContext(
            self.database.catalog,
            self.database.functions,
            self.database.types,
        )
        binder = Binder(context)
        with maybe_span(stats, "bind"):
            plan = binder.bind_select(stmt)
            if context.all_ctes:
                plan = LogicalMaterializedCTE(context.all_ctes, plan)
        if verification_enabled():
            from ..analysis.verifier import verify_planned

            verify_planned(plan, self.database.functions, stats, "bind")
        with maybe_span(stats, "optimize"):
            plan = optimize(plan, stats, cbo=self._cbo,
                            zone_maps=self._zone_maps)
        if verification_enabled():
            from ..analysis.verifier import verify_planned

            verify_planned(plan, self.database.functions, stats, "optimize")
        return plan

    def _run_plan(self, plan: LogicalOperator) -> Result:
        stats = current_stats()
        ctx = self._execution_context(stats)
        rows: list[tuple] = []
        chunks = 0
        with maybe_span(stats, "execute"):
            for chunk in execute_plan(plan, ctx):
                chunks += 1
                rows.extend(chunk.rows())
        if stats is not None:
            stats.bump("executor.result_chunks", chunks)
            stats.bump("executor.rows_returned", len(rows))
        return Result(plan.output_names(), plan.output_types(), rows)

    # -- DDL ---------------------------------------------------------------------------

    def _execute_create_table(
        self, stmt: ast.CreateTableStatement
    ) -> Result:
        if stmt.if_not_exists and self.database.catalog.has_table(stmt.name):
            return Result()
        if stmt.as_query is not None:
            plan = self._plan_select(stmt.as_query)
            result = self._run_plan(plan)
            table = Table(
                stmt.name,
                list(zip(result.column_names, result.column_types)),
            )
            table.append_rows(result.rows)
            self.database.catalog.create_table(table, stmt.or_replace)
            return Result()
        columns = [
            (col.name, self.database.types.lookup(col.type_name))
            for col in stmt.columns
        ]
        if stmt.or_replace:
            self.database.catalog.drop_table(stmt.name, if_exists=True)
        self.database.catalog.create_table(Table(stmt.name, columns),
                                           stmt.or_replace)
        return Result()

    def _execute_create_index(
        self, stmt: ast.CreateIndexStatement
    ) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        index_type = self.database.config.index_types.lookup(stmt.using)
        index = index_type.create_instance(
            name=stmt.name,
            table=table,
            column=stmt.column,
            database=self.database,
        )
        self.database.catalog.add_index(index)
        return Result()

    def _execute_drop(self, stmt: ast.DropStatement) -> Result:
        if stmt.kind == "table":
            self.database.catalog.drop_table(stmt.name, stmt.if_exists)
            return Result()
        index = self.database.catalog.indexes.pop(stmt.name.lower(), None)
        if index is None and not stmt.if_exists:
            raise CatalogError(f"index {stmt.name!r} does not exist")
        if index is not None:
            index.table.indexes.remove(index)
        return Result()

    # -- DML ---------------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.InsertStatement) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        if stmt.query is not None:
            plan = self._plan_select(stmt.query)
            source_rows = self._run_plan(plan).rows
            source_types = plan.output_types()
        else:
            source_rows = []
            source_types = None
            context = BinderContext(
                self.database.catalog,
                self.database.functions,
                self.database.types,
            )
            binder = Binder(context)
            from .binder import _NOT_CONSTANT, fold_constant

            for value_row in stmt.values or []:
                row = []
                for expr in value_row:
                    bound = binder.bind_expr(expr)
                    value = fold_constant(bound)
                    if value is _NOT_CONSTANT:
                        raise BinderError(
                            "INSERT VALUES must be constant expressions"
                        )
                    row.append(value)
                source_rows.append(tuple(row))
        # Map into the table's column order, applying coercion casts.
        if stmt.columns is not None:
            positions = [table.column_index(c) for c in stmt.columns]
        else:
            positions = list(range(table.num_columns))
        full_rows = []
        for row in source_rows:
            if len(row) != len(positions):
                raise ExecutionError(
                    f"INSERT expected {len(positions)} values, "
                    f"got {len(row)}"
                )
            full = [None] * table.num_columns
            for pos, value in zip(positions, row):
                full[pos] = self._coerce_for_storage(
                    value, table.column_types[pos]
                )
            full_rows.append(tuple(full))
        table.append_rows(full_rows)
        return Result(["Count"], [], [(len(full_rows),)])

    def _coerce_for_storage(self, value: Any, ltype: LogicalType) -> Any:
        if value is None:
            return None
        if ltype.physical == "int64" and isinstance(value, str):
            cast = self.database.functions.find_cast(
                self.database.types.lookup("VARCHAR"), ltype
            )
            if cast is not None:
                return cast.apply(value)
        if isinstance(value, str) and ltype.is_user:
            cast = self.database.functions.find_cast(
                self.database.types.lookup("VARCHAR"), ltype
            )
            if cast is not None:
                return cast.apply(value)
        if ltype.physical == "float64" and isinstance(value, int):
            return float(value)
        return value

    def _bind_over_table(self, table: Table, expr: ast.Expr):
        context = BinderContext(
            self.database.catalog,
            self.database.functions,
            self.database.types,
        )
        binder = Binder(context)
        for name, ltype in zip(table.column_names, table.column_types):
            binder.scope.add(table.name, name, ltype)
        return binder.bind_expr(expr), binder

    def _execute_update(self, stmt: ast.UpdateStatement) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        bound_assignments = []
        for column, expr in stmt.assignments:
            bound, binder = self._bind_over_table(table, expr)
            target_type = table.column_types[table.column_index(column)]
            if bound.ltype != target_type:
                bound = binder.bind_cast(bound, target_type.name)
            bound_assignments.append((column, bound))
        where_bound = None
        if stmt.where is not None:
            where_bound, _ = self._bind_over_table(table, stmt.where)
        # Compute new full-column value lists.
        total = table.total_rows()
        new_values: dict[str, list] = {
            column: table._columns[table.column_index(column)]
            .gather(np.arange(total, dtype=np.int64))
            .to_list()
            for column, _ in bound_assignments
        }
        ctx = ExecutionContext()
        updated = 0
        for chunk, row_ids in table.scan():
            if where_bound is not None:
                mask = boolean_selection(evaluate(where_bound, chunk, ctx))
            else:
                mask = np.ones(chunk.count, dtype=np.bool_)
            if not mask.any():
                continue
            for column, bound in bound_assignments:
                values = evaluate(bound, chunk, ctx)
                for i in np.nonzero(mask)[0]:
                    new_values[column][int(row_ids[i])] = values.value(i)
            updated += int(mask.sum())
        for column, _ in bound_assignments:
            table.update_column(column, new_values[column])
        return Result(["Count"], [], [(updated,)])

    def _execute_delete(self, stmt: ast.DeleteStatement) -> Result:
        table = self.database.catalog.get_table(stmt.table)
        ctx = ExecutionContext()
        to_delete: list[int] = []
        where_bound = None
        if stmt.where is not None:
            where_bound, _ = self._bind_over_table(table, stmt.where)
        for chunk, row_ids in table.scan():
            if where_bound is None:
                to_delete.extend(int(r) for r in row_ids)
                continue
            mask = boolean_selection(evaluate(where_bound, chunk, ctx))
            to_delete.extend(int(row_ids[i]) for i in np.nonzero(mask)[0])
        deleted = table.delete_rows(to_delete)
        return Result(["Count"], [], [(deleted,)])
