"""Error hierarchy of the quack engine (mirrors DuckDB's exception kinds)."""


class QuackError(Exception):
    """Base class for all engine errors."""


class ParserError(QuackError):
    """Raised on malformed SQL."""


class BinderError(QuackError):
    """Raised when names or types cannot be resolved."""


class CatalogError(QuackError):
    """Raised for missing/duplicate tables, indexes, functions."""


class ExecutionError(QuackError):
    """Raised at query runtime."""


class ConversionError(QuackError):
    """Raised when a cast fails."""
