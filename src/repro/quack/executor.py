"""Vectorized (chunk-at-a-time) plan executor.

Every operator consumes and produces :class:`DataChunk` batches; relational
work on numeric columns runs on NumPy arrays, extension functions run once
per value within a batch — the execution model of the paper's host engine.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from ..analysis import config as _verification
from . import kernels
from . import parallel as _parallel
from . import storage as _storage
from .errors import ExecutionError
from .kernels import hashable_key as _hashable
from .plan import (
    BoundCase,
    BoundCast,
    BoundColumnRef,
    BoundConjunction,
    BoundConstant,
    BoundExpr,
    BoundFunction,
    BoundInList,
    BoundIsNull,
    BoundNot,
    BoundParameterRef,
    BoundSubqueryExpr,
    LogicalAggregate,
    LogicalCTERef,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalIndexScan,
    LogicalJoin,
    LogicalLimit,
    LogicalMaterializedCTE,
    LogicalOperator,
    LogicalProject,
    LogicalSetOp,
    LogicalSort,
    LogicalTableFunction,
)
from .optimizer import _subquery_free, streaming_fragment
from .types import BIGINT, BOOLEAN, LogicalType
from .vector import (
    DataChunk,
    KernelFallback,
    STANDARD_VECTOR_SIZE,
    Vector,
    boolean_selection,
    concat_vectors,
)


@dataclass
class OperatorKernelStats:
    """Kernel-vs-fallback telemetry for one aggregate/sort/distinct
    operator, surfaced by EXPLAIN ANALYZE."""

    rows_in: int = 0
    kernel: int = 0
    fallback: int = 0


def _kernel_stats(op: "LogicalOperator",
                  ctx: "ExecutionContext") -> OperatorKernelStats | None:
    profiler = ctx.profiler
    if profiler is None:
        return None
    return profiler.kernel_stats_for(op)


class ExecutionContext:
    """Per-query state: CTE materializations, correlated parameters,
    and the observability scope (statistics + optional plan profiler).

    Profiling is context-scoped: a child context inherits its parent's
    profiler, so subquery and CTE execution is captured too, and two
    contexts never share mutable profiling state."""

    def __init__(self, parent: "ExecutionContext | None" = None,
                 stats=None, profiler=None, workers: int = 1, pool=None,
                 memory_limit_bytes: int | None = None):
        self.parent = parent
        self.cte_results: dict[int, list[DataChunk]] = (
            parent.cte_results if parent else {}
        )
        self.cte_plans: dict[int, LogicalOperator] = (
            parent.cte_plans if parent else {}
        )
        self.params: tuple = parent.params if parent else ()
        #: memoized correlated subquery results: (id(plan), params) -> value
        self.subquery_cache: dict[tuple, Any] = (
            parent.subquery_cache if parent else {}
        )
        #: the query's QueryStatistics (None when collection is disabled)
        self.stats = stats if stats is not None else (
            parent.stats if parent else None
        )
        #: PlanProfiler driving per-operator instrumentation (EXPLAIN
        #: ANALYZE); None for regular execution
        self.profiler = profiler if profiler is not None else (
            parent.profiler if parent else None
        )
        #: the query's shared TraceCollector (timeline events); unlike
        #: ``stats`` it is NOT redirected in worker children — the
        #: collector is thread-safe and events carry their own lane, so
        #: workers emit straight into the query-wide timeline
        self.trace = parent.trace if parent is not None else (
            stats.trace if stats is not None else None
        )
        #: morsel parallelism degree and the connection's worker pool
        #: (children inherit; workers=1 / pool=None means serial)
        self.workers = parent.workers if parent else max(1, int(workers))
        self.pool = parent.pool if parent else pool
        #: ``SET memory_limit = <MB>`` watermark in bytes; None = no
        #: limit.  Blocking sinks (sort / hash-join build / aggregation)
        #: that materialize past it spill to disk and merge back.
        self.memory_limit_bytes = (
            parent.memory_limit_bytes if parent else memory_limit_bytes
        )
        #: shared-cache guards, created once at the root context and
        #: inherited by every child so all contexts of one query agree
        self._subquery_lock = (
            parent._subquery_lock if parent else threading.Lock()
        )
        self._cte_lock = (
            parent._cte_lock if parent else threading.RLock()
        )

    def child_with_params(self, params: tuple) -> "ExecutionContext":
        ctx = ExecutionContext(self)
        ctx.params = params
        return ctx

    def serial_child(self) -> "ExecutionContext":
        """A child context that never scatters — used wherever a lock is
        held (CTE materialization) or inside pool workers, so a lock
        holder / worker never waits on further pool tasks."""
        ctx = ExecutionContext(self)
        ctx.workers = 1
        ctx.pool = None
        return ctx

    def worker_child(self, stats) -> "ExecutionContext":
        """The context a pool worker runs under: serial, stats redirected
        to the worker-local object (the coordinator merges it back), no
        profiler (profiler dicts are not thread-safe — profiled fragments
        feed the profiler coordinator-side from returned timings)."""
        ctx = self.serial_child()
        ctx.stats = stats
        ctx.profiler = None
        return ctx

    def can_parallel(self) -> bool:
        return (
            self.pool is not None
            and self.workers > 1
            and kernels.kernels_enabled()
        )


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------


def evaluate(expr: BoundExpr, chunk: DataChunk,
             ctx: ExecutionContext) -> Vector:
    count = chunk.count
    if isinstance(expr, BoundConstant):
        return Vector.constant(expr.ltype, expr.value, count)
    if isinstance(expr, BoundColumnRef):
        try:
            return chunk.column(expr.index)
        except IndexError:
            raise ExecutionError(
                f"column index {expr.index} out of range"
            ) from None
    if isinstance(expr, BoundParameterRef):
        return Vector.constant(expr.ltype, ctx.params[expr.param_index],
                               count)
    if isinstance(expr, BoundFunction):
        args = [evaluate(a, chunk, ctx) for a in expr.args]
        result = expr.function.evaluate(args, count)
        if result.ltype != expr.ltype:
            if result.ltype.physical == expr.ltype.physical:
                result = result.with_type(expr.ltype)
            else:
                # ANY-returning functions (greatest, coalesce, …) come
                # back as object vectors; repack under the type the
                # binder resolved so downstream kernels see the declared
                # physical representation.
                result = Vector.from_values(expr.ltype, result.to_list())
        return result
    if isinstance(expr, BoundCast):
        return _evaluate_cast(expr, chunk, ctx)
    if isinstance(expr, BoundConjunction):
        return _evaluate_conjunction(expr, chunk, ctx)
    if isinstance(expr, BoundNot):
        child = evaluate(expr.child, chunk, ctx)
        data = np.logical_not(child.data.astype(np.bool_, copy=False))
        return Vector(BOOLEAN, data, child.validity.copy())
    if isinstance(expr, BoundIsNull):
        child = evaluate(expr.child, chunk, ctx)
        data = child.validity if expr.negated else ~child.validity
        return Vector(BOOLEAN, np.asarray(data, dtype=np.bool_),
                      np.ones(count, dtype=np.bool_))
    if isinstance(expr, BoundInList):
        return _evaluate_in_list(expr, chunk, ctx)
    if isinstance(expr, BoundCase):
        return _evaluate_case(expr, chunk, ctx)
    if isinstance(expr, BoundSubqueryExpr):
        return _evaluate_subquery(expr, chunk, ctx)
    raise ExecutionError(f"cannot evaluate {type(expr).__name__}")


def _evaluate_cast(expr: BoundCast, chunk: DataChunk,
                   ctx: ExecutionContext) -> Vector:
    child = evaluate(expr.child, chunk, ctx)
    count = len(child)
    target = expr.ltype
    if expr.cast is not None:
        out = np.empty(count, dtype=object)
        validity = child.validity.copy()
        # Join chunks repeat payload objects; cast functions are pure, so
        # an identity memo converts each distinct object once per chunk.
        memo: dict | None = None
        if (
            kernels.kernels_enabled()
            and count >= 16
            and child.ltype.physical == "object"
        ):
            memo = {}
        memo_hits = 0
        for i in range(count):
            if validity[i]:
                source = child.data[i]
                if memo is not None:
                    hit = memo.get(id(source))
                    if hit is not None and hit[0] is source:
                        value = hit[1]
                        memo_hits += 1
                    else:
                        value = expr.cast.apply(source)
                        memo[id(source)] = (source, value)
                else:
                    value = expr.cast.apply(source)
                out[i] = value
                if value is None:
                    validity[i] = False
        if memo_hits and ctx.stats is not None:
            ctx.stats.bump("quack.cast_memo_rows", memo_hits)
        return _pack(target, out, validity, count)
    # Builtin physical casts.
    if target.physical == child.ltype.physical:
        return child.with_type(target)
    if target.physical in ("int64", "float64", "bool"):
        dtype = {"int64": np.int64, "float64": np.float64,
                 "bool": np.bool_}[target.physical]
        if child.ltype.physical == "object":
            out = _pack_object_array(child.data, child.validity, dtype,
                                     count)
            return Vector(target, out, child.validity.copy())
        if target.physical == "int64" and child.ltype.physical == "float64":
            return Vector(target, np.rint(child.data).astype(np.int64),
                          child.validity.copy())
        return Vector(target, child.data.astype(dtype),
                      child.validity.copy())
    out = np.empty(count, dtype=object)
    for i in range(count):
        if child.validity[i]:
            out[i] = child.value(i)
    return Vector(target, out, child.validity.copy())


def _pack(target: LogicalType, out: np.ndarray, validity: np.ndarray,
          count: int) -> Vector:
    if target.physical == "object":
        return Vector(target, out, validity)
    dtype = {"int64": np.int64, "float64": np.float64, "bool": np.bool_}[
        target.physical
    ]
    return Vector(target, _pack_object_array(out, validity, dtype, count),
                  validity)


def _pack_object_array(out: np.ndarray, validity: np.ndarray, dtype,
                       count: int) -> np.ndarray:
    """Narrow an object array to ``dtype``, zero-filling NULL slots."""
    if not kernels.kernels_enabled():
        data = np.zeros(count, dtype=dtype)
        for i in range(count):
            if validity[i]:
                data[i] = out[i]
        return data
    try:
        if validity.all():
            return out.astype(dtype)
        data = np.zeros(count, dtype=dtype)
        data[validity] = out[validity].astype(dtype)
        return data
    except (TypeError, ValueError, OverflowError):
        # Payloads NumPy cannot narrow in bulk (e.g. mixed objects whose
        # __int__/__float__ must run row-wise): original loop.
        data = np.zeros(count, dtype=dtype)
        for i in range(count):
            if validity[i]:
                data[i] = out[i]
        return data


def _evaluate_conjunction(expr: BoundConjunction, chunk: DataChunk,
                          ctx: ExecutionContext) -> Vector:
    count = chunk.count
    parts = [evaluate(a, chunk, ctx) for a in expr.args]
    if expr.op == "AND":
        # 3-valued logic: FALSE dominates NULL.
        all_true = np.ones(count, dtype=np.bool_)
        all_valid = np.ones(count, dtype=np.bool_)
        any_false = np.zeros(count, dtype=np.bool_)
        for part in parts:
            part_bool = part.data.astype(np.bool_, copy=False)
            all_true = np.logical_and(
                all_true, np.logical_and(part_bool, part.validity)
            )
            all_valid = np.logical_and(all_valid, part.validity)
            any_false = np.logical_or(
                any_false, np.logical_and(part.validity, ~part_bool)
            )
        validity = np.logical_or(any_false, all_valid)
        return Vector(BOOLEAN, all_true, validity)
    data = np.zeros(count, dtype=np.bool_)
    validity = np.ones(count, dtype=np.bool_)
    any_true = np.zeros(count, dtype=np.bool_)
    all_valid = np.ones(count, dtype=np.bool_)
    for part in parts:
        part_bool = np.logical_and(part.data.astype(np.bool_, copy=False),
                                   part.validity)
        any_true = np.logical_or(any_true, part_bool)
        all_valid = np.logical_and(all_valid, part.validity)
    data = any_true
    validity = np.logical_or(any_true, all_valid)
    return Vector(BOOLEAN, data, validity)


def _evaluate_in_list(expr: BoundInList, chunk: DataChunk,
                      ctx: ExecutionContext) -> Vector:
    count = chunk.count
    operand = evaluate(expr.operand, chunk, ctx)
    result = np.zeros(count, dtype=np.bool_)
    validity = operand.validity.copy()
    for item in expr.items:
        item_vec = evaluate(item, chunk, ctx)
        eq = expr.eq_function.evaluate([operand, item_vec], count)
        result = np.logical_or(
            result, np.logical_and(eq.data.astype(np.bool_), eq.validity)
        )
    if expr.negated:
        result = np.logical_and(~result, validity)
    else:
        result = np.logical_and(result, validity)
    return Vector(BOOLEAN, result, validity)


def _evaluate_case(expr: BoundCase, chunk: DataChunk,
                   ctx: ExecutionContext) -> Vector:
    count = chunk.count
    out = np.empty(count, dtype=object)
    validity = np.zeros(count, dtype=np.bool_)
    decided = np.zeros(count, dtype=np.bool_)
    for cond, result in expr.branches:
        cond_vec = evaluate(cond, chunk, ctx)
        hit = np.logical_and(boolean_selection(cond_vec), ~decided)
        if hit.any():
            result_vec = evaluate(result, chunk, ctx)
            for i in np.nonzero(hit)[0]:
                out[i] = result_vec.value(i)
                validity[i] = result_vec.validity[i]
            decided = np.logical_or(decided, hit)
    remaining = ~decided
    if expr.else_result is not None and remaining.any():
        else_vec = evaluate(expr.else_result, chunk, ctx)
        for i in np.nonzero(remaining)[0]:
            out[i] = else_vec.value(i)
            validity[i] = else_vec.validity[i]
    return _pack(expr.ltype, out, validity, count)


def _evaluate_subquery(expr: BoundSubqueryExpr, chunk: DataChunk,
                       ctx: ExecutionContext) -> Vector:
    count = chunk.count
    param_vectors = [evaluate(p, chunk, ctx) for p in
                     expr.outer_params_exprs]
    operand_vec = (
        evaluate(expr.operand, chunk, ctx) if expr.operand is not None
        else None
    )
    out = np.empty(count, dtype=object)
    validity = np.ones(count, dtype=np.bool_)
    for i in range(count):
        params = tuple(v.value(i) for v in param_vectors)
        rows = _run_subquery(expr.plan, params, ctx)
        if expr.kind == "scalar":
            if not rows:
                value = None
            elif len(rows) > 1:
                raise ExecutionError(
                    "scalar subquery returned more than one row"
                )
            else:
                value = rows[0][0]
            out[i] = value
            validity[i] = value is not None
        elif expr.kind == "exists":
            value = bool(rows)
            out[i] = (not value) if expr.negated else value
        elif expr.kind == "in":
            out[i], validity[i] = _eval_in_rows(
                expr, operand_vec.value(i), rows
            )
        else:  # quantified ALL / ANY
            out[i], validity[i] = _eval_quantified_rows(
                expr, operand_vec.value(i), rows
            )
    return _pack(expr.ltype, out, validity, count)


def _eval_in_rows(expr, operand_value, rows) -> tuple[bool, bool]:
    if operand_value is None:
        return (False, False)
    found = False
    saw_null = False
    for row in rows:
        if row[0] is None:
            saw_null = True
            continue
        if expr.comparison.evaluate_row([operand_value, row[0]]):
            found = True
            break
    if expr.negated:
        if found:
            return (False, True)
        if saw_null:
            return (False, False)
        return (True, True)
    if found:
        return (True, True)
    if saw_null:
        return (False, False)
    return (False, True)


def _eval_quantified_rows(expr, operand_value, rows) -> tuple[bool, bool]:
    if operand_value is None:
        if not rows:
            # Vacuous: ALL over the empty set is TRUE, ANY is FALSE.
            return (expr.quantifier == "ALL", True)
        return (False, False)  # NULL comparison result
    results = []
    for row in rows:
        if row[0] is None:
            results.append(None)
            continue
        results.append(
            bool(expr.comparison.evaluate_row([operand_value, row[0]]))
        )
    if expr.quantifier == "ALL":
        if any(r is False for r in results):
            return (False, True)
        if any(r is None for r in results):
            return (False, False)
        return (True, True)
    # ANY
    if any(r is True for r in results):
        return (True, True)
    if any(r is None for r in results):
        return (False, False)
    return (False, True)


def _run_subquery(plan: LogicalOperator, params: tuple,
                  ctx: ExecutionContext) -> list[tuple]:
    # The memo dict is shared by every context of the query, including
    # morsel workers evaluating correlated subqueries concurrently: reads
    # and the publish go through the lock.  The subquery itself runs
    # outside it (two workers may race to compute the same key — the
    # setdefault keeps the first result, so callers agree on one list).
    key = (id(plan), params)
    with ctx._subquery_lock:
        cached = ctx.subquery_cache.get(key)
    if cached is not None:
        return cached
    sub_ctx = ctx.child_with_params(params)
    rows: list[tuple] = []
    for chunk in execute_plan(plan, sub_ctx):
        rows.extend(chunk.rows())
    with ctx._subquery_lock:
        rows = ctx.subquery_cache.setdefault(key, rows)
    return rows


# ---------------------------------------------------------------------------
# Operator execution
# ---------------------------------------------------------------------------


def execute_plan(op: LogicalOperator,
                 ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Execute one operator (and, recursively, its children).

    When the context carries a profiler, every operator — including
    those inside subqueries and CTEs — streams through an instrumented
    wrapper; there is no module-level state, so nested and concurrent
    profiled executions cannot corrupt each other.  Under verification
    mode every produced chunk additionally passes the chunk verifier."""
    if _verification.VERIFICATION_ENABLED:
        return _execute_verified(op, ctx)
    if ctx.profiler is None:
        return _execute_operator(op, ctx)
    return _execute_profiled(op, ctx)


def _execute_verified(op: LogicalOperator,
                      ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Stream an operator's output through the chunk verifier."""
    from ..analysis.verifier import verify_chunk

    inner = (_execute_operator(op, ctx) if ctx.profiler is None
             else _execute_profiled(op, ctx))
    for chunk in inner:
        verify_chunk(op, chunk)
        if ctx.stats is not None:
            ctx.stats.bump("verify.chunks_checked")
        yield chunk


def _execute_profiled(op: LogicalOperator,
                      ctx: ExecutionContext) -> Iterator[DataChunk]:
    stats = ctx.profiler.stats_for(op)
    stats.invocations += 1
    rows_before = stats.rows
    opened = time.perf_counter()
    start = opened
    try:
        for chunk in _execute_operator(op, ctx):
            stats.rows += chunk.count
            stats.seconds += time.perf_counter() - start
            yield chunk
            start = time.perf_counter()
        stats.seconds += time.perf_counter() - start
    except GeneratorExit:
        stats.seconds += time.perf_counter() - start
        raise
    finally:
        # One timeline event per invocation lifetime (first pull to
        # exhaustion, consumer time included — matching the inclusive
        # profiler clock), so nested operators nest on the lane.
        if ctx.trace is not None:
            ctx.trace.emit(
                op._explain_label(), "operator", opened,
                time.perf_counter() - opened,
                rows=stats.rows - rows_before,
            )


def _execute_operator(op: LogicalOperator,
                      ctx: ExecutionContext) -> Iterator[DataChunk]:
    if isinstance(op, LogicalMaterializedCTE):
        for cte_id, _, plan in op.ctes:
            # setdefault: a re-entrant execution (subquery re-running the
            # CTE operator on a worker) publishes the same plan object —
            # one atomic winner, never a torn registration.
            ctx.cte_plans.setdefault(cte_id, plan)
        yield from execute_plan(op.child, ctx)
        return
    if isinstance(op, LogicalGet):
        yield from _execute_get(op, ctx)
        return
    if isinstance(op, LogicalIndexScan):
        row_ids = op.index.probe(op.op_name, op.constant)
        if row_ids is None:
            raise ExecutionError(
                f"index {op.index.name} cannot serve {op.op_name}"
            )
        if ctx.stats is not None:
            ctx.stats.bump("executor.index_scans")
            ctx.stats.bump("executor.index_candidates", len(row_ids))
        if ctx.profiler is not None:
            ctx.profiler.annotate(op, "probes")
            ctx.profiler.annotate(op, "candidates", len(row_ids))
        live = op.table.live_row_ids(sorted(row_ids))
        for start in range(0, len(live), STANDARD_VECTOR_SIZE):
            ids = np.asarray(live[start : start + STANDARD_VECTOR_SIZE],
                             dtype=np.int64)
            chunk = op.table.fetch(ids)
            if chunk.count:
                yield chunk
        return
    if isinstance(op, LogicalTableFunction):
        yield from _execute_table_function(op)
        return
    if isinstance(op, LogicalCTERef):
        yield from _execute_cte_ref(op, ctx)
        return
    if isinstance(op, (LogicalFilter, LogicalProject)):
        yield from _execute_streaming(op, ctx)
        return
    if isinstance(op, LogicalJoin):
        yield from _execute_join(op, ctx)
        return
    if isinstance(op, LogicalAggregate):
        yield from _execute_aggregate(op, ctx)
        return
    if isinstance(op, LogicalSort):
        yield from _execute_sort(op, ctx)
        return
    if isinstance(op, LogicalDistinct):
        yield from _execute_distinct(op, ctx)
        return
    if isinstance(op, LogicalSetOp):
        yield from _execute_set_op(op, ctx)
        return
    if isinstance(op, LogicalLimit):
        remaining = op.limit
        to_skip = op.offset
        for chunk in execute_plan(op.child, ctx):
            if to_skip:
                if chunk.count <= to_skip:
                    to_skip -= chunk.count
                    continue
                selection = np.arange(to_skip, chunk.count)
                chunk = chunk.slice(selection)
                to_skip = 0
            if remaining is None:
                yield chunk
                continue
            if remaining <= 0:
                return
            if chunk.count > remaining:
                chunk = chunk.slice(np.arange(remaining))
            remaining -= chunk.count
            yield chunk
            if remaining <= 0:
                return
        return
    raise ExecutionError(f"cannot execute {type(op).__name__}")


def _execute_get(op: LogicalGet,
                 ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Base-table scan with optional zone-map row-group skipping.

    When the optimizer attached :class:`PrunePredicate`\\ s, row groups
    whose zone-map entries prove no row can satisfy a pushed conjunct
    are skipped before decompression.  Pruning is advisory — the exact
    filter still runs above the scan — so a miss costs decode time, not
    correctness; under verification the skipped groups are decoded
    anyway and cross-checked to hold no matching live row.
    """
    skip: set[int] | None = None
    if op.prune:
        zone_maps = op.table.zone_maps()
        if zone_maps is not None:
            skip = set()
            for seg, entries in enumerate(zone_maps):
                if any(
                    _storage.zone_map_prunes(
                        entries[p.column], p.op_name, p.constant
                    )
                    for p in op.prune
                ):
                    skip.add(seg)
            total = len(zone_maps)
            if ctx.stats is not None:
                ctx.stats.bump("storage.rowgroups_scanned",
                               total - len(skip))
                ctx.stats.bump("storage.rowgroups_skipped", len(skip))
            if ctx.profiler is not None:
                ctx.profiler.annotate(op, "rowgroups",
                                      total - len(skip))
                ctx.profiler.annotate(op, "rowgroups_skipped",
                                      len(skip))
            if skip and _verification.verification_enabled():
                _crosscheck_pruned_groups(op, skip, zone_maps, ctx)
    for chunk, _ in op.table.scan(skip_groups=skip):
        if chunk.count:
            yield chunk


def _crosscheck_pruned_groups(op: LogicalGet, skip: set[int],
                              zone_maps: list, ctx: ExecutionContext) -> None:
    """Decode every zone-map-skipped row group and prove no live row
    satisfies a conjunct whose zone map claimed to prune it (the
    skip-vs-full-scan differential of the verification layer).  Only the
    conjuncts that *caused* the skip are checked — the others may well
    match rows in the group; the conjunction is still false there."""
    from ..analysis.errors import VerificationError

    table = op.table
    offset = 0
    for seg in range(table._columns[0].segment_count()):
        count = table._columns[0].segment_rows(seg)
        if seg not in skip:
            offset += count
            continue
        chunk = DataChunk(
            [col.segment_vector(seg) for col in table._columns]
        )
        live = np.fromiter(
            ((offset + i) not in table._deleted_ids
             for i in range(count)),
            dtype=np.bool_,
            count=count,
        )
        for pred in op.prune:
            if pred.expr is None:
                continue
            if not _storage.zone_map_prunes(
                zone_maps[seg][pred.column], pred.op_name, pred.constant
            ):
                continue
            mask = boolean_selection(evaluate(pred.expr, chunk, ctx))
            if bool(np.logical_and(mask, live).any()):
                raise VerificationError(
                    f"zone map pruned row group {seg} of "
                    f"{table.name}, but a live row satisfies "
                    f"{pred.op_name} on column {pred.column}"
                )
        if ctx.stats is not None:
            ctx.stats.bump("verify.zonemap_crosschecks")
        offset += count


def _execute_table_function(op: LogicalTableFunction) -> Iterator[DataChunk]:
    if op.name == "single_row":
        yield DataChunk([Vector.from_values(BIGINT, [0]).with_type(
            op.types[0]
        )])
        return
    if op.name in ("generate_series", "range"):
        args = [int(a) for a in op.args]
        if len(args) == 1:
            start, stop, step = 1, args[0], 1
        elif len(args) == 2:
            start, stop, step = args[0], args[1], 1
        else:
            start, stop, step = args
        if op.name == "range":
            stop -= 1  # range() is exclusive of the upper bound
        current = start
        while (step > 0 and current <= stop) or (step < 0 and current >= stop):
            upper = current + step * STANDARD_VECTOR_SIZE
            if step > 0:
                block = np.arange(current, min(upper, stop + step), step,
                                  dtype=np.int64)
            else:
                block = np.arange(current, max(upper, stop + step), step,
                                  dtype=np.int64)
            block = block[(block <= stop) if step > 0 else (block >= stop)]
            if not len(block):
                return
            yield DataChunk([Vector(BIGINT, block)])
            current = int(block[-1]) + step
        return
    raise ExecutionError(f"unknown table function {op.name!r}")


# -- streaming fragments (filter/project chains) ------------------------------


def _execute_streaming(op: LogicalOperator,
                       ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Run a Filter/Project, scattering its streaming chain when possible.

    A chunk entering a ``[Project|Filter]*`` chain is independent of every
    other chunk, so the whole chain is the morsel-parallel unit: source
    chunks fan out to pool workers, each applies the full chain, and the
    coordinator re-emits results in source order.  ``execute_plan``
    reaches only the *top* of a chain here (inner stages are consumed by
    the fragment), so parallelism composes with the verified/profiled
    wrappers exactly once per chain.
    """
    if ctx.can_parallel():
        produced = _execute_fragment_parallel(op, ctx)
        if produced is not None:
            yield from produced
            return
    if isinstance(op, LogicalFilter):
        for chunk in execute_plan(op.child, ctx):
            mask = boolean_selection(evaluate(op.condition, chunk, ctx))
            if mask.any():
                yield chunk.slice(mask)
        return
    for chunk in execute_plan(op.child, ctx):
        yield DataChunk([evaluate(e, chunk, ctx) for e in op.exprs])


def _stage_exprs(stage: LogicalOperator) -> list:
    if isinstance(stage, LogicalFilter):
        return [stage.condition]
    return list(stage.exprs)


def _execute_fragment_parallel(op: LogicalOperator,
                               ctx: ExecutionContext
                               ) -> Iterator[DataChunk] | None:
    """The parallel plan for one streaming chain, or None to stay serial.

    Profiled runs keep fragments containing subqueries serial: a worker
    context carries no profiler, so subquery operators executed inside a
    worker would drop out of the EXPLAIN ANALYZE tree."""
    chain, source = streaming_fragment(op)
    if ctx.profiler is not None and not all(
        _subquery_free(e) for stage in chain for e in _stage_exprs(stage)
    ):
        return None
    return _fragment_parallel_iter(op, chain, source, ctx)


def _fragment_parallel_iter(op: LogicalOperator,
                            chain: list[LogicalOperator],
                            source: LogicalOperator,
                            ctx: ExecutionContext) -> Iterator[DataChunk]:
    from ..analysis.verifier import verify_chunk

    qstats = ctx.stats
    profiler = ctx.profiler
    stages = list(reversed(chain))  # bottom-up application order
    verify = _verification.VERIFICATION_ENABLED

    trace = ctx.trace
    fragment_name = f"fragment {op._explain_label()}"

    def apply_chain(chunk: DataChunk, worker_stats):
        opened = time.perf_counter()
        wctx = ctx.worker_child(worker_stats if qstats is not None
                                else None)
        out: DataChunk | None = chunk
        rows = [0] * len(stages)
        seconds = [0.0] * len(stages)
        for s, stage in enumerate(stages):
            start = time.perf_counter()
            if isinstance(stage, LogicalFilter):
                mask = boolean_selection(
                    evaluate(stage.condition, out, wctx)
                )
                out = out.slice(mask) if mask.any() else None
            else:
                out = DataChunk(
                    [evaluate(e, out, wctx) for e in stage.exprs]
                )
            seconds[s] = time.perf_counter() - start
            if out is None:
                break
            rows[s] = out.count
            # Inner stages bypass _execute_verified (the chain is one
            # unit); verify them here.  The top stage (stage is op) is
            # verified by the coordinator's wrapper as usual.
            if verify and stage is not op:
                verify_chunk(stage, out)
                if worker_stats is not None and qstats is not None:
                    worker_stats.bump("verify.chunks_checked")
        if trace is not None:
            trace.emit(
                fragment_name, "fragment", opened,
                time.perf_counter() - opened, rows=chunk.count,
                args={"rows_out": out.count if out is not None else 0},
            )
        return out, rows, seconds

    source_chunks = execute_plan(source, ctx)
    produced = _parallel.ordered_map(ctx.pool, source_chunks, apply_chain,
                                     qstats)
    if qstats is not None:
        qstats.bump("parallel.batches")
    if profiler is not None:
        for stage in stages:
            if stage is not op:  # op's invocation counted by its wrapper
                profiler.stats_for(stage).invocations += 1
    try:
        for out, rows, seconds in produced:
            if qstats is not None:
                qstats.bump("parallel.morsels")
            if profiler is not None:
                # Inner stages bypass the _execute_profiled wrapper; feed
                # their worker-measured rows/seconds here.  The top stage
                # (op) is rowed and timed by its own wrapper.
                for s, stage in enumerate(stages):
                    if stage is not op:
                        pstats = profiler.stats_for(stage)
                        pstats.seconds += seconds[s]
                        pstats.rows += rows[s]
            if out is not None:
                yield out
    finally:
        produced.close()


def _execute_cte_ref(op: LogicalCTERef,
                     ctx: ExecutionContext) -> Iterator[DataChunk]:
    # Materialization runs under the (reentrant) CTE lock and on a serial
    # child context: the lock holder must never wait on pool workers, or
    # a worker blocked on this same lock for another CTE would deadlock
    # the pool.  Nested CTE refs re-enter the RLock on the same thread.
    with ctx._cte_lock:
        cached = ctx.cte_results.get(op.cte_id)
        if cached is None:
            plan = ctx.cte_plans.get(op.cte_id)
            if plan is None:
                raise ExecutionError(
                    f"CTE {op.name!r} was not materialized"
                )
            cached = list(execute_plan(plan, ctx.serial_child()))
            ctx.cte_results[op.cte_id] = cached
    yield from cached


# -- joins ---------------------------------------------------------------------


def _materialize(op: LogicalOperator,
                 ctx: ExecutionContext,
                 chunks: list[DataChunk] | None = None
                 ) -> list[Vector] | None:
    """Materialize a plan into whole-relation column vectors.

    ``chunks`` short-circuits execution when the caller already drained
    the child (the spill watermark probe that stayed under the limit)."""
    if chunks is None:
        chunks = list(execute_plan(op, ctx))
    if not chunks:
        return None
    columns = []
    for i in range(len(chunks[0].vectors)):
        columns.append(concat_vectors([c.column(i) for c in chunks]))
    if ctx.stats is not None:
        ctx.stats.bump("executor.materializations")
        ctx.stats.bump("executor.materialized_chunks", len(chunks))
        ctx.stats.gauge_max(
            "executor.peak_materialized_rows", len(columns[0])
        )
    return columns


def _execute_join(op: LogicalJoin, ctx: ExecutionContext
                  ) -> Iterator[DataChunk]:
    if op.index_probe is not None and not op.equi_keys:
        yield from _index_nl_join(op, ctx)
        return
    right_chunks: list[DataChunk] | None = None
    if (
        ctx.memory_limit_bytes is not None
        and op.equi_keys
        and op.join_type == "inner"
    ):
        buffered, overflow = _watermark_buffer(op.right, ctx)
        if overflow is not None:
            yield from _grace_hash_join(op, buffered, overflow, ctx)
            return
        right_chunks = buffered
    right_columns = _materialize(op.right, ctx, chunks=right_chunks)
    right_count = len(right_columns[0]) if right_columns else 0
    right_types = op.right.output_types()

    if op.equi_keys:
        yield from _hash_join(op, right_columns, right_count, right_types,
                              ctx)
        return
    # Block nested-loop join (also covers cross products).
    left_width = len(op.left.output_types())
    for left_chunk in execute_plan(op.left, ctx):
        n = left_chunk.count
        if right_count == 0:
            if op.join_type == "left":
                yield _pad_unmatched(left_chunk, right_types)
            continue
        left_idx = np.repeat(np.arange(n), right_count)
        right_idx = np.tile(np.arange(right_count), n)
        combined = DataChunk(
            [v.take(left_idx) for v in left_chunk.vectors]
            + [v.take(right_idx) for v in right_columns]
        )
        if op.residual is not None:
            mask = boolean_selection(evaluate(op.residual, combined, ctx))
            matched = combined.slice(mask)
            if op.join_type == "left":
                matched_left = np.zeros(n, dtype=np.bool_)
                matched_left[left_idx[mask]] = True
                yield from _emit_left_padding(
                    left_chunk, matched_left, right_types
                )
            if matched.count:
                yield matched
        else:
            if combined.count:
                yield combined


def _index_nl_join(op: LogicalJoin,
                   ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Index nested-loop join: probe the right table's index per left row.

    When kernels are enabled and the index offers a batch entry point,
    the whole left chunk is probed in one index traversal and all
    matched rows are gathered with a single ``table.fetch`` into one
    combined chunk; otherwise (kernels disabled, or an index without a
    batch path) each left row probes/fetches/emits on its own.
    """
    index, op_name, left_expr = op.index_probe
    table = index.table
    right_types = op.right.output_types()
    qstats = ctx.stats
    if ctx.can_parallel() and (
        ctx.profiler is None
        or (_subquery_free(left_expr)
            and (op.residual is None or _subquery_free(op.residual)))
    ):
        # Index probes and table fetches are read-only (lazy segment
        # sealing is lock-guarded), so whole left chunks scatter to
        # workers; profiler annotations travel back as notes.
        trace = ctx.trace

        def probe_chunk(left_chunk: DataChunk, worker_stats):
            opened = time.perf_counter()
            wctx = ctx.worker_child(
                worker_stats if qstats is not None else None
            )
            out = _index_nl_join_chunk(
                op, left_chunk, index, op_name, left_expr, table,
                right_types, wctx
            )
            if trace is not None:
                trace.emit(
                    "index_nl_probe", "morsel", opened,
                    time.perf_counter() - opened, rows=left_chunk.count,
                    args={
                        "rows_out": sum(c.count for c in out[0]),
                    },
                )
            return out

        produced = _parallel.ordered_map(
            ctx.pool, execute_plan(op.left, ctx), probe_chunk, qstats
        )
        if qstats is not None:
            qstats.bump("parallel.batches")
        try:
            for chunks, notes in produced:
                if qstats is not None:
                    qstats.bump("parallel.morsels")
                _annotate_join(op, notes, ctx)
                yield from chunks
        finally:
            produced.close()
        return
    for left_chunk in execute_plan(op.left, ctx):
        chunks, notes = _index_nl_join_chunk(
            op, left_chunk, index, op_name, left_expr, table, right_types,
            ctx
        )
        _annotate_join(op, notes, ctx)
        yield from chunks


def _annotate_join(op: LogicalJoin, notes: dict[str, int],
                   ctx: ExecutionContext) -> None:
    if ctx.profiler is not None:
        for key_name, n in notes.items():
            ctx.profiler.annotate(op, key_name, n)


def _index_nl_join_chunk(op: LogicalJoin, left_chunk: DataChunk,
                         index, op_name: str, left_expr, table,
                         right_types,
                         ctx: ExecutionContext
                         ) -> tuple[list[DataChunk], dict[str, int]]:
    """Probe/fetch/combine one left chunk; profiler work is returned as
    ``notes`` so workers never touch the (unsynchronized) profiler."""
    notes: dict[str, int] = {}
    qstats = ctx.stats
    n = left_chunk.count
    probe_vector = evaluate(left_expr, left_chunk, ctx)
    id_lists = None
    if kernels.kernels_enabled():
        id_lists = index.probe_batch(
            op_name, [probe_vector.value(i) for i in range(n)]
        )
    if id_lists is None:
        return _index_nl_join_row_loop(
            op, left_chunk, probe_vector, index, op_name, table,
            right_types, ctx, notes
        ), notes
    if _verification.VERIFICATION_ENABLED:
        _crosscheck_index_probe(op, index, op_name, probe_vector,
                                id_lists, ctx)
    probes = sum(
        1 for i in range(n) if probe_vector.validity[i]
    )
    if probes:
        if qstats is not None:
            qstats.bump("executor.join_index_probes", probes)
            qstats.bump("executor.join_index_batches")
        notes["index_probes"] = probes
        notes["batches"] = 1
    out: list[DataChunk] = []
    left_rep: list[int] = []
    row_ids: list[int] = []
    for i, ids in enumerate(id_lists):
        if not ids:
            continue
        live = table.live_row_ids(sorted(ids))
        row_ids.extend(live)
        left_rep.extend([i] * len(live))
    matched = np.zeros(n, dtype=np.bool_)
    if row_ids:
        right_chunk = table.fetch(np.asarray(row_ids, dtype=np.int64))
        li = np.asarray(left_rep, dtype=np.int64)
        combined = DataChunk(
            [v.take(li) for v in left_chunk.vectors]
            + right_chunk.vectors
        )
        if op.residual is not None:
            mask = boolean_selection(
                evaluate(op.residual, combined, ctx)
            )
            combined = combined.slice(mask)
            matched[li[mask]] = True
        else:
            matched[li] = True
        if combined.count:
            out.append(combined)
    if op.join_type == "left":
        out.extend(_emit_left_padding(left_chunk, matched, right_types))
    return out, notes


def _crosscheck_index_probe(op: LogicalJoin, index, op_name: str,
                            probe_vector: Vector, id_lists,
                            ctx: ExecutionContext) -> None:
    """Re-probe the index row-at-a-time and compare candidate sets
    against the batch traversal's output."""
    from ..analysis.errors import VerificationError

    where = f"{op._explain_label()} {index.name}.probe_batch"
    for i, ids in enumerate(id_lists):
        value = probe_vector.value(i)
        expected = index.probe(op_name, value) if value is not None else None
        got_set = set(map(int, ids)) if ids else set()
        expected_set = set(map(int, expected)) if expected else set()
        if got_set != expected_set:
            raise VerificationError(
                f"kernel/fallback divergence in {where}: probe row {i} — "
                f"batch candidates {sorted(got_set)[:16]}, per-row probe "
                f"{sorted(expected_set)[:16]}"
            )
    if ctx.stats is not None:
        ctx.stats.bump("verify.kernel_crosschecks")


def _index_nl_join_row_loop(op: LogicalJoin, left_chunk: DataChunk,
                            probe_vector: Vector, index, op_name: str,
                            table, right_types, ctx: ExecutionContext,
                            notes: dict[str, int]) -> list[DataChunk]:
    """Per-row probe fallback (kernels disabled / no batch entry point)."""
    qstats = ctx.stats
    out: list[DataChunk] = []
    matched = np.zeros(left_chunk.count, dtype=np.bool_)
    for i in range(left_chunk.count):
        value = probe_vector.value(i)
        if value is None:
            continue
        if qstats is not None:
            qstats.bump("executor.join_index_probes")
        notes["index_probes"] = notes.get("index_probes", 0) + 1
        ids = index.probe(op_name, value)
        if not ids:
            continue
        live = table.live_row_ids(sorted(ids))
        if not live:
            continue
        right_chunk = table.fetch(np.asarray(live, dtype=np.int64))
        count = right_chunk.count
        combined = DataChunk(
            [v.take(np.full(count, i, dtype=np.int64))
             for v in left_chunk.vectors]
            + right_chunk.vectors
        )
        if op.residual is not None:
            mask = boolean_selection(
                evaluate(op.residual, combined, ctx)
            )
            combined = combined.slice(mask)
        if combined.count:
            matched[i] = True
            out.append(combined)
    if op.join_type == "left":
        out.extend(_emit_left_padding(left_chunk, matched, right_types))
    return out


def _hash_join(op: LogicalJoin, right_columns, right_count, right_types,
               ctx: ExecutionContext) -> Iterator[DataChunk]:
    kstats = _kernel_stats(op, ctx)
    qstats = ctx.stats
    # Build phase on the right side: factorize-encode the equi-keys and
    # group build rows by code (kernel), or fall back to the dict build.
    key_vectors: list[Vector] = []
    build = None
    partitioned = False
    hash_table: dict[tuple, list[int]] | None = None
    if right_count:
        right_chunk = DataChunk(right_columns)
        key_vectors = [
            evaluate(right_key, right_chunk, ctx)
            for _, right_key in op.equi_keys
        ]
        if kernels.kernels_enabled():
            if ctx.can_parallel():
                build = _parallel.PartitionedJoinBuild.build(
                    ctx.pool, key_vectors, right_count, qstats,
                    trace=ctx.trace,
                )
                partitioned = build is not None
                if partitioned and qstats is not None:
                    qstats.bump("parallel.batches")
                    qstats.bump("parallel.build_partitions",
                                build.partitions)
                    qstats.bump("parallel.morsels", build.partitions)
            if build is None:
                try:
                    build = kernels.JoinBuild(key_vectors, right_count)
                except KernelFallback:
                    build = None
        if build is None:
            hash_table = _hash_join_dict_build(key_vectors, right_count)
        if qstats is not None:
            qstats.bump("executor.join_build_rows", right_count)
            qstats.bump(
                "executor.join_kernel_builds" if build is not None
                else "executor.join_fallback_builds"
            )
        if kstats is not None:
            if build is not None:
                kstats.kernel += 1
            else:
                kstats.fallback += 1
    # Probe with left chunks.
    for left_chunk in execute_plan(op.left, ctx):
        n = left_chunk.count
        if right_count == 0:
            if op.join_type == "left":
                yield _pad_unmatched(left_chunk, right_types)
            continue
        if kstats is not None:
            kstats.rows_in += n
        if qstats is not None:
            qstats.bump("executor.join_probe_rows", n)
        probe_vectors = [
            evaluate(left_key, left_chunk, ctx)
            for left_key, _ in op.equi_keys
        ]
        li = ri = None
        if build is not None:
            try:
                li, ri = build.probe(probe_vectors, n)
            except KernelFallback:
                li = None
        if li is not None:
            if kstats is not None:
                kstats.kernel += 1
            if qstats is not None:
                qstats.bump("executor.join_kernel_probes")
                qstats.bump("quack.kernel_ops")
            if _verification.VERIFICATION_ENABLED:
                from ..analysis.verifier import assert_join_pairs_match

                if hash_table is None:
                    hash_table = _hash_join_dict_build(key_vectors,
                                                       right_count)
                expected = _hash_join_dict_probe(hash_table,
                                                 probe_vectors, n)
                assert_join_pairs_match(
                    (li, ri), expected,
                    f"{op._explain_label()} JoinBuild.probe",
                )
                if qstats is not None:
                    qstats.bump("verify.kernel_crosschecks")
                    if partitioned:
                        # The dict reference doubles as the serial
                        # reference: the merged partition pairs matched
                        # the exact serial probe order.
                        qstats.bump("verify.parallel_crosschecks")
        else:
            if hash_table is None:
                # A probe chunk the kernel declined (e.g. key physical
                # type mismatch): build the dict side once, lazily.
                hash_table = _hash_join_dict_build(key_vectors,
                                                   right_count)
            li, ri = _hash_join_dict_probe(hash_table, probe_vectors, n)
            if kstats is not None:
                kstats.fallback += 1
            if qstats is not None:
                qstats.bump("executor.join_fallback_probes")
                qstats.bump("quack.fallback_ops")
        matched = np.zeros(n, dtype=np.bool_)
        if len(li):
            combined = DataChunk(
                [v.take(li) for v in left_chunk.vectors]
                + [v.take(ri) for v in right_columns]
            )
            if op.residual is not None:
                mask = boolean_selection(
                    evaluate(op.residual, combined, ctx)
                )
                combined = combined.slice(mask)
                matched[li[mask]] = True
            else:
                matched[li] = True
            if op.join_type == "left":
                yield from _emit_left_padding(left_chunk, matched,
                                              right_types)
            if combined.count:
                yield combined
        elif op.join_type == "left":
            yield from _emit_left_padding(left_chunk, matched, right_types)


def _hash_join_dict_build(key_vectors: list[Vector],
                          right_count: int) -> dict[tuple, list[int]]:
    """Row-wise build fallback, keyed through ``hashable_key`` so NaN and
    -0.0 keys behave exactly like the kernel (and the pgsim engine)."""
    hash_table: dict[tuple, list[int]] = {}
    for i in range(right_count):
        if not all(kv.validity[i] for kv in key_vectors):
            continue
        key = tuple(_hashable(kv.value(i)) for kv in key_vectors)
        hash_table.setdefault(key, []).append(i)
    return hash_table


def _hash_join_dict_probe(
    hash_table: dict[tuple, list[int]], probe_vectors: list[Vector], n: int
) -> tuple[np.ndarray, np.ndarray]:
    left_idx: list[int] = []
    right_idx: list[int] = []
    for i in range(n):
        if not all(pv.validity[i] for pv in probe_vectors):
            continue
        key = tuple(_hashable(pv.value(i)) for pv in probe_vectors)
        bucket = hash_table.get(key)
        if not bucket:
            continue
        left_idx.extend([i] * len(bucket))
        right_idx.extend(bucket)
    return (np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64))


def _emit_left_padding(left_chunk: DataChunk, matched: np.ndarray,
                       right_types) -> Iterator[DataChunk]:
    """Pad the rows of ``left_chunk`` whose ``matched`` mask slot is
    False with NULL right columns (LEFT JOIN semantics)."""
    unmatched = ~matched
    if not unmatched.any():
        return
    sliced = left_chunk.slice(unmatched)
    yield _pad_unmatched(sliced, right_types)


def _pad_unmatched(left_chunk: DataChunk, right_types) -> DataChunk:
    count = left_chunk.count
    pads = [Vector.constant(t, None, count) for t in right_types]
    return DataChunk(left_chunk.vectors + pads)


# -- aggregation --------------------------------------------------------------------


def _execute_aggregate(op: LogicalAggregate,
                       ctx: ExecutionContext) -> Iterator[DataChunk]:
    kstats = _kernel_stats(op, ctx)
    out_types = op.output_types()
    chunks: list[DataChunk] | None = None
    if ctx.memory_limit_bytes is not None:
        buffered, overflow = _watermark_buffer(op.child, ctx)
        if overflow is not None:
            yield from _spilled_aggregate(op, buffered, overflow, ctx)
            return
        chunks = buffered
    columns = _materialize(op.child, ctx, chunks=chunks)
    if columns is None:
        if not op.groups:
            # Aggregates over an empty input produce one row of finals.
            finals = tuple(
                spec.function.final(spec.function.init())
                for spec in op.aggregates
            )
            yield from _rows_to_chunks([finals], out_types)
        return
    full = DataChunk(columns)
    count = full.count
    if kstats is not None:
        kstats.rows_in += count

    if not kernels.kernels_enabled():
        if kstats is not None:
            kstats.fallback += max(1, len(op.aggregates))
        if ctx.stats is not None:
            ctx.stats.bump("quack.fallback_ops",
                           max(1, len(op.aggregates)))
        yield from _aggregate_row_loop(op, full, ctx, out_types)
        return

    out: DataChunk | None = None
    if (
        ctx.can_parallel()
        and count >= _parallel.MIN_PARALLEL_ROWS
        and (ctx.profiler is None or all(
            _subquery_free(e)
            for e in [*op.groups,
                      *(a for spec in op.aggregates for a in spec.args)]
        ))
    ):
        out = _aggregate_parallel(op, full, count, ctx, kstats)
    if out is None:
        group_vectors = [evaluate(g, full, ctx) for g in op.groups]
        codes, representatives, n_groups = _aggregate_codes(
            op, group_vectors, count, ctx
        )
        result = [gv.take(representatives) for gv in group_vectors]
        arg_vectors = [
            [evaluate(arg, full, ctx) for arg in spec.args]
            for spec in op.aggregates
        ]
        result.extend(
            _aggregate_specs_reduce(op, arg_vectors, codes, n_groups, ctx,
                                    kstats)
        )
        out = DataChunk(result)
    n_out = out.count
    for start in range(0, n_out, STANDARD_VECTOR_SIZE):
        yield out.slice(
            np.arange(start, min(start + STANDARD_VECTOR_SIZE, n_out))
        )


def _aggregate_codes(op: LogicalAggregate, group_vectors: list[Vector],
                     count: int, ctx: ExecutionContext
                     ) -> tuple[np.ndarray, np.ndarray, int]:
    """Factorize the grouping columns into (codes, representatives,
    n_groups); the no-GROUP-BY case is one implicit group."""
    if group_vectors:
        codes, representatives = kernels.factorize(group_vectors, count)
        n_groups = len(representatives)
        if _verification.VERIFICATION_ENABLED:
            _crosscheck_factorize(op, group_vectors, codes,
                                  representatives, count, ctx)
    else:
        codes = np.zeros(count, dtype=np.int64)
        representatives = np.zeros(1, dtype=np.int64)
        n_groups = 1
    return codes, representatives, n_groups


def _aggregate_specs_reduce(op: LogicalAggregate,
                            arg_vectors: list[list[Vector]],
                            codes: np.ndarray, n_groups: int,
                            ctx: ExecutionContext,
                            kstats) -> list[Vector]:
    """Reduce every aggregate spec over pre-evaluated argument vectors
    (step_batch kernel with crosscheck, else the row loop)."""
    result: list[Vector] = []
    for a, spec in enumerate(op.aggregates):
        vec: Vector | None = None
        if spec.function.step_batch is not None and not spec.distinct:
            vec = spec.function.step_batch(arg_vectors[a], codes,
                                           n_groups, spec.ltype)
        if vec is not None:
            if kstats is not None:
                kstats.kernel += 1
            if ctx.stats is not None:
                ctx.stats.bump("quack.kernel_ops")
            if _verification.VERIFICATION_ENABLED:
                from ..analysis.verifier import assert_vectors_match

                reference = _aggregate_spec_row_loop(spec, arg_vectors[a],
                                                     codes, n_groups)
                assert_vectors_match(
                    vec, reference,
                    f"{op._explain_label()} "
                    f"{spec.function.name}.step_batch",
                )
                if ctx.stats is not None:
                    ctx.stats.bump("verify.kernel_crosschecks")
        else:
            if kstats is not None:
                kstats.fallback += 1
            if ctx.stats is not None:
                ctx.stats.bump("quack.fallback_ops")
            vec = _aggregate_spec_row_loop(spec, arg_vectors[a], codes,
                                           n_groups)
        result.append(vec)
    return result


def _aggregate_parallel(op: LogicalAggregate, full: DataChunk, count: int,
                        ctx: ExecutionContext,
                        kstats) -> DataChunk | None:
    """Morsel-parallel aggregation: workers evaluate the grouping and
    argument expressions per morsel and — when every spec declares a
    ``combine`` kernel — pre-reduce thread-local partials; the
    coordinator maps morsel-local groups to global codes and combines.
    Non-combinable specs (avg, list, string_agg, DISTINCT) still get
    parallel expression evaluation, then a serial reduce over the
    concatenated vectors.  Returns None to take the serial path."""
    qstats = ctx.stats
    ranges = _parallel.morsel_ranges(count, ctx.workers)
    if len(ranges) <= 1:
        return None
    combinable = all(
        spec.function.step_batch is not None
        and spec.function.combine is not None
        and not spec.distinct
        for spec in op.aggregates
    )

    trace = ctx.trace

    def eval_morsel(bounds: tuple[int, int], worker_stats):
        start, end = bounds
        opened = time.perf_counter()
        wctx = ctx.worker_child(
            worker_stats if qstats is not None else None
        )
        morsel = DataChunk(_parallel.row_range(full.vectors, start, end))
        gvs = [evaluate(g, morsel, wctx) for g in op.groups]
        avs = [
            [evaluate(a, morsel, wctx) for a in spec.args]
            for spec in op.aggregates
        ]
        partial = (
            _aggregate_morsel_partial(op, gvs, avs, end - start)
            if combinable else None
        )
        if trace is not None:
            trace.emit(
                "aggregate_morsel", "morsel", opened,
                time.perf_counter() - opened, rows=end - start,
            )
        return gvs, avs, partial

    results = _parallel.run_tasks(
        ctx.pool,
        [lambda ws, b=bounds: eval_morsel(b, ws) for bounds in ranges],
        qstats,
    )
    if qstats is not None:
        qstats.bump("parallel.batches")
        qstats.bump("parallel.morsels", len(ranges))
    group_vectors = [
        concat_vectors([r[0][g] for r in results])
        for g in range(len(op.groups))
    ]
    codes, representatives, n_groups = _aggregate_codes(
        op, group_vectors, count, ctx
    )
    result = [gv.take(representatives) for gv in group_vectors]
    agg_vecs: list[Vector] | None = None
    partials = [r[2] for r in results]
    if combinable and all(p is not None for p in partials):
        agg_vecs = _aggregate_combine_partials(op, partials, ranges,
                                               codes, n_groups)
        if agg_vecs is not None:
            if qstats is not None and op.aggregates:
                qstats.bump("parallel.agg_partials", len(op.aggregates))
                qstats.bump("quack.kernel_ops", len(op.aggregates))
            if kstats is not None:
                kstats.kernel += len(op.aggregates)
    arg_vectors: list[list[Vector]] | None = None
    if agg_vecs is None or _verification.VERIFICATION_ENABLED:
        arg_vectors = [
            [
                concat_vectors([r[1][a][i] for r in results])
                for i in range(len(spec.args))
            ]
            for a, spec in enumerate(op.aggregates)
        ]
    if agg_vecs is None:
        agg_vecs = _aggregate_specs_reduce(op, arg_vectors, codes,
                                           n_groups, ctx, kstats)
    elif _verification.VERIFICATION_ENABLED:
        # The combine path took a different reduction shape: recompute
        # serially from the same evaluated vectors and compare rows.
        _crosscheck_parallel_aggregate(op, result, agg_vecs, arg_vectors,
                                       codes, n_groups, ctx)
    return DataChunk(result + agg_vecs)


def _aggregate_morsel_partial(op: LogicalAggregate,
                              group_vectors: list[Vector],
                              arg_vectors: list[list[Vector]],
                              m: int):
    """One morsel's thread-local partial: (local representative rows,
    one partial vector per spec), or None when a kernel declines."""
    try:
        if group_vectors:
            codes, reps = kernels.factorize(group_vectors, m)
        else:
            codes = np.zeros(m, dtype=np.int64)
            reps = np.zeros(1, dtype=np.int64)
    except KernelFallback:
        return None
    n_local = len(reps)
    parts: list[Vector] = []
    for a, spec in enumerate(op.aggregates):
        vec = spec.function.step_batch(arg_vectors[a], codes, n_local,
                                       spec.ltype)
        if vec is None:
            return None
        parts.append(vec)
    return reps, parts


def _aggregate_combine_partials(op: LogicalAggregate, partials,
                                ranges: list[tuple[int, int]],
                                codes: np.ndarray,
                                n_groups: int) -> list[Vector] | None:
    """Merge per-morsel partials: each partial row belongs to the global
    group of its morsel-local representative row (``codes[start + rep]``);
    partials concatenate in morsel order so order-sensitive combines
    (min/max ties, first) resolve exactly like the serial scan."""
    merged_codes = np.concatenate([
        codes[start + reps]
        for (start, _), (reps, _) in zip(ranges, partials)
    ])
    out: list[Vector] = []
    for a, spec in enumerate(op.aggregates):
        merged = concat_vectors([parts[a] for _, parts in partials])
        vec = spec.function.combine([merged], merged_codes, n_groups,
                                    spec.ltype)
        if vec is None:
            return None
        out.append(vec)
    return out


def _crosscheck_parallel_aggregate(op: LogicalAggregate,
                                   group_columns: list[Vector],
                                   agg_vecs: list[Vector],
                                   arg_vectors: list[list[Vector]],
                                   codes: np.ndarray, n_groups: int,
                                   ctx: ExecutionContext) -> None:
    """Recompute the combined-partials result with the serial per-spec
    reduce over the same evaluated vectors and compare row-for-row."""
    from ..analysis.verifier import assert_rows_match

    ref_ctx = ctx.worker_child(None)
    reference = _aggregate_specs_reduce(op, arg_vectors, codes, n_groups,
                                        ref_ctx, None)
    assert_rows_match(
        DataChunk(group_columns + agg_vecs).rows(),
        DataChunk(group_columns + reference).rows(),
        f"{op._explain_label()} parallel aggregate combine",
    )
    if ctx.stats is not None:
        ctx.stats.bump("verify.parallel_crosschecks")


def _aggregate_spec_row_loop(spec, arg_vectors: list[Vector],
                             codes: np.ndarray, n_groups: int) -> Vector:
    """Row-wise fallback for one aggregate (DISTINCT, extension-registered
    aggregates, or kernels that declined the payload type)."""
    fn = spec.function
    states = [fn.init() for _ in range(n_groups)]
    seen: list[set] | None = (
        [set() for _ in range(n_groups)] if spec.distinct else None
    )
    for i in range(len(codes)):
        values = [vec.value(i) for vec in arg_vectors]
        if values and not fn.accepts_null and any(
            v is None for v in values
        ):
            continue
        group = codes[i]
        if seen is not None:
            marker = tuple(_hashable(v) for v in values)
            if marker in seen[group]:
                continue
            seen[group].add(marker)
        states[group] = fn.step(states[group], *values)
    return Vector.from_values(spec.ltype, [fn.final(s) for s in states])


def _crosscheck_factorize(op: LogicalOperator, vectors: list[Vector],
                          codes: np.ndarray, representatives: np.ndarray,
                          count: int, ctx: ExecutionContext) -> None:
    """Re-derive the grouping with the row-wise seen-dict fallback and
    compare codes and representatives against the factorize kernel."""
    from ..analysis.verifier import assert_index_lists_match

    expected_codes: list[int] = []
    expected_reps: list[int] = []
    first: dict[tuple, int] = {}
    for i in range(count):
        key = tuple(_hashable(v.value(i)) for v in vectors)
        code = first.get(key)
        if code is None:
            code = len(first)
            first[key] = code
            expected_reps.append(i)
        expected_codes.append(code)
    where = f"{op._explain_label()} kernels.factorize"
    assert_index_lists_match(list(codes), expected_codes, where)
    assert_index_lists_match(list(representatives), expected_reps, where)
    if ctx.stats is not None:
        ctx.stats.bump("verify.kernel_crosschecks")


def _aggregate_row_loop(op: LogicalAggregate, full: DataChunk,
                        ctx: ExecutionContext,
                        out_types: list[LogicalType]
                        ) -> Iterator[DataChunk]:
    """The pre-kernel tuple-at-a-time aggregation (kernels disabled)."""
    results = _aggregate_fold(
        op, [(full, list(range(full.count)))], ctx
    )
    yield from _rows_to_chunks([row for _, row in results], out_types)


def _aggregate_fold(op: LogicalAggregate,
                    blocks: list[tuple[DataChunk, list[int]]],
                    ctx: ExecutionContext) -> list[tuple[int, tuple]]:
    """Tuple-at-a-time aggregation over ``(chunk, global_indices)``
    blocks; shared by the row-loop fallback (one whole-relation block)
    and the spilled per-partition fold.

    Returns ``(first_global_index, output_row)`` pairs in
    first-appearance order of the group keys within ``blocks``."""
    groups: dict[tuple, list] = {}
    group_values: dict[tuple, tuple] = {}
    distinct_seen: dict[tuple, list[set]] = {}
    first_index: dict[tuple, int] = {}
    for chunk, global_indices in blocks:
        group_vectors = [evaluate(g, chunk, ctx) for g in op.groups]
        arg_vectors = [
            [evaluate(a, chunk, ctx) for a in spec.args]
            for spec in op.aggregates
        ]
        for i in range(chunk.count):
            key = tuple(_hashable(gv.value(i)) for gv in group_vectors)
            state = groups.get(key)
            if state is None:
                state = [spec.function.init() for spec in op.aggregates]
                groups[key] = state
                group_values[key] = tuple(
                    gv.value(i) for gv in group_vectors
                )
                distinct_seen[key] = [set() for _ in op.aggregates]
                first_index[key] = int(global_indices[i])
            for a, spec in enumerate(op.aggregates):
                values = [vec.value(i) for vec in arg_vectors[a]]
                if values and not spec.function.accepts_null and any(
                    v is None for v in values
                ):
                    continue
                if spec.distinct:
                    marker = tuple(_hashable(v) for v in values)
                    if marker in distinct_seen[key][a]:
                        continue
                    distinct_seen[key][a].add(marker)
                state[a] = spec.function.step(state[a], *values)
    results = []
    for key, state in groups.items():
        finals = [
            spec.function.final(s)
            for spec, s in zip(op.aggregates, state)
        ]
        results.append(
            (first_index[key], tuple(group_values[key]) + tuple(finals))
        )
    return results


def _rows_to_chunks(rows: list[tuple],
                    types: list[LogicalType]) -> Iterator[DataChunk]:
    for start in range(0, len(rows), STANDARD_VECTOR_SIZE):
        block = rows[start : start + STANDARD_VECTOR_SIZE]
        yield DataChunk(
            [
                Vector.from_values(t, [row[c] for row in block])
                for c, t in enumerate(types)
            ]
        )


# -- spilling -----------------------------------------------------------------------
#
# ``SET memory_limit = <MB>`` arms a watermark on the three blocking
# sinks (sort, hash-join build, aggregation).  Each sink first streams
# its input while counting working-set bytes; inputs that stay under
# the watermark take the exact in-memory path (the buffered chunks are
# handed to ``_materialize``), so spill-off executions are untouched.
# Past the watermark the sink switches to a disk-backed algorithm that
# reproduces the in-memory row order bit-for-bit:
#
# * sort      — bounded sorted runs + stable ``heapq.merge`` with the
#               same ``sort_comparator`` key (stable merge of stable
#               runs in global row order == the serial stable sort);
# * aggregate — hash partitioning on the group key, per-partition
#               row-loop fold carrying each group's first-occurrence
#               global row index, final merge sorted by that index
#               (== first-appearance order of every in-memory path);
# * hash join — Grace partitioning of both sides tagged with global
#               row indices; per-partition dict build/probe emits
#               (left, right) pairs sorted within the partition, and a
#               k-way merge on (left, right) reproduces the in-memory
#               probe-major order.  Only inner equi-joins spill; LEFT
#               joins and index nested-loop joins keep their build side
#               in memory (the documented scale ceiling).
#
# Partitions assume the classic Grace bound: each of the
# ``_SPILL_PARTITIONS`` partitions (~1/8 of the input) must fit in
# memory during its build/fold — inputs needing recursive partitioning
# are out of scope.

_SPILL_PARTITIONS = 8


def _watermark_buffer(child: LogicalOperator, ctx: ExecutionContext
                      ) -> tuple[list[DataChunk], Iterator[DataChunk] | None]:
    """Stream ``child`` until the memory watermark.

    Returns ``(buffered, overflow)``: ``overflow`` is None when the
    whole input fit under ``ctx.memory_limit_bytes`` (take the
    in-memory path with ``buffered``), otherwise it continues the
    stream past the buffered prefix and the caller must spill."""
    source = execute_plan(child, ctx)
    limit = ctx.memory_limit_bytes
    if limit is None:
        return list(source), None
    buffered: list[DataChunk] = []
    used = 0
    for chunk in source:
        buffered.append(chunk)
        used += _storage.chunk_nbytes(chunk)
        if used > limit:
            return buffered, source
    return buffered, None


def _chain_chunks(buffered: list[DataChunk],
                  overflow: Iterator[DataChunk] | None
                  ) -> Iterator[DataChunk]:
    yield from buffered
    if overflow is not None:
        yield from overflow


def _rows_stream_to_chunks(rows: Iterator[tuple],
                           types: list[LogicalType]
                           ) -> Iterator[DataChunk]:
    """Re-chunk a row stream without materializing it whole (the merge
    phase of every spill path)."""

    def emit(block: list[tuple]) -> DataChunk:
        return DataChunk(
            [
                Vector.from_values(t, [row[c] for row in block])
                for c, t in enumerate(types)
            ]
        )

    block: list[tuple] = []
    for row in rows:
        block.append(row)
        if len(block) == STANDARD_VECTOR_SIZE:
            yield emit(block)
            block = []
    if block:
        yield emit(block)


def _external_sort(op: LogicalSort, buffered: list[DataChunk],
                   overflow: Iterator[DataChunk],
                   ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Past-watermark ORDER BY: bounded sorted runs spilled to disk,
    merged with a stable k-way merge under the same comparator."""
    limit = ctx.memory_limit_bytes
    kstats = _kernel_stats(op, ctx)
    key_specs = [(asc, nf) for _, asc, nf in op.keys]
    comparator = kernels.sort_comparator(key_specs)
    runs: list[_storage.SpillFile] = []

    def flush_run(chunks: list[DataChunk]) -> None:
        total = sum(c.count for c in chunks)
        if not total:
            return
        full = DataChunk(
            [
                concat_vectors([c.column(i) for c in chunks])
                for i in range(len(chunks[0].vectors))
            ]
        )
        if kstats is not None:
            kstats.rows_in += total
        key_vectors = [evaluate(k, full, ctx) for k, _, _ in op.keys]
        keyed = sorted(
            (
                (full.row(i), tuple(kv.value(i) for kv in key_vectors))
                for i in range(total)
            ),
            key=comparator,
        )
        run = _storage.SpillFile()
        # Hand the run to the cleanup list *before* writing: if the
        # write raises mid-spill, the enclosing finally still closes it.
        runs.append(run)
        run.write_rows(keyed)

    try:
        pending: list[DataChunk] = []
        used = 0
        for chunk in _chain_chunks(buffered, overflow):
            pending.append(chunk)
            used += _storage.chunk_nbytes(chunk)
            if used > limit:
                flush_run(pending)
                pending = []
                used = 0
        flush_run(pending)
        if ctx.stats is not None:
            ctx.stats.bump("storage.spilled_sorts")
            ctx.stats.bump("storage.spill_runs", len(runs))
        if ctx.profiler is not None:
            ctx.profiler.annotate(op, "spill_runs", len(runs))
        # Runs hold ascending global row ranges and heapq.merge breaks
        # key ties by iterable position, so the merge is the stable
        # serial sort's exact order.
        merged = heapq.merge(
            *(run.read_rows() for run in runs), key=comparator
        )
        yield from _rows_stream_to_chunks(
            (row for row, _ in merged), op.output_types()
        )
    finally:
        for run in runs:
            run.close()


def _spilled_aggregate(op: LogicalAggregate, buffered: list[DataChunk],
                       overflow: Iterator[DataChunk],
                       ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Past-watermark GROUP BY: hash-partition rows on the group key,
    fold each partition with the row-loop semantics, merge group rows
    by first-occurrence global row index."""
    kstats = _kernel_stats(op, ctx)
    child_types = op.child.output_types()
    # Partitions are allocated inside the try: extend() appends each
    # spill file as it is created, so a failure partway through still
    # leaves every opened handle in the list the finally closes.
    parts: list[_storage.SpillFile] = []
    try:
        parts.extend(_storage.SpillFile()
                     for _ in range(_SPILL_PARTITIONS))
        base = 0
        for chunk in _chain_chunks(buffered, overflow):
            if not chunk.count:
                continue
            if kstats is not None:
                kstats.rows_in += chunk.count
            group_vectors = [evaluate(g, chunk, ctx) for g in op.groups]
            pending: list[list[tuple]] = [[] for _ in parts]
            for i in range(chunk.count):
                key = tuple(
                    _hashable(gv.value(i)) for gv in group_vectors
                )
                pending[hash(key) % _SPILL_PARTITIONS].append(
                    (base + i, chunk.row(i))
                )
            for part, rows in zip(parts, pending):
                if rows:
                    part.write_rows(rows)
            base += chunk.count
        if ctx.stats is not None:
            ctx.stats.bump("storage.spilled_aggregates")
            ctx.stats.bump("storage.spill_partitions", len(parts))
        if ctx.profiler is not None:
            ctx.profiler.annotate(op, "spill_partitions", len(parts))
        results: list[tuple[int, tuple]] = []
        for part in parts:
            indexed = list(part.read_rows())
            if not indexed:
                continue
            blocks = []
            for start in range(0, len(indexed), STANDARD_VECTOR_SIZE):
                block = indexed[start : start + STANDARD_VECTOR_SIZE]
                blocks.append(
                    (
                        DataChunk(
                            [
                                Vector.from_values(
                                    t, [row[c] for _, row in block]
                                )
                                for c, t in enumerate(child_types)
                            ]
                        ),
                        [gidx for gidx, _ in block],
                    )
                )
            results.extend(_aggregate_fold(op, blocks, ctx))
        # First-occurrence global index order == the first-appearance
        # group order of both in-memory paths (factorize renumbers by
        # first appearance; the row loop is insertion-ordered).
        results.sort(key=lambda item: item[0])
        yield from _rows_to_chunks(
            [row for _, row in results], op.output_types()
        )
    finally:
        for part in parts:
            part.close()


def _grace_hash_join(op: LogicalJoin, right_buffered: list[DataChunk],
                     right_overflow: Iterator[DataChunk],
                     ctx: ExecutionContext) -> Iterator[DataChunk]:
    """Past-watermark inner equi-join: Grace hash partitioning of both
    sides with global row indices, per-partition dict build + probe,
    k-way merge on (left, right) index pairs."""
    kstats = _kernel_stats(op, ctx)
    qstats = ctx.stats
    # Allocated inside the try below (not here): creating sixteen temp
    # files can fail partway, and handles created before a try are
    # orphaned when a later allocation raises.
    build_parts: list[_storage.SpillFile] = []
    probe_parts: list[_storage.SpillFile] = []

    def scatter(chunk: DataChunk, key_exprs: list, base: int,
                parts: list) -> None:
        key_vectors = [evaluate(k, chunk, ctx) for k in key_exprs]
        pending: list[list[tuple]] = [[] for _ in parts]
        for i in range(chunk.count):
            # NULL keys never match an inner equi-join; drop them at
            # partitioning time exactly like the in-memory build/probe.
            if not all(kv.validity[i] for kv in key_vectors):
                continue
            key = tuple(_hashable(kv.value(i)) for kv in key_vectors)
            pending[hash(key) % _SPILL_PARTITIONS].append(
                (base + i, key, chunk.row(i))
            )
        for part, rows in zip(parts, pending):
            if rows:
                part.write_rows(rows)

    try:
        build_parts.extend(_storage.SpillFile()
                           for _ in range(_SPILL_PARTITIONS))
        probe_parts.extend(_storage.SpillFile()
                           for _ in range(_SPILL_PARTITIONS))
        base = 0
        for chunk in _chain_chunks(right_buffered, right_overflow):
            if not chunk.count:
                continue
            if qstats is not None:
                qstats.bump("executor.join_build_rows", chunk.count)
            scatter(chunk, [rk for _, rk in op.equi_keys], base,
                    build_parts)
            base += chunk.count
        base = 0
        for left_chunk in execute_plan(op.left, ctx):
            if not left_chunk.count:
                continue
            if kstats is not None:
                kstats.rows_in += left_chunk.count
            if qstats is not None:
                qstats.bump("executor.join_probe_rows", left_chunk.count)
            scatter(left_chunk, [lk for lk, _ in op.equi_keys], base,
                    probe_parts)
            base += left_chunk.count
        if qstats is not None:
            qstats.bump("storage.spilled_joins")
            qstats.bump("storage.spill_partitions", 2 * _SPILL_PARTITIONS)
        if ctx.profiler is not None:
            ctx.profiler.annotate(op, "spill_partitions",
                                  _SPILL_PARTITIONS)

        def partition_pairs(build_part, probe_part):
            # Probe rows replay in global left order and buckets hold
            # ascending global right indices, so each partition stream
            # is sorted by (left, right) — merge-ready.
            table: dict[tuple, list[tuple[int, tuple]]] = {}
            for gri, key, row in build_part.read_rows():
                table.setdefault(key, []).append((gri, row))
            if not table:
                return
            for gli, key, lrow in probe_part.read_rows():
                for gri, rrow in table.get(key, ()):
                    yield (gli, gri, lrow + rrow)

        merged = heapq.merge(
            *(
                partition_pairs(b, p)
                for b, p in zip(build_parts, probe_parts)
            ),
            key=lambda item: (item[0], item[1]),
        )
        combined_types = op.left.output_types() + op.right.output_types()
        for chunk in _rows_stream_to_chunks(
            (row for _, _, row in merged), combined_types
        ):
            if op.residual is not None:
                mask = boolean_selection(
                    evaluate(op.residual, chunk, ctx)
                )
                chunk = chunk.slice(mask)
            if chunk.count:
                yield chunk
    finally:
        for part in build_parts + probe_parts:
            part.close()


# -- sort / distinct ------------------------------------------------------------------


def _execute_sort(op: LogicalSort, ctx: ExecutionContext
                  ) -> Iterator[DataChunk]:
    kstats = _kernel_stats(op, ctx)
    chunks: list[DataChunk] | None = None
    if ctx.memory_limit_bytes is not None:
        buffered, overflow = _watermark_buffer(op.child, ctx)
        if overflow is not None:
            yield from _external_sort(op, buffered, overflow, ctx)
            return
        chunks = buffered
    columns = _materialize(op.child, ctx, chunks=chunks)
    if columns is None:
        return
    full = DataChunk(columns)
    count = full.count
    if kstats is not None:
        kstats.rows_in += count
    key_specs = [(asc, nf) for _, asc, nf in op.keys]
    key_vectors: list[Vector] | None = None
    if kernels.kernels_enabled():
        perm = None
        merged = False
        if (
            ctx.can_parallel()
            and count >= _parallel.MIN_PARALLEL_ROWS
            and (ctx.profiler is None
                 or all(_subquery_free(k) for k, _, _ in op.keys))
        ):
            perm = _sort_parallel(op, full, count, key_specs, ctx)
            merged = perm is not None
        if perm is None:
            key_vectors = [evaluate(k, full, ctx) for k, _, _ in op.keys]
            try:
                perm = kernels.sort_permutation(key_vectors, key_specs)
            except KernelFallback:
                perm = None
        if perm is not None:
            if kstats is not None:
                kstats.kernel += 1
            if ctx.stats is not None:
                ctx.stats.bump("quack.kernel_ops")
            if _verification.VERIFICATION_ENABLED:
                if key_vectors is None:
                    key_vectors = [evaluate(k, full, ctx)
                                   for k, _, _ in op.keys]
                _crosscheck_sort(op, full, key_vectors, key_specs, perm,
                                 ctx)
                if merged and ctx.stats is not None:
                    # The comparator reference re-sorts serially, so the
                    # merged permutation was checked against a serial run.
                    ctx.stats.bump("verify.parallel_crosschecks")
            for start in range(0, count, STANDARD_VECTOR_SIZE):
                yield full.slice(perm[start : start + STANDARD_VECTOR_SIZE])
            return
    if key_vectors is None:
        key_vectors = [evaluate(k, full, ctx) for k, _, _ in op.keys]
    if kstats is not None:
        kstats.fallback += 1
    if ctx.stats is not None:
        ctx.stats.bump("quack.fallback_ops")
    keyed = sorted(
        (
            (full.row(i), tuple(kv.value(i) for kv in key_vectors))
            for i in range(count)
        ),
        key=kernels.sort_comparator(key_specs),
    )
    yield from _rows_to_chunks([r for r, _ in keyed], op.output_types())


def _sort_parallel(op: LogicalSort, full: DataChunk, count: int,
                   key_specs, ctx: ExecutionContext) -> np.ndarray | None:
    """Morsel-parallel sort: per-morsel stable ``sort_permutation`` runs
    on workers, then a stable k-way ``heapq.merge`` on the coordinator.

    Each run is already in global row order (ranges are ascending and
    contiguous), and both the per-run lexsort and the merge are stable,
    so the merged permutation is exactly the serial stable sort's.
    Returns None (serial takes over) when a morsel kernel declines."""
    qstats = ctx.stats
    ranges = _parallel.morsel_ranges(count, ctx.workers)
    if len(ranges) <= 1:
        return None

    trace = ctx.trace

    def sort_morsel(bounds: tuple[int, int], worker_stats):
        start, end = bounds
        opened = time.perf_counter()
        wctx = ctx.worker_child(
            worker_stats if qstats is not None else None
        )
        morsel = DataChunk(_parallel.row_range(full.vectors, start, end))
        kvs = [evaluate(k, morsel, wctx) for k, _, _ in op.keys]
        try:
            perm = kernels.sort_permutation(kvs, key_specs)
        except KernelFallback:
            return None
        finally:
            if trace is not None:
                trace.emit(
                    "sort_run", "morsel", opened,
                    time.perf_counter() - opened, rows=end - start,
                )
        rows = (perm + start).tolist()
        keys = [
            tuple(kv.value(int(i)) for kv in kvs) for i in perm
        ]
        return rows, keys

    runs = _parallel.run_tasks(
        ctx.pool,
        [lambda ws, b=bounds: sort_morsel(b, ws) for bounds in ranges],
        qstats,
    )
    if any(run is None for run in runs):
        return None
    if qstats is not None:
        qstats.bump("parallel.batches")
        qstats.bump("parallel.morsels", len(ranges))
        qstats.bump("parallel.sort_runs", len(runs))
    merged = heapq.merge(
        *[zip(rows, keys) for rows, keys in runs],
        key=kernels.sort_comparator(key_specs),
    )
    return np.fromiter((row for row, _ in merged), dtype=np.int64,
                       count=count)


def _crosscheck_sort(op: LogicalSort, full: DataChunk,
                     key_vectors: list[Vector], key_specs, perm: np.ndarray,
                     ctx: ExecutionContext) -> None:
    """Re-sort row-wise with the comparator fallback and compare the row
    sequence against the lexsort kernel's permutation."""
    from ..analysis.verifier import assert_rows_match

    keyed = sorted(
        (
            (full.row(i), tuple(kv.value(i) for kv in key_vectors))
            for i in range(full.count)
        ),
        key=kernels.sort_comparator(key_specs),
    )
    actual = [full.row(int(i)) for i in perm]
    assert_rows_match(
        actual, [r for r, _ in keyed],
        f"{op._explain_label()} kernels.sort_permutation",
    )
    if ctx.stats is not None:
        ctx.stats.bump("verify.kernel_crosschecks")


def _execute_set_op(op: "LogicalSetOp",
                    ctx: ExecutionContext) -> Iterator[DataChunk]:
    types = op.output_types()
    if op.kind == "union" and op.all:
        for chunk in execute_plan(op.left, ctx):
            yield chunk
        for chunk in execute_plan(op.right, ctx):
            # Reinterpret right columns under the left's types.
            yield DataChunk(
                [v.with_type(t) for v, t in zip(chunk.vectors, types)]
            )
        return
    left_rows = []
    for chunk in execute_plan(op.left, ctx):
        left_rows.extend(chunk.rows())
    right_keys = set()
    right_rows = []
    for chunk in execute_plan(op.right, ctx):
        for row in chunk.rows():
            key = tuple(_hashable(v) for v in row)
            right_rows.append((key, row))
            right_keys.add(key)
    out: list[tuple] = []
    if op.kind == "union":
        seen = set()
        for row in left_rows + [r for _, r in right_rows]:
            key = tuple(_hashable(v) for v in row)
            if key not in seen:
                seen.add(key)
                out.append(row)
    elif op.kind == "except":
        seen = set()
        for row in left_rows:
            key = tuple(_hashable(v) for v in row)
            if key in right_keys or key in seen:
                continue
            seen.add(key)
            out.append(row)
    else:  # intersect
        seen = set()
        for row in left_rows:
            key = tuple(_hashable(v) for v in row)
            if key in right_keys and key not in seen:
                seen.add(key)
                out.append(row)
    yield from _rows_to_chunks(out, types)


def _execute_distinct(op: LogicalDistinct,
                      ctx: ExecutionContext) -> Iterator[DataChunk]:
    stats = _kernel_stats(op, ctx)
    if not kernels.kernels_enabled():
        seen: set = set()
        if ctx.stats is not None:
            ctx.stats.bump("quack.fallback_ops")
        for chunk in execute_plan(op.child, ctx):
            if stats is not None:
                stats.rows_in += chunk.count
                stats.fallback += 1
            keep: list[int] = []
            for i in range(chunk.count):
                key = tuple(_hashable(v) for v in chunk.row(i))
                if key in seen:
                    continue
                seen.add(key)
                keep.append(i)
            if keep:
                yield chunk.slice(np.asarray(keep, dtype=np.int64))
        return
    columns = _materialize(op.child, ctx)
    if columns is None:
        return
    full = DataChunk(columns)
    if stats is not None:
        stats.rows_in += full.count
        stats.kernel += 1
    if ctx.stats is not None:
        ctx.stats.bump("quack.kernel_ops")
    _, representatives = kernels.factorize(full.vectors, full.count)
    if _verification.VERIFICATION_ENABLED:
        from ..analysis.verifier import assert_index_lists_match

        expected: list[int] = []
        seen_keys: set = set()
        for i in range(full.count):
            key = tuple(_hashable(v) for v in full.row(i))
            if key not in seen_keys:
                seen_keys.add(key)
                expected.append(i)
        assert_index_lists_match(
            list(representatives), expected,
            f"{op._explain_label()} kernels.factorize",
        )
        if ctx.stats is not None:
            ctx.stats.bump("verify.kernel_crosschecks")
    for start in range(0, len(representatives), STANDARD_VECTOR_SIZE):
        yield full.slice(representatives[start : start + STANDARD_VECTOR_SIZE])
