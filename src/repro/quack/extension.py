"""Extension registration utilities mirroring the paper's §3.4 API.

The method names deliberately follow the C++ ``ExtensionUtil`` calls shown
in the paper so the MobilityDuck extension code reads like its source::

    ExtensionUtil.register_type(db, "STBOX", STBOX_TYPE)
    ExtensionUtil.register_cast_function(db, VARCHAR, STBOX_TYPE, stbox_in)
    ExtensionUtil.register_function(db, ScalarFunction("&&", …))
"""

from __future__ import annotations

from typing import Any, Callable

from .catalog import IndexType
from .database import Database
from .functions import AggregateFunction, CastFunction, ScalarFunction
from .types import LogicalType


class ExtensionUtil:
    """Static registration helpers (paper §3.4 / §4.1)."""

    @staticmethod
    def register_type(
        database: Database,
        name: str,
        ltype: LogicalType,
        aliases: tuple[str, ...] = (),
    ) -> None:
        """Register a user-defined type under ``name`` (plus aliases).

        Mirrors the paper's BLOB-backed UDT with a type alias (§3.3).
        """
        database.types.register(ltype, aliases=(name, *aliases))

    @staticmethod
    def register_function(database: Database, fn: ScalarFunction) -> None:
        database.functions.register_scalar(fn)

    @staticmethod
    def register_aggregate_function(
        database: Database, fn: AggregateFunction
    ) -> None:
        database.functions.register_aggregate(fn)

    @staticmethod
    def register_cast_function(
        database: Database,
        source: LogicalType,
        target: LogicalType,
        fn: Callable[[Any], Any],
        implicit: bool = False,
    ) -> None:
        database.functions.register_cast(
            CastFunction(source, target, fn, implicit)
        )

    @staticmethod
    def register_index_type(database: Database, index_type: IndexType) -> None:
        database.config.index_types.register(index_type)


def make_user_type(name: str, python_class: type) -> LogicalType:
    """Create a BLOB-backed user-defined logical type (paper §3.3)."""
    return LogicalType(name.upper(), "object", python_class, is_user=True)
