"""Scalar/aggregate/cast function registry with overload resolution.

The registry is the engine half of the paper's §3.4: extensions register
scalar functions (including operators, whose "name" is the operator symbol,
e.g. ``&&``), cast functions between types, and aggregates.  Overloads are
resolved by implicit-cast cost, like DuckDB's binder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from . import kernels
from ..analysis.config import verification_enabled
from ..analysis.errors import VerificationError
from ..observability import current_stats
from .errors import BinderError, ConversionError, ExecutionError, QuackError
from .types import ANY, LogicalType, VARCHAR, implicit_cast_cost
from .vector import Vector

#: Engine errors (and verification failures) pass through unwrapped.
_ENGINE_ERRORS = (QuackError, VerificationError)


@dataclass
class ScalarFunction:
    """A scalar SQL function or operator.

    ``fn_scalar`` is the row-wise implementation (used by the row engine and
    as a fallback); ``fn_vector`` is an optional whole-vector implementation
    operating on NumPy arrays for speed.  Null handling defaults to
    null-in/null-out.
    """

    name: str
    arg_types: tuple[LogicalType, ...]
    return_type: LogicalType
    fn_scalar: Callable[..., Any] | None = None
    fn_vector: Callable[[list[Vector], int], Vector] | None = None
    #: When True, fn_scalar receives None inputs instead of short-circuiting.
    handles_null: bool = False
    #: Variadic functions accept any number of trailing args of the last type.
    varargs: bool = False
    #: Optional chunk-at-a-time kernel ``(args, count) -> Vector | None``.
    #: Returning None declines the chunk (unsupported payloads) and the
    #: per-row ``fn_scalar`` loop runs instead.  Only consulted while the
    #: engine kernels are enabled, so ``set_kernels_enabled(False)``
    #: benchmarks the scalar path.
    evaluate_batch: Callable[[list[Vector], int], "Vector | None"] | None = (
        None
    )
    #: Volatile functions may return different results for equal inputs
    #: (or have side effects); they are excluded from the per-chunk
    #: repeated-argument memo used while kernels are enabled.
    volatile: bool = False

    def evaluate(self, args: list[Vector], count: int) -> Vector:
        """Vectorized evaluation (chunk at a time).

        Exceptions raised by extension payloads surface as
        :class:`ExecutionError` with the function name attached, like
        DuckDB wrapping extension failures."""
        try:
            return self._evaluate_unchecked(args, count)
        except _ENGINE_ERRORS:
            raise
        except Exception as exc:
            raise ExecutionError(
                f"error in function {self.name}: {exc}"
            ) from exc

    def _evaluate_unchecked(self, args: list[Vector], count: int) -> Vector:
        if self.fn_vector is not None:
            return self.fn_vector(args, count)
        if self.evaluate_batch is not None and kernels.kernels_enabled():
            result = self.evaluate_batch(args, count)
            if result is not None:
                stats = current_stats()
                if stats is not None:
                    stats.bump("quack.function_batch_ops")
                if verification_enabled():
                    self._crosscheck_batch(result, args, count)
                return result
        return self._scalar_loop(args, count)

    def _crosscheck_batch(self, result: Vector, args: list[Vector],
                          count: int) -> None:
        """Verification mode: re-run the scalar fallback and require the
        batch kernel's output to match it row for row."""
        from ..analysis.verifier import assert_vectors_match

        reference = self._scalar_loop(args, count)
        assert_vectors_match(
            result, reference,
            f"scalar function {self.name!r} evaluate_batch",
        )
        stats = current_stats()
        if stats is not None:
            stats.bump("verify.kernel_crosschecks")

    def _scalar_loop(self, args: list[Vector], count: int) -> Vector:
        """The row-wise fallback path (also the kernel cross-check
        reference under verification mode)."""
        out = np.empty(count, dtype=object)
        validity = np.ones(count, dtype=np.bool_)
        columns = [a.data for a in args]
        valid_masks = [a.validity for a in args]
        fn = self.fn_scalar
        if self.handles_null:
            for i in range(count):
                out[i] = fn(*[
                    col[i] if mask[i] else None
                    for col, mask in zip(columns, valid_masks)
                ])
                if out[i] is None:
                    validity[i] = False
        else:
            if args and not all(a.all_valid() for a in args):
                combined = np.logical_and.reduce(
                    [a.validity for a in args]
                )
            else:
                combined = None
            # Nested-loop join chunks repeat the same payload objects in
            # runs (left side) or tiles (right side); memoizing by object
            # identity skips re-running pure functions on those rows.
            # Only unary functions qualify: multi-argument rows on join
            # chunks are distinct pairs, so a memo never hits there.
            memo: dict | None = None
            if (
                kernels.kernels_enabled()
                and not self.volatile
                and count >= 16
                and len(args) == 1
                and args[0].ltype.physical == "object"
            ):
                memo = {}
            memo_hits = 0
            if memo is not None:
                column = columns[0]
                for i in range(count):
                    if combined is not None and not combined[i]:
                        validity[i] = False
                        continue
                    source = column[i]
                    hit = memo.get(id(source))
                    if hit is not None and hit[0] is source:
                        result = hit[1]
                        memo_hits += 1
                    else:
                        result = fn(source)
                        memo[id(source)] = (source, result)
                    out[i] = result
                    if result is None:
                        validity[i] = False
            else:
                for i in range(count):
                    if combined is not None and not combined[i]:
                        validity[i] = False
                        continue
                    result = fn(*[col[i] for col in columns])
                    out[i] = result
                    if result is None:
                        validity[i] = False
            if memo_hits:
                stats = current_stats()
                if stats is not None:
                    stats.bump("quack.scalar_memo_rows", memo_hits)
        return _materialize(self.return_type, out, validity, count)

    def evaluate_row(self, args: list[Any]) -> Any:
        """Row-wise evaluation (used by the pgsim volcano engine)."""
        if not self.handles_null and any(a is None for a in args):
            return None
        if self.fn_scalar is not None:
            try:
                return self.fn_scalar(*args)
            except _ENGINE_ERRORS:
                raise
            except Exception as exc:
                raise ExecutionError(
                    f"error in function {self.name}: {exc}"
                ) from exc
        # Fall back to the vector implementation on a 1-row chunk.
        vectors = [
            Vector.from_values(t, [a])
            for t, a in zip(self._padded_types(len(args)), args)
        ]
        result = self.fn_vector(vectors, 1)
        return result.value(0)

    def _padded_types(self, n: int) -> list[LogicalType]:
        types = list(self.arg_types)
        while len(types) < n:
            types.append(types[-1] if types else ANY)
        return types[:n]


def _materialize(
    ltype: LogicalType, out: np.ndarray, validity: np.ndarray, count: int
) -> Vector:
    if ltype.physical == "object":
        return Vector(ltype, out, validity)
    dtype = {"bool": np.bool_, "int64": np.int64, "float64": np.float64}[
        ltype.physical
    ]
    data = np.zeros(count, dtype=dtype)
    for i in range(count):
        if validity[i]:
            data[i] = out[i]
    return Vector(ltype, data, validity)


@dataclass
class AggregateFunction:
    """An aggregate: fold rows of one (optional) argument into one value."""

    name: str
    arg_types: tuple[LogicalType, ...]
    return_type: LogicalType
    #: () -> state
    init: Callable[[], Any]
    #: (state, *values) -> state; called once per (non-filtered) row.
    step: Callable[..., Any]
    #: state -> final value
    final: Callable[[Any], Any]
    #: When False, NULL inputs are skipped (SQL semantics for sum/min/…).
    accepts_null: bool = False
    #: Optional vectorized kernel computing every group at once:
    #: ``(args, codes, n_groups, result_type) -> Vector | None`` where
    #: ``codes`` assigns each input row a dense group id.  Returning None
    #: declines (e.g. unsupported physical type) and the executor falls
    #: back to the row-wise ``step`` loop.  Never used for DISTINCT
    #: aggregates.
    step_batch: Callable[
        [list[Vector], Any, int, LogicalType], "Vector | None"
    ] | None = None
    #: Optional partial-merge kernel for parallel aggregation, with the
    #: ``step_batch`` signature: the input rows are per-morsel partial
    #: results (one per (morsel, group) pair, ``codes`` mapping each to
    #: its global group).  Only declared when folding partials with it
    #: is equivalent to folding the original rows — e.g. sum of partial
    #: sums, min of partial mins.  ``avg`` has no combine (its (sum,
    #: count) state is not a single vector), so it takes the
    #: concatenate-then-reduce path instead.
    combine: Callable[
        [list[Vector], Any, int, LogicalType], "Vector | None"
    ] | None = None

    def result_type_for(self, args: tuple[LogicalType, ...]) -> LogicalType:
        if self.return_type == ANY:
            return args[0] if args else ANY
        return self.return_type


@dataclass
class CastFunction:
    """An explicit/implicit cast between two logical types."""

    source: LogicalType
    target: LogicalType
    fn: Callable[[Any], Any]
    implicit: bool = False

    def apply(self, value: Any) -> Any:
        if value is None:
            return None
        try:
            return self.fn(value)
        except Exception as exc:
            raise ConversionError(
                f"cannot cast {value!r} from {self.source.name} to "
                f"{self.target.name}: {exc}"
            ) from exc


class FunctionRegistry:
    """Per-database registry of scalar, aggregate and cast functions."""

    def __init__(self):
        self._scalars: dict[str, list[ScalarFunction]] = {}
        self._aggregates: dict[str, list[AggregateFunction]] = {}
        self._casts: dict[tuple[str, str], CastFunction] = {}

    # -- registration ---------------------------------------------------------

    def register_scalar(self, fn: ScalarFunction) -> None:
        self._scalars.setdefault(fn.name.lower(), []).append(fn)

    def register_aggregate(self, fn: AggregateFunction) -> None:
        self._aggregates.setdefault(fn.name.lower(), []).append(fn)

    def register_cast(self, cast: CastFunction) -> None:
        self._casts[(cast.source.name, cast.target.name)] = cast

    # -- lookup ------------------------------------------------------------------

    def has_scalar(self, name: str) -> bool:
        return name.lower() in self._scalars

    def has_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def find_cast(
        self, source: LogicalType, target: LogicalType
    ) -> CastFunction | None:
        return self._casts.get((source.name, target.name))

    def resolve_scalar(
        self, name: str, args: Sequence[LogicalType]
    ) -> tuple[ScalarFunction, list[LogicalType]]:
        """Pick the best overload; returns (function, target arg types)."""
        candidates = self._scalars.get(name.lower())
        if not candidates:
            raise BinderError(f"unknown function {name!r}")
        best: tuple[int, ScalarFunction, list[LogicalType]] | None = None
        for fn in candidates:
            target = self._match(fn, args)
            if target is None:
                continue
            cost = sum(
                self._cast_cost(a, t) for a, t in zip(args, target)
            )
            if best is None or cost < best[0]:
                best = (cost, fn, target)
        if best is None:
            sig = ", ".join(t.name for t in args)
            raise BinderError(
                f"no overload of {name}({sig}); candidates: "
                + "; ".join(
                    f"{name}({', '.join(t.name for t in c.arg_types)})"
                    for c in candidates
                )
            )
        return best[1], best[2]

    def resolve_aggregate(
        self, name: str, args: Sequence[LogicalType]
    ) -> AggregateFunction:
        candidates = self._aggregates.get(name.lower())
        if not candidates:
            raise BinderError(f"unknown aggregate {name!r}")
        best: tuple[int, AggregateFunction] | None = None
        for fn in candidates:
            if len(fn.arg_types) != len(args) and not (
                fn.arg_types and fn.arg_types[-1] == ANY
            ):
                if len(fn.arg_types) != len(args):
                    continue
            costs = []
            ok = True
            for a, t in zip(args, fn.arg_types):
                cost = self._cast_cost(a, t)
                if cost is None or cost >= 100:
                    ok = False
                    break
                costs.append(cost)
            if not ok:
                continue
            total = sum(costs)
            if best is None or total < best[0]:
                best = (total, fn)
        if best is None:
            sig = ", ".join(t.name for t in args)
            raise BinderError(f"no overload of aggregate {name}({sig})")
        return best[1]

    def _match(
        self, fn: ScalarFunction, args: Sequence[LogicalType]
    ) -> list[LogicalType] | None:
        types = list(fn.arg_types)
        if fn.varargs:
            if len(args) < len(types):
                return None
            while len(types) < len(args):
                types.append(types[-1] if types else ANY)
        elif len(types) != len(args):
            return None
        for a, t in zip(args, types):
            if self._cast_cost(a, t) is None:
                return None
        return types

    def _cast_cost(self, source: LogicalType, target: LogicalType) -> int | None:
        builtin = implicit_cast_cost(source, target)
        if builtin is not None:
            return builtin
        cast = self._casts.get((source.name, target.name))
        if cast is not None and cast.implicit:
            return 4
        # Registered VARCHAR "in" casts act as implicit for literals.
        if source == VARCHAR and cast is not None:
            return 5
        return None
