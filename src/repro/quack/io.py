"""Lightweight data interchange: CSV import/export and result display.

The paper's §6.2 demonstrates MobilityDuck inside a Python data-science
workflow (DuckDB Python client + pandas/GeoPandas).  Without pandas
offline, this module provides the equivalent seams: results convert to
column dictionaries, pretty-print as tables, and round-trip through CSV.
"""

from __future__ import annotations

import csv
import re
from typing import Any

from . import storage
from .database import Result
from .errors import QuackError
from .types import BIGINT, BOOLEAN, DOUBLE, LogicalType, VARCHAR


def result_to_columns(result: Result) -> dict[str, list[Any]]:
    """Column-oriented view of a result (the DataFrame-shaped seam)."""
    columns: dict[str, list[Any]] = {
        name: [] for name in result.column_names
    }
    for row in result.rows:
        for name, value in zip(result.column_names, row):
            columns[name].append(value)
    return columns


def format_table(result: Result, max_rows: int = 20,
                 max_width: int = 28) -> str:
    """Render a result as an aligned text table (DuckDB shell style)."""
    names = result.column_names
    shown = result.rows[:max_rows]

    def render(value: Any) -> str:
        if value is None:
            return "NULL"
        text = str(value)
        if len(text) > max_width:
            return text[: max_width - 1] + "…"
        return text

    cells = [[render(v) for v in row] for row in shown]
    widths = [
        max([len(name)] + [len(row[i]) for row in cells])
        for i, name in enumerate(names)
    ]
    lines = [
        " | ".join(name.ljust(w) for name, w in zip(names, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    if len(result.rows) > max_rows:
        lines.append(f"… ({len(result.rows)} rows total)")
    return "\n".join(lines)


def write_csv(result: Result, path: str) -> int:
    """Write a result to CSV (header + stringified values).

    TIMESTAMP and DATE columns are rendered in their textual form so the
    file round-trips through :func:`read_csv`."""
    from ..meos.timetypes import format_date, format_timestamptz

    formatters = []
    for ltype in (result.column_types or
                  [None] * len(result.column_names)):
        if ltype is not None and ltype.name == "TIMESTAMP":
            formatters.append(format_timestamptz)
        elif ltype is not None and ltype.name == "DATE":
            formatters.append(format_date)
        else:
            formatters.append(str)
    with storage.open_path(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.column_names)
        for row in result.rows:
            writer.writerow(
                [
                    "" if v is None else fmt(v)
                    for v, fmt in zip(row, formatters)
                ]
            )
    return len(result.rows)


# Strict SQL-literal shapes.  Python's int()/float() accept more than SQL
# does — underscored digit groups ("1_000"), non-finite spellings ("nan",
# "inf", "Infinity") — so sniffing gates on these patterns instead of
# try-converting, keeping such cells VARCHAR.
_INT_PATTERN = re.compile(r"[+-]?\d+\Z")
_FLOAT_PATTERN = re.compile(
    r"[+-]?(?:\d+(?:\.\d*)?|\.\d+)(?:[eE][+-]?\d+)?\Z"
)


def _sniff_type(values: list[str]) -> LogicalType:
    from ..meos.timetypes import parse_timestamptz
    from .types import TIMESTAMP

    non_empty = [v for v in values if v != ""]
    if not non_empty:
        return VARCHAR
    if all(_INT_PATTERN.match(v) for v in non_empty):
        return BIGINT
    if all(len(v) >= 10 and v[4:5] == "-" for v in non_empty):
        try:
            for v in non_empty:
                parse_timestamptz(v)
            return TIMESTAMP
        except Exception:
            pass
    if all(_FLOAT_PATTERN.match(v) for v in non_empty):
        return DOUBLE
    lowered = {v.lower() for v in non_empty}
    if lowered <= {"true", "false", "t", "f"}:
        return BOOLEAN
    return VARCHAR


def read_csv(connection, path: str, table_name: str,
             column_types: dict[str, str] | None = None) -> int:
    """Load a CSV file into a new table, sniffing column types.

    ``column_types`` overrides the sniffer per column (by name), e.g.
    ``{"trip": "TGEOMPOINT"}`` — values then go through the registered
    ``VARCHAR -> type`` cast, so extension types load from text.
    """
    with storage.open_path(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise QuackError(f"{path}: empty CSV file") from None
        raw_rows = list(reader)
    overrides = {k.lower(): v for k, v in (column_types or {}).items()}
    types: list[LogicalType] = []
    for i, name in enumerate(header):
        if name.lower() in overrides:
            types.append(
                connection.database.types.lookup(overrides[name.lower()])
            )
        else:
            types.append(_sniff_type([row[i] for row in raw_rows]))
    columns_sql = ", ".join(
        f'"{name}" {ltype.name}' for name, ltype in zip(header, types)
    )
    connection.execute(f"CREATE TABLE {table_name}({columns_sql})")
    converted = []
    for raw in raw_rows:
        row = []
        for value, ltype in zip(raw, types):
            if value == "":
                row.append(None)
            elif ltype == BIGINT:
                row.append(int(value))
            elif ltype == DOUBLE:
                row.append(float(value))
            elif ltype == BOOLEAN:
                row.append(value.lower() in ("true", "t"))
            elif ltype.is_user or ltype.name in ("TIMESTAMP", "DATE",
                                                 "INTERVAL"):
                cast = connection.database.functions.find_cast(
                    VARCHAR, ltype
                )
                row.append(cast.apply(value) if cast else value)
            else:
                row.append(value)
        converted.append(tuple(row))
    connection.database.catalog.get_table(table_name).append_rows(converted)
    return len(converted)
