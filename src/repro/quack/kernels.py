"""Vectorized aggregation/sort kernels shared by the quack operators.

The paper's central performance claim (§3.4, Fig. 12) rests on DuckDB's
chunk-at-a-time execution over columnar vectors.  This module provides the
NumPy-backed kernels that keep the quack engine's GROUP BY / ORDER BY /
DISTINCT hot paths vectorized end to end:

* :func:`factorize` — factorize-style group-key encoding over packed key
  columns (``np.unique(..., return_inverse=True)`` per column, combined
  pairwise and re-densified), with explicit NULL/NaN/negative-zero
  canonicalization.
* :func:`segment_reduce` — per-group ``ufunc.reduceat`` reduction over
  rows sorted by group code (SUM/MIN/MAX-style kernels).
* :func:`sort_permutation` — ``np.lexsort``-based ORDER BY with correct
  ``NULLS FIRST/LAST`` handling and NaN-sorts-greatest semantics.
* :class:`JoinBuild` — hash-join build/probe kernels: the equi-keys of
  the build relation are factorize-encoded into dense int64 codes, a
  grouped row index is laid out with the same argsort/bincount/cumsum
  segment machinery, and probes emit matched ``(probe_row, build_row)``
  pairs with pure array ops.
The canonicalized row-wise fallbacks :func:`hashable_key` /
:func:`sort_comparator` live in :mod:`.keys` (the engine-neutral shared
surface) and are re-exported here for the kernel implementations.

Kernels can be globally disabled (``set_kernels_enabled(False)``) to force
the original row-loop paths; benchmarks use this to measure the speedup.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Sequence

import numpy as np

from .keys import _NULL_KEY, hashable_key, sort_comparator
from .vector import KernelFallback, Vector

__all__ = [
    "JoinBuild",
    "KERNELS_ENABLED",
    "factorize",
    "hashable_key",
    "kernels_enabled",
    "kernels_snapshot",
    "segment_first_valid",
    "segment_reduce",
    "set_kernels_enabled",
    "sort_comparator",
    "sort_permutation",
]

#: Global switch: when False, operators take their row-loop fallback paths.
KERNELS_ENABLED = True

#: Per-query snapshot of the global switch.  The executor freezes the
#: flag once at statement entry (:func:`kernels_snapshot`); every call
#: site reads :func:`kernels_enabled` so a concurrent
#: ``set_kernels_enabled`` mid-query cannot produce a half-kernel,
#: half-fallback execution (which breaks the kernel-vs-fallback
#: cross-checks).  Being a contextvar, the snapshot propagates into
#: morsel worker threads via ``contextvars.copy_context``.
_KERNELS_SNAPSHOT: ContextVar[bool | None] = ContextVar(
    "repro_kernels_snapshot", default=None
)


def set_kernels_enabled(enabled: bool) -> bool:
    """Toggle the vectorized kernels; returns the previous setting."""
    global KERNELS_ENABLED
    previous = KERNELS_ENABLED
    KERNELS_ENABLED = bool(enabled)
    return previous


def kernels_enabled() -> bool:
    """The effective kernel switch: the active query's snapshot when one
    is set, the mutable global otherwise."""
    snapshot = _KERNELS_SNAPSHOT.get()
    return KERNELS_ENABLED if snapshot is None else snapshot


@contextmanager
def kernels_snapshot() -> Iterator[bool]:
    """Freeze the kernel switch for the duration of one statement."""
    token = _KERNELS_SNAPSHOT.set(KERNELS_ENABLED)
    try:
        yield KERNELS_ENABLED
    finally:
        _KERNELS_SNAPSHOT.reset(token)


# ---------------------------------------------------------------------------
# Group-key factorization
# ---------------------------------------------------------------------------


def _column_codes(vector: Vector) -> tuple[np.ndarray, int]:
    """Dense per-row codes for one key column plus the code cardinality.

    NULL rows get a reserved code; float columns additionally reserve a
    code for NaN (one group) and canonicalize ``-0.0`` to ``0.0``.
    """
    data = vector.data
    valid = vector.validity
    physical = vector.ltype.physical
    if physical == "bool":
        return np.where(valid, data.astype(np.int64) + 1, 0), 3
    if physical == "int64":
        _, inverse = np.unique(data, return_inverse=True)
        codes = np.where(valid, inverse.astype(np.int64) + 1, 0)
        return codes, int(inverse.max(initial=0)) + 2
    if physical == "float64":
        values = data + 0.0  # -0.0 -> +0.0
        nan = np.isnan(values)
        _, inverse = np.unique(np.where(nan, 0.0, values),
                               return_inverse=True)
        codes = np.where(
            valid,
            np.where(nan, 1, inverse.astype(np.int64) + 2),
            0,
        )
        return codes, int(inverse.max(initial=0)) + 3
    # Object columns: hash-based factorization (no ordering required).
    codes = np.empty(len(data), dtype=np.int64)
    mapping: dict[Any, int] = {}
    for i in range(len(data)):
        key = hashable_key(data[i]) if valid[i] else _NULL_KEY
        code = mapping.get(key)
        if code is None:
            code = len(mapping)
            mapping[key] = code
        codes[i] = code
    return codes, max(len(mapping), 1)


def factorize(vectors: Sequence[Vector],
              count: int) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column group keys into dense int64 codes.

    Returns ``(codes, representatives)`` where ``codes[i]`` is the group id
    of row ``i`` (dense, numbered in order of first appearance) and
    ``representatives[g]`` is the row index of group ``g``'s first row.
    """
    combined: np.ndarray | None = None
    for vector in vectors:
        codes, cardinality = _column_codes(vector)
        if combined is None:
            combined = codes
        else:
            # Pairwise combine, then re-densify so the running key stays
            # bounded by row count and never overflows int64.
            combined = combined * np.int64(cardinality) + codes
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
    if combined is None:
        combined = np.zeros(count, dtype=np.int64)
    _, first_index, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    # np.unique numbers groups in sorted-key order; renumber them in
    # first-appearance order so output matches the row-loop paths.
    order = np.argsort(first_index, kind="stable")
    remap = np.empty(len(first_index), dtype=np.int64)
    remap[order] = np.arange(len(first_index), dtype=np.int64)
    codes = remap[inverse.astype(np.int64, copy=False)]
    representatives = first_index[order].astype(np.int64, copy=False)
    return codes, representatives


# ---------------------------------------------------------------------------
# Hash-join build/probe kernels
# ---------------------------------------------------------------------------


def _lookup_sorted(values: np.ndarray, uniques: np.ndarray) -> np.ndarray:
    """Map ``values`` into positions within sorted ``uniques`` (-1 = absent)."""
    out = np.full(len(values), -1, dtype=np.int64)
    if len(uniques):
        pos = np.minimum(
            np.searchsorted(uniques, values), len(uniques) - 1
        )
        hit = (values >= 0) & (uniques[pos] == values)
        out[hit] = pos[hit]
    return out


class _NumericKeyMap:
    """Build-side value -> dense code map for one bool/int64/float64 key
    column.  Float keys canonicalize ``-0.0`` to ``0.0`` and give NaN its
    own code (SQL join semantics shared with :func:`hashable_key`)."""

    __slots__ = ("physical", "uniques", "nan_code", "cardinality")

    def __init__(self, vector: Vector):
        self.physical = vector.ltype.physical
        values, nan = self._canonical(vector.data)
        valid = vector.validity
        pool = values[valid & ~nan] if nan is not None else values[valid]
        self.uniques = np.unique(pool)
        self.nan_code = -1
        if nan is not None and bool((nan & valid).any()):
            self.nan_code = len(self.uniques)
        self.cardinality = len(self.uniques) + (self.nan_code >= 0)

    def _canonical(
        self, data: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray | None]:
        if self.physical == "float64":
            values = data + 0.0  # -0.0 -> +0.0
            return values, np.isnan(values)
        if self.physical == "bool":
            return data.astype(np.int64), None
        return data, None

    def codes(self, vector: Vector) -> np.ndarray:
        """Dense codes for ``vector``'s rows; -1 marks NULL rows and
        values absent from the build side (no match possible)."""
        if vector.ltype.physical != self.physical:
            raise KernelFallback(
                f"join key physical type mismatch: "
                f"{vector.ltype.physical} vs {self.physical}"
            )
        values, nan = self._canonical(vector.data)
        codes = _lookup_sorted_values(values, self.uniques)
        if nan is not None and self.nan_code >= 0:
            codes[nan] = self.nan_code
        codes[~vector.validity] = -1
        return codes


def _lookup_sorted_values(values: np.ndarray,
                          uniques: np.ndarray) -> np.ndarray:
    """Like :func:`_lookup_sorted` but for raw (possibly negative/NaN)
    column values rather than non-negative codes."""
    out = np.full(len(values), -1, dtype=np.int64)
    if len(uniques):
        pos = np.minimum(
            np.searchsorted(uniques, values), len(uniques) - 1
        )
        hit = uniques[pos] == values
        out[hit] = pos[hit]
    return out


class _ObjectKeyMap:
    """Build-side value -> dense code map for one object key column,
    keyed through :func:`hashable_key` so NaN/-0.0/unhashable payloads
    behave exactly like the row-wise dict fallback."""

    __slots__ = ("mapping", "cardinality")

    def __init__(self, vector: Vector):
        mapping: dict[Any, int] = {}
        data = vector.data
        valid = vector.validity
        for i in range(len(data)):
            if not valid[i]:
                continue
            key = hashable_key(data[i])
            if key not in mapping:
                mapping[key] = len(mapping)
        self.mapping = mapping
        self.cardinality = max(len(mapping), 1)

    def codes(self, vector: Vector) -> np.ndarray:
        if vector.ltype.physical != "object":
            raise KernelFallback(
                f"join key physical type mismatch: "
                f"{vector.ltype.physical} vs object"
            )
        data = vector.data
        valid = vector.validity
        get = self.mapping.get
        return np.fromiter(
            (
                get(hashable_key(data[i]), -1) if valid[i] else -1
                for i in range(len(data))
            ),
            dtype=np.int64,
            count=len(data),
        )


class JoinBuild:
    """Vectorized hash-join build side over (multi-column) equi-keys.

    The build relation's keys are encoded column by column into dense
    codes, combined pairwise (``combined * cardinality + codes``) and
    re-densified against the build side's observed combinations so the
    running key never overflows.  Build rows are then grouped by final
    code with the segment machinery (stable argsort + bincount +
    exclusive cumsum); :meth:`probe` maps probe keys into the same code
    space and expands matches into ``(probe_row, build_row)`` index
    arrays.  NULL keys never match; NaN float keys all fall in one code
    (matching :func:`hashable_key`), as does ``-0.0`` with ``0.0``.
    """

    def __init__(self, key_vectors: Sequence[Vector], count: int):
        if not key_vectors:
            raise KernelFallback("hash join without equi-keys")
        self._maps: list[_NumericKeyMap | _ObjectKeyMap] = [
            _ObjectKeyMap(kv) if kv.ltype.physical == "object"
            else _NumericKeyMap(kv)
            for kv in key_vectors
        ]
        self._steps: list[np.ndarray] = []
        codes = self._map_codes(key_vectors, build=True)
        n_groups = max(
            len(self._steps[-1]) if self._steps
            else self._maps[0].cardinality,
            1,
        )
        rows = np.nonzero(codes >= 0)[0]
        group_of_row = codes[rows]
        order = np.argsort(group_of_row, kind="stable")
        self.sorted_rows = rows[order].astype(np.int64, copy=False)
        self.counts = np.bincount(group_of_row, minlength=n_groups)
        self.starts = np.zeros(n_groups, dtype=np.int64)
        np.cumsum(self.counts[:-1], out=self.starts[1:])

    def _map_codes(self, key_vectors: Sequence[Vector],
                   build: bool = False) -> np.ndarray:
        combined: np.ndarray | None = None
        for k, (key_map, kv) in enumerate(zip(self._maps, key_vectors)):
            codes = key_map.codes(kv)
            if combined is None:
                combined = codes
                continue
            raw = combined * np.int64(key_map.cardinality) + codes
            raw[(combined < 0) | (codes < 0)] = -1
            if build:
                self._steps.append(np.unique(raw[raw >= 0]))
            combined = _lookup_sorted(raw, self._steps[k - 1])
        return combined

    def probe(self, key_vectors: Sequence[Vector],
              count: int) -> tuple[np.ndarray, np.ndarray]:
        """Match probe rows against the build index.

        Returns ``(probe_idx, build_idx)`` index arrays covering every
        matched pair, probe-major with build rows ascending within each
        probe row — the same emission order as the dict fallback.
        """
        codes = self._map_codes(key_vectors, build=False)
        safe = np.where(codes >= 0, codes, 0)
        match_counts = np.where(codes >= 0, self.counts[safe], 0)
        total = int(match_counts.sum())
        probe_idx = np.repeat(
            np.arange(count, dtype=np.int64), match_counts
        )
        ends = np.cumsum(match_counts)
        offsets = np.repeat(ends - match_counts, match_counts)
        within = np.arange(total, dtype=np.int64) - offsets
        build_idx = self.sorted_rows[
            np.repeat(self.starts[safe], match_counts) + within
        ]
        return probe_idx, build_idx


# ---------------------------------------------------------------------------
# Segmented reductions
# ---------------------------------------------------------------------------


def segment_reduce(
    ufunc: np.ufunc, values: np.ndarray, codes: np.ndarray, n_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce ``values`` per group with ``ufunc.reduceat``.

    ``values``/``codes`` hold only the contributing rows (callers filter
    out NULLs first).  Returns ``(out, present)``; groups with no
    contributing rows have ``present`` False and an unspecified ``out``.
    """
    counts = np.bincount(codes, minlength=n_groups)
    present = counts > 0
    out = np.zeros(n_groups, dtype=values.dtype)
    if present.any():
        order = np.argsort(codes, kind="stable")
        starts = np.zeros(n_groups, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        out[present] = ufunc.reduceat(values[order], starts[present])
    return out, present


def segment_first_valid(
    codes: np.ndarray, validity: np.ndarray, n_groups: int
) -> tuple[np.ndarray, np.ndarray]:
    """Row index of each group's first valid row: ``(rows, present)``."""
    valid_rows = np.nonzero(validity)[0]
    if not len(valid_rows):
        return (np.zeros(n_groups, dtype=np.int64),
                np.zeros(n_groups, dtype=np.bool_))
    firsts, present = segment_reduce(
        np.minimum, valid_rows, codes[valid_rows], n_groups
    )
    return np.where(present, firsts, 0), present


# ---------------------------------------------------------------------------
# Sort kernels
# ---------------------------------------------------------------------------


def sort_permutation(
    key_vectors: Sequence[Vector],
    key_specs: Sequence[tuple[bool, bool | None]],
) -> np.ndarray:
    """Stable ``np.lexsort`` permutation for multi-key ORDER BY.

    ``key_specs`` holds ``(ascending, nulls_first)`` per key, with
    ``nulls_first=None`` meaning the engine default (NULLS LAST for ASC,
    NULLS FIRST for DESC).  NaN sorts as the greatest value, after
    ``+inf``.  Raises :class:`KernelFallback` when a key column holds
    objects NumPy cannot order (mixed incomparable types).
    """
    lex_keys: list[np.ndarray] = []
    # np.lexsort treats its LAST key as primary, so append the least
    # significant contributions first: iterate ORDER BY keys in reverse,
    # and within a key append value, then NaN rank, then NULL rank.
    for vector, (ascending, nulls_first) in reversed(
        list(zip(key_vectors, key_specs))
    ):
        codes, nan_mask = vector.sort_key()
        if not ascending:
            if codes.dtype.kind == "i":
                codes = np.int64(-1) - codes  # overflow-safe int negation
            else:
                codes = -codes
        lex_keys.append(codes)
        if nan_mask is not None:
            nan_key = nan_mask.astype(np.int8)
            if not ascending:
                nan_key = -nan_key
            lex_keys.append(nan_key)
        nf = (not ascending) if nulls_first is None else nulls_first
        if nf:
            lex_keys.append(vector.validity.astype(np.int8))
        else:
            lex_keys.append((~vector.validity).astype(np.int8))
    return np.lexsort(tuple(lex_keys))
