"""Canonicalized row-wise key helpers shared by both engines.

:func:`hashable_key` and :func:`sort_comparator` define the engines'
common grouping/ordering semantics (one NaN group, ``-0.0`` joins
``0.0``, NULL placement, NaN sorts greatest).  They live here — not in
:mod:`.kernels` — because the pgsim row engine needs them too and must
not import quack executor internals; this module is part of the shared
frontend surface alongside the plan IR and the binder.
"""

from __future__ import annotations

import functools
import math
from typing import Any, Sequence


#: Sentinels that cannot collide with real column values.
_NULL_KEY = ("__quack_null__",)
_NAN_KEY = ("__quack_nan__",)


def hashable_key(value: Any) -> Any:
    """A hashable grouping key for ``value`` with SQL equality semantics.

    Floats are canonicalized so that all NaN payloads fall into one group
    and ``-0.0`` joins ``0.0`` (IEEE equality); unhashable values fall back
    to a ``(module, qualname, repr)`` key so two distinct types with equal
    ``repr`` never merge.
    """
    if isinstance(value, float):  # also covers np.float64
        if math.isnan(value):
            return _NAN_KEY
        return value + 0.0  # -0.0 -> +0.0
    if isinstance(value, list):
        return tuple(hashable_key(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, hashable_key(v)) for k, v in value.items()))
    try:
        hash(value)
        return value
    except TypeError:
        return (
            type(value).__module__,
            type(value).__qualname__,
            repr(value),
        )


def sort_comparator(keys_spec: Sequence[tuple[bool, bool | None]]):
    """Row-wise ORDER BY comparator (the sort kernel's fallback, also used
    by the pgsim row engine).  Items are ``(row, key_values)`` pairs.

    Matches :func:`repro.quack.kernels.sort_permutation`: engine-default
    NULL placement, NaN compares greater than every non-NULL value.
    """

    def compare(item_a, item_b):
        for pos, (ascending, nulls_first) in enumerate(keys_spec):
            a = item_a[1][pos]
            b = item_b[1][pos]
            if a is None and b is None:
                continue
            nf = (not ascending) if nulls_first is None else nulls_first
            if a is None:
                return -1 if nf else 1
            if b is None:
                return 1 if nf else -1
            a_nan = isinstance(a, float) and math.isnan(a)
            b_nan = isinstance(b, float) and math.isnan(b)
            if a_nan or b_nan:
                if a_nan and b_nan:
                    continue
                less = b_nan  # NaN sorts as the greatest value
            elif a == b:
                continue
            else:
                try:
                    less = a < b
                except TypeError:
                    less = repr(a) < repr(b)
            if less:
                return -1 if ascending else 1
            return 1 if ascending else -1
        return 0

    return functools.cmp_to_key(compare)
