"""Plan optimizer: filter pushdown, hash-join extraction, index injection.

The headline rewrite is the paper's §4.3: when a filter conjunct has the
shape ``column <op> constant`` over a base-table scan and an attached index
advertises support for ``<op>`` on that column, the sequential scan is
replaced by an index scan (the predicate is kept as a recheck filter, which
is exact and cheap).
"""

from __future__ import annotations

from typing import Any

from ..analysis.config import verification_enabled
from .binder import _NOT_CONSTANT, fold_constant
from .plan import (
    BoundColumnRef,
    BoundConjunction,
    BoundExpr,
    BoundFunction,
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalIndexScan,
    LogicalJoin,
    LogicalLimit,
    LogicalMaterializedCTE,
    LogicalOperator,
    LogicalProject,
    LogicalSetOp,
    LogicalSort,
)


def optimize(plan: LogicalOperator, stats=None) -> LogicalOperator:
    """Rewrite a bound plan. Idempotent; returns a new tree.

    ``stats`` (a :class:`repro.observability.QueryStatistics`) receives
    per-rule fire counts under ``optimizer.rule.<name>``.  Under
    verification mode every filter rewrite is snapshot-checked (schema
    stability, predicate preservation, index-injection validity) and a
    violation names the optimizer rule that fired."""
    verifier = None
    if verification_enabled():
        from ..analysis.verifier import RewriteVerifier

        verifier = RewriteVerifier()
    return _Optimizer(stats, verifier).rewrite(plan)


class _Optimizer:
    def __init__(self, stats=None, verifier=None):
        self._stats = stats
        self._verifier = verifier

    def _fire(self, rule: str, n: int = 1) -> None:
        if self._verifier is not None:
            self._verifier.note_fire(rule)
        if self._stats is not None:
            self._stats.bump(f"optimizer.rule.{rule}", n)

    def rewrite(self, op: LogicalOperator) -> LogicalOperator:
        if isinstance(op, LogicalFilter):
            return self._rewrite_filter(op)
        if isinstance(op, LogicalJoin):
            op.left = self.rewrite(op.left)
            op.right = self.rewrite(op.right)
            return op
        if isinstance(op, LogicalProject):
            op.child = self.rewrite(op.child)
            return op
        if isinstance(op, (LogicalSort, LogicalLimit, LogicalDistinct,
                           LogicalAggregate)):
            op.child = self.rewrite(op.child)
            return op
        if isinstance(op, LogicalSetOp):
            op.left = self.rewrite(op.left)
            op.right = self.rewrite(op.right)
            return op
        if isinstance(op, LogicalMaterializedCTE):
            op.ctes = [
                (cte_id, name, self.rewrite(plan))
                for cte_id, name, plan in op.ctes
            ]
            op.child = self.rewrite(op.child)
            return op
        return op

    # -- filter over a join tree -------------------------------------------------

    def _rewrite_filter(self, op: LogicalFilter) -> LogicalOperator:
        if self._verifier is None:
            return self._rewrite_filter_inner(op)
        snapshot = self._verifier.snapshot_filter(op)
        mark = len(self._verifier.fired)
        result = self._rewrite_filter_inner(op)
        self._verifier.check_filter_rewrite(
            snapshot, result, self._verifier.fired[mark:]
        )
        if self._stats is not None:
            self._stats.bump("verify.rules_checked")
        return result

    def _rewrite_filter_inner(self, op: LogicalFilter) -> LogicalOperator:
        conjuncts = _split_conjuncts(op.condition)
        leaves, flattened = self._flatten(op.child)
        if not flattened:
            child = self.rewrite(op.child)
            child, remaining = self._try_push_into_leaf(child, conjuncts)
            if not remaining:
                return child
            return LogicalFilter(_combine(remaining), child)

        # Leaf offsets in the flat column space.
        offsets: list[int] = []
        total = 0
        for leaf in leaves:
            offsets.append(total)
            total += len(leaf.output_types())

        # Classify conjuncts by the highest leaf they touch.
        per_leaf: list[list[BoundExpr]] = [[] for _ in leaves]
        per_join: list[list[BoundExpr]] = [[] for _ in leaves]  # join idx i
        top_level: list[BoundExpr] = []
        for conj in conjuncts:
            used = conj.columns_used()
            if not used:
                top_level.append(conj)
                continue
            touched = sorted(
                {self._leaf_of(index, offsets, leaves) for index in used}
            )
            if len(touched) == 1:
                self._fire("filter_pushdown")
                per_leaf[touched[0]].append(
                    _rebase(conj, -offsets[touched[0]])
                )
            else:
                per_join[touched[-1]].append(conj)

        # Rebuild: optimize each leaf with its own filters + index injection.
        new_leaves: list[LogicalOperator] = []
        for leaf, filters in zip(leaves, per_leaf):
            leaf = self.rewrite(leaf)
            leaf, remaining = self._try_push_into_leaf(leaf, filters)
            if remaining:
                leaf = LogicalFilter(_combine(remaining), leaf)
            new_leaves.append(leaf)

        plan = new_leaves[0]
        for i in range(1, len(new_leaves)):
            boundary = offsets[i]
            equi_keys: list[tuple[BoundExpr, BoundExpr]] = []
            residuals: list[BoundExpr] = []
            for conj in per_join[i]:
                pair = _extract_equi_key(conj, boundary)
                if pair is not None:
                    self._fire("hash_join_extraction")
                    left_key, right_key = pair
                    equi_keys.append(
                        (left_key, _rebase(right_key, -boundary))
                    )
                else:
                    residuals.append(conj)
            index_probe = None
            if not equi_keys:
                index_probe = _match_join_index(
                    residuals, boundary, new_leaves[i]
                )
                if index_probe is not None:
                    self._fire("index_nl_join")
            join_type = "inner" if (equi_keys or residuals) else "cross"
            plan = LogicalJoin(
                plan,
                new_leaves[i],
                join_type,
                equi_keys=equi_keys,
                residual=_combine(residuals) if residuals else None,
                index_probe=index_probe,
            )
        if top_level:
            plan = LogicalFilter(_combine(top_level), plan)
        return plan

    def _flatten(
        self, op: LogicalOperator
    ) -> tuple[list[LogicalOperator], bool]:
        """Flatten a pure cross-join tree into its leaves."""
        if isinstance(op, LogicalJoin) and op.join_type == "cross" and (
            not op.equi_keys and op.residual is None
        ):
            left_leaves, _ = self._flatten(op.left)
            right_leaves, _ = self._flatten(op.right)
            return left_leaves + right_leaves, True
        return [op], False

    @staticmethod
    def _leaf_of(index: int, offsets: list[int],
                 leaves: list[LogicalOperator]) -> int:
        for i in range(len(offsets) - 1, -1, -1):
            if index >= offsets[i]:
                return i
        return 0

    # -- index injection (paper §4.3) ------------------------------------------------

    def _try_push_into_leaf(
        self, leaf: LogicalOperator, filters: list[BoundExpr]
    ) -> tuple[LogicalOperator, list[BoundExpr]]:
        if not isinstance(leaf, LogicalGet) or not leaf.table.indexes:
            return leaf, filters
        for conj in filters:
            probe = _match_index_predicate(conj)
            if probe is None:
                continue
            column_index, op_name, constant = probe
            column_name = leaf.table.column_names[column_index]
            for index in leaf.table.indexes:
                if index.matches(op_name, column_name, constant):
                    self._fire("index_scan_injection")
                    scan = LogicalIndexScan(
                        leaf.table, index, op_name, constant
                    )
                    # Keep every conjunct (including the matched one) as a
                    # recheck filter: exact and cheap on the candidate set.
                    return scan, filters
        return leaf, filters


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def _split_conjuncts(expr: BoundExpr) -> list[BoundExpr]:
    if isinstance(expr, BoundConjunction) and expr.op == "AND":
        out: list[BoundExpr] = []
        for arg in expr.args:
            out.extend(_split_conjuncts(arg))
        return out
    return [expr]


def _combine(conjuncts: list[BoundExpr]) -> BoundExpr:
    if len(conjuncts) == 1:
        return conjuncts[0]
    from .types import BOOLEAN

    return BoundConjunction("AND", conjuncts, BOOLEAN)


def _rebase(expr: BoundExpr, delta: int) -> BoundExpr:
    """Shift all column indices by ``delta`` (returns a rewritten copy)."""
    import copy

    def shift(node: BoundExpr) -> BoundExpr:
        if isinstance(node, BoundColumnRef):
            return BoundColumnRef(node.index + delta, node.ltype, node.name)
        clone = copy.copy(node)
        from .plan import (
            BoundCase,
            BoundCast,
            BoundConjunction,
            BoundFunction,
            BoundInList,
            BoundIsNull,
            BoundNot,
            BoundSubqueryExpr,
        )

        if isinstance(node, (BoundFunction, BoundConjunction)):
            clone.args = [shift(a) for a in node.args]
        elif isinstance(node, (BoundCast, BoundIsNull, BoundNot)):
            clone.child = shift(node.child)
        elif isinstance(node, BoundInList):
            clone.operand = shift(node.operand)
            clone.items = [shift(i) for i in node.items]
        elif isinstance(node, BoundCase):
            clone.branches = [
                (shift(c), shift(r)) for c, r in node.branches
            ]
            if node.else_result is not None:
                clone.else_result = shift(node.else_result)
        elif isinstance(node, BoundSubqueryExpr):
            clone.outer_params_exprs = [
                shift(p) for p in node.outer_params_exprs
            ]
        return clone

    return shift(expr)


def _extract_equi_key(
    conj: BoundExpr, boundary: int
) -> tuple[BoundExpr, BoundExpr] | None:
    """If ``conj`` is ``left_expr = right_expr`` with the operands cleanly on
    either side of ``boundary``, return (left-side expr, right-side expr)."""
    if not isinstance(conj, BoundFunction) or conj.name != "=":
        return None
    if len(conj.args) != 2:
        return None
    a, b = conj.args
    cols_a = a.columns_used()
    cols_b = b.columns_used()
    if not cols_a or not cols_b:
        return None
    if _subquery_free(a) is False or _subquery_free(b) is False:
        return None
    if max(cols_a) < boundary and min(cols_b) >= boundary:
        return (a, b)
    if max(cols_b) < boundary and min(cols_a) >= boundary:
        return (b, a)
    return None


def _subquery_free(expr: BoundExpr) -> bool:
    from .plan import BoundSubqueryExpr, _children

    if isinstance(expr, BoundSubqueryExpr):
        return False
    return all(_subquery_free(c) for c in _children(expr))


# ---------------------------------------------------------------------------
# Pipeline analysis (morsel-driven parallelism)
# ---------------------------------------------------------------------------

#: Operators that must consume their whole input before producing output.
#: They end a streaming pipeline: the parallel executor scatters the
#: fragment *below* a breaker and gives the breaker itself a
#: parallel-aware merge step (partitioned join build, aggregate partials
#: + combine, per-morsel sort + k-way merge).
_PIPELINE_BREAKERS = (
    LogicalAggregate,
    LogicalSort,
    LogicalDistinct,
    LogicalJoin,
    LogicalSetOp,
)


def is_pipeline_breaker(op: LogicalOperator) -> bool:
    return isinstance(op, _PIPELINE_BREAKERS)


def streaming_fragment(
    op: LogicalOperator,
) -> tuple[list[LogicalOperator], LogicalOperator]:
    """Split ``op`` into its streaming ``[Project|Filter]*`` chain and the
    source operator below it.

    The chain is the unit of morsel parallelism: every chunk the source
    produces can run the whole chain independently on a worker.  The
    returned chain is ordered top-down (``chain[0] is op``); the source
    is the first non-streaming operator (a scan, a pipeline breaker, …).
    """
    chain: list[LogicalOperator] = []
    current = op
    while isinstance(current, (LogicalFilter, LogicalProject)):
        chain.append(current)
        current = current.child
    return chain, current


def _match_index_predicate(
    conj: BoundExpr,
) -> tuple[int, str, Any] | None:
    """Match ``col <op> constant`` (or commuted for symmetric ops)."""
    if not isinstance(conj, BoundFunction) or len(conj.args) != 2:
        return None
    op_name = conj.name
    left, right = conj.args
    column = _as_base_column(left)
    if column is not None:
        constant = fold_constant(right)
        if constant is not _NOT_CONSTANT and constant is not None:
            return (column, op_name, constant)
    if op_name == "&&":  # symmetric: constant && col
        column = _as_base_column(right)
        if column is not None:
            constant = fold_constant(left)
            if constant is not _NOT_CONSTANT and constant is not None:
                return (column, op_name, constant)
    return None


def _as_base_column(expr: BoundExpr) -> int | None:
    if isinstance(expr, BoundColumnRef):
        return expr.index
    return None


_JOIN_INDEX_OPS = ("&&", "@>", "<@")


def _match_join_index(
    residuals: list[BoundExpr], boundary: int, right_leaf
) -> tuple | None:
    """Find a residual of shape ``right_col <op> expr(left)`` (either
    operand order) with an index on the right base table that can serve it
    — the GiST index nested-loop join strategy.  The full residual is kept
    as an exact recheck."""
    if not isinstance(right_leaf, LogicalGet) or not right_leaf.table.indexes:
        return None
    for conj in residuals:
        if not isinstance(conj, BoundFunction) or conj.name not in (
            _JOIN_INDEX_OPS
        ):
            continue
        if len(conj.args) != 2:
            continue
        for right_arg, left_arg in ((conj.args[0], conj.args[1]),
                                    (conj.args[1], conj.args[0])):
            if not isinstance(right_arg, BoundColumnRef):
                continue
            if right_arg.index < boundary:
                continue
            left_cols = left_arg.columns_used()
            if not left_cols or max(left_cols) >= boundary:
                continue
            if not _subquery_free(left_arg):
                continue
            column_name = right_leaf.table.column_names[
                right_arg.index - boundary
            ]
            for index in right_leaf.table.indexes:
                if index.matches(conj.name, column_name, None):
                    return (index, conj.name, left_arg)
    return None
